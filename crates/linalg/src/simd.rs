//! Runtime-dispatched SIMD backend for the hot kernels.
//!
//! Three instruction tiers are supported, selected **once** per process
//! (cached in a `OnceLock`, never re-probed in a hot loop):
//!
//! - [`Tier::Scalar`] — portable Rust. On x86-64 the compiler still
//!   emits SSE2 *scalar* instructions (that is the baseline ABI), but
//!   no hand-written vector code runs.
//! - [`Tier::Sse2`] — explicit 128-bit `__m128d` paths (2 × f64 per
//!   vector, four vectors to fill the 8-lane accumulation structure).
//! - [`Tier::Avx2`] — explicit 256-bit `__m256d` paths (4 × f64 per
//!   vector, two vectors per 8-lane structure).
//!
//! ## Bit-identity contract
//!
//! Every tier produces **byte-identical** results. Two mechanisms:
//!
//! 1. **Column-vectorized GEMM** ([`gemm_strip8_avx2`]): the microkernel
//!    vectorizes across *output columns*, so each output element still
//!    accumulates its `k` products in exactly the scalar order —
//!    `mul` then `add` per step, one rounding each. FMA is deliberately
//!    **excluded**: `vfmadd` contracts mul+add into one rounding and
//!    would break identity with the scalar (and naive-reference) paths.
//! 2. **Fixed 8-lane reductions** ([`dot`], [`sq_norm`],
//!    [`exp_sum_inplace`]): reductions that vectorize across `k` use a
//!    *fixed* 8-lane accumulation structure — lane `l` owns elements
//!    `8·t + l` — and a fixed combine tree
//!    `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, followed by a sequential
//!    scalar tail. The scalar fallback implements the *same* structure,
//!    so `OBSERVATORY_SIMD=off` cannot drift from the vector paths.
//!
//! ## Dispatch
//!
//! [`decision`] resolves the tier once: the `OBSERVATORY_SIMD` env var
//! (`off`/`scalar`, `sse2`, `avx2`) wins over CPU detection; a forced
//! tier the CPU cannot execute is downgraded to the best detected tier
//! (never a crash). The decision — tier, detection result, and source —
//! is recorded in the obs provenance manifest, the CLI runtime footer,
//! and `serve`'s `/healthz` by their respective call sites.
//! [`force_tier`] exists so benches and equivalence tests can compare
//! tiers inside one process without re-execing.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// An instruction-set tier. Ordering is meaningful: higher = wider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable Rust, no explicit vector intrinsics.
    Scalar = 0,
    /// Explicit 128-bit SSE2 paths.
    Sse2 = 1,
    /// Explicit 256-bit AVX2 paths (no FMA — see module docs).
    Avx2 = 2,
}

impl Tier {
    /// Stable lower-case name (`scalar`, `sse2`, `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Sse2 => "sse2",
            Tier::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the active tier was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// CPU feature detection picked the widest supported tier.
    Detected,
    /// `OBSERVATORY_SIMD` forced the tier.
    EnvOverride,
    /// `OBSERVATORY_SIMD` asked for a tier the CPU lacks; downgraded.
    EnvDowngraded,
    /// `OBSERVATORY_SIMD` held an unrecognized value; fell back to
    /// detection.
    EnvInvalid,
}

impl Source {
    /// Stable name for manifests and footers.
    pub fn name(self) -> &'static str {
        match self {
            Source::Detected => "detected",
            Source::EnvOverride => "env",
            Source::EnvDowngraded => "env-downgraded",
            Source::EnvInvalid => "env-invalid",
        }
    }
}

/// The one-time dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The tier all kernels run on.
    pub tier: Tier,
    /// The widest tier the CPU supports.
    pub detected: Tier,
    /// How `tier` was chosen.
    pub source: Source,
}

impl Decision {
    /// One-line description for footers / banners / health endpoints,
    /// e.g. `avx2 (detected)` or `scalar (env, cpu avx2)`.
    pub fn describe(&self) -> String {
        if self.tier == self.detected && self.source == Source::Detected {
            format!("{} ({})", self.tier, self.source.name())
        } else {
            format!("{} ({}, cpu {})", self.tier, self.source.name(), self.detected)
        }
    }
}

/// Widest tier the executing CPU supports. Probed once per process by
/// [`decision`]; callers needing the raw capability can call this
/// directly (it is cheap but not cached).
pub fn detect() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Tier::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline ABI: always present.
            Tier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Tier::Scalar
    }
}

/// Pure resolution of (env override, detected capability) → decision.
/// Split out from [`decision`] so the precedence rules are unit-testable
/// without mutating process-global state.
pub fn resolve(env: Option<&str>, detected: Tier) -> Decision {
    // Unset and empty/whitespace both mean "no override" — CI matrices
    // and shell scripts routinely materialize `OBSERVATORY_SIMD=""`.
    let raw = match env {
        None => return Decision { tier: detected, detected, source: Source::Detected },
        Some(s) if s.trim().is_empty() => {
            return Decision { tier: detected, detected, source: Source::Detected }
        }
        Some(s) => s,
    };
    let requested = match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "scalar" | "none" | "0" => Some(Tier::Scalar),
        "sse2" => Some(Tier::Sse2),
        "avx2" => Some(Tier::Avx2),
        _ => None,
    };
    match requested {
        None => Decision { tier: detected, detected, source: Source::EnvInvalid },
        Some(t) if t <= detected => Decision { tier: t, detected, source: Source::EnvOverride },
        // Requested wider than the CPU supports: never crash on an
        // unsupported instruction — run the best we actually have.
        Some(_) => Decision { tier: detected, detected, source: Source::EnvDowngraded },
    }
}

static DECISION: OnceLock<Decision> = OnceLock::new();

/// The process-wide dispatch decision, resolved exactly once (env read +
/// CPU probe happen on the first call only — hot loops must go through
/// [`tier`], never re-detect).
///
/// The decision is logged to stderr exactly once per process, from inside
/// the `OnceLock` init (so concurrent first callers cannot double-log).
/// Invalid or downgraded `OBSERVATORY_SIMD` values get a louder line —
/// silently ignoring an explicit operator request would be worse than the
/// one-line cost.
pub fn decision() -> &'static Decision {
    DECISION.get_or_init(|| {
        let env = std::env::var("OBSERVATORY_SIMD").ok();
        let d = resolve(env.as_deref(), detect());
        match d.source {
            Source::EnvInvalid => eprintln!(
                "observatory: ignoring invalid OBSERVATORY_SIMD={:?} (expected off|sse2|avx2); using {}",
                env.as_deref().unwrap_or(""),
                d.describe(),
            ),
            Source::EnvDowngraded => eprintln!(
                "observatory: OBSERVATORY_SIMD={:?} not supported by this CPU; using {}",
                env.as_deref().unwrap_or(""),
                d.describe(),
            ),
            _ => eprintln!("observatory: simd dispatch = {}", d.describe()),
        }
        d
    })
}

/// Test/bench-only override: `1 + tier` in an atomic, `0` = none.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Force a specific tier for the current process (benches and the
/// equivalence suites compare tiers in-process with this). `None`
/// restores the [`decision`] tier. Forcing a tier the CPU cannot run
/// clamps to the detected capability.
pub fn force_tier(tier: Option<Tier>) {
    let v = match tier {
        None => 0,
        Some(t) => 1 + t.min(detect()) as u8,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The tier kernels should use *right now*: the forced override when one
/// is installed, else the cached [`decision`]. One relaxed atomic load —
/// called once per kernel invocation, never per element.
#[inline]
pub fn tier() -> Tier {
    match FORCED.load(Ordering::Relaxed) {
        0 => decision().tier,
        1 => Tier::Scalar,
        2 => Tier::Sse2,
        _ => Tier::Avx2,
    }
}

/// Tiers available for in-process equivalence testing on this CPU:
/// every tier up to [`detect`].
pub fn available_tiers() -> Vec<Tier> {
    [Tier::Scalar, Tier::Sse2, Tier::Avx2].into_iter().filter(|&t| t <= detect()).collect()
}

// ---------------------------------------------------------------------
// 8-lane reduction structure (shared by every tier)
// ---------------------------------------------------------------------

/// Combine the 8 accumulation lanes with the fixed tree
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. Every tier funnels its
/// lanes through this exact function so the reduction order is defined
/// in one place.
#[inline]
pub(crate) fn combine8(l: [f64; 8]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Scalar 8-lane dot product: the *reference structure* the vector
/// tiers must match bit-for-bit. Lane `l` accumulates elements
/// `8·t + l` (mul then add, two roundings per step), lanes combine via
/// [`combine8`], and the `len % 8` tail is added sequentially.
pub(crate) fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f64; 8];
    let chunks = a.len() / 8;
    for t in 0..chunks {
        let (ac, bc) = (&a[8 * t..8 * t + 8], &b[8 * t..8 * t + 8]);
        for l in 0..8 {
            lanes[l] += ac[l] * bc[l];
        }
    }
    let mut total = combine8(lanes);
    for i in 8 * chunks..a.len() {
        total += a[i] * b[i];
    }
    total
}

/// Scalar 8-lane squared norm (`Σ xᵢ²`), same structure as
/// [`dot_scalar`].
pub(crate) fn sq_norm_scalar(a: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let chunks = a.len() / 8;
    for t in 0..chunks {
        let ac = &a[8 * t..8 * t + 8];
        for l in 0..8 {
            lanes[l] += ac[l] * ac[l];
        }
    }
    let mut total = combine8(lanes);
    for &x in &a[8 * chunks..] {
        total += x * x;
    }
    total
}

/// Scalar 8-lane fused exponentiate-and-sum: `xs[i] ← exp(xs[i] − max)`
/// via [`crate::fastmath::exp_approx`], returning the sum in the fixed
/// 8-lane order. The structure (lanes, combine tree, sequential tail)
/// is what the SSE2/AVX2 paths replicate exactly.
pub(crate) fn exp_sum_scalar(xs: &mut [f64], max: f64) -> f64 {
    let mut lanes = [0.0f64; 8];
    let chunks = xs.len() / 8;
    for t in 0..chunks {
        let c = &mut xs[8 * t..8 * t + 8];
        for l in 0..8 {
            let e = crate::fastmath::exp_approx(c[l] - max);
            c[l] = e;
            lanes[l] += e;
        }
    }
    let mut total = combine8(lanes);
    for x in &mut xs[8 * chunks..] {
        let e = crate::fastmath::exp_approx(*x - max);
        *x = e;
        total += e;
    }
    total
}

// ---------------------------------------------------------------------
// x86-64 vector tiers
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    //! Explicit SSE2/AVX2 implementations of the 8-lane primitives and
    //! the column-vectorized GEMM strip.
    //!
    //! Safety discipline: every `#[target_feature]` function is `unsafe
    //! fn`; callers in `reduce`/`kernels` guard on [`super::Tier`]
    //! (which [`super::detect`] clamps to real CPU capability), so the
    //! required instructions are always present when these run. All
    //! memory access stays through slice indexing (bounds-checked in
    //! debug, eliminated in release by the strip-mined loop shapes).

    use super::combine8;
    use std::arch::x86_64::*;

    /// `2^52 · 1.5` bit pattern — see `fastmath::SHIFT`.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    #[allow(clippy::excessive_precision)]
    const LN2_LO: f64 = 1.908_214_929_270_587_700_0e-10;
    const CUTOFF: f64 = crate::fastmath::EXP_FLUSH_CUTOFF;

    // ---------------- dot / sq_norm ----------------

    /// AVX2 8-lane dot: two `__m256d` accumulators own lanes 0–3 and
    /// 4–7; the combine tree and tail run through the shared scalar
    /// code so all tiers agree bit-for-bit.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / 8;
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for t in 0..chunks {
            let i = 8 * t;
            let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let a1 = _mm256_loadu_pd(a.as_ptr().add(i + 4));
            let b0 = _mm256_loadu_pd(b.as_ptr().add(i));
            let b1 = _mm256_loadu_pd(b.as_ptr().add(i + 4));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(a0, b0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(a1, b1));
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
        let mut total = combine8(lanes);
        for i in 8 * chunks..a.len() {
            total += a[i] * b[i];
        }
        total
    }

    /// SSE2 8-lane dot: four `__m128d` accumulators own lane pairs
    /// (0,1), (2,3), (4,5), (6,7).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / 8;
        let mut acc = [_mm_setzero_pd(); 4];
        for t in 0..chunks {
            let i = 8 * t;
            for (p, accp) in acc.iter_mut().enumerate() {
                let av = _mm_loadu_pd(a.as_ptr().add(i + 2 * p));
                let bv = _mm_loadu_pd(b.as_ptr().add(i + 2 * p));
                *accp = _mm_add_pd(*accp, _mm_mul_pd(av, bv));
            }
        }
        let mut lanes = [0.0f64; 8];
        for (p, accp) in acc.iter().enumerate() {
            _mm_storeu_pd(lanes.as_mut_ptr().add(2 * p), *accp);
        }
        let mut total = combine8(lanes);
        for i in 8 * chunks..a.len() {
            total += a[i] * b[i];
        }
        total
    }

    /// AVX2 8-lane squared norm.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_norm_avx2(a: &[f64]) -> f64 {
        let chunks = a.len() / 8;
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for t in 0..chunks {
            let i = 8 * t;
            let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let a1 = _mm256_loadu_pd(a.as_ptr().add(i + 4));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(a0, a0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(a1, a1));
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
        let mut total = combine8(lanes);
        for &x in &a[8 * chunks..] {
            total += x * x;
        }
        total
    }

    /// SSE2 8-lane squared norm.
    #[target_feature(enable = "sse2")]
    pub unsafe fn sq_norm_sse2(a: &[f64]) -> f64 {
        let chunks = a.len() / 8;
        let mut acc = [_mm_setzero_pd(); 4];
        for t in 0..chunks {
            let i = 8 * t;
            for (p, accp) in acc.iter_mut().enumerate() {
                let av = _mm_loadu_pd(a.as_ptr().add(i + 2 * p));
                *accp = _mm_add_pd(*accp, _mm_mul_pd(av, av));
            }
        }
        let mut lanes = [0.0f64; 8];
        for (p, accp) in acc.iter().enumerate() {
            _mm_storeu_pd(lanes.as_mut_ptr().add(2 * p), *accp);
        }
        let mut total = combine8(lanes);
        for &x in &a[8 * chunks..] {
            total += x * x;
        }
        total
    }

    // ---------------- vectorized exp_approx ----------------
    //
    // Bit-exact transcriptions of `fastmath::exp_approx`: the same
    // operations in the same order, four (AVX2) or two (SSE2) elements
    // at a time. The `n = shifted.to_bits() as u32 as i32` extraction
    // becomes `bits(shifted) − bits(SHIFT)` in 64-bit integer lanes —
    // identical for the clamped domain because the shift trick stores
    // `n` exactly in the low mantissa bits.

    /// One exp step on 4 lanes. Inputs must already be `x − max`.
    #[target_feature(enable = "avx2")]
    unsafe fn exp4_avx2(x: __m256d) -> __m256d {
        let cutoff = _mm256_set1_pd(CUTOFF);
        let one = _mm256_set1_pd(1.0);
        // keep = (x >= CUTOFF) ? 1.0 : 0.0 — NaN compares false, same
        // as the scalar `(x >= CUTOFF) as u8 as f64`.
        let keep = _mm256_and_pd(_mm256_cmp_pd(x, cutoff, _CMP_GE_OQ), one);
        // xc = min(max(x, CUTOFF), 709): max/min with the constant in
        // the *second* operand position return the constant for NaN,
        // matching `f64::max`/`f64::min` NaN-ignoring semantics with a
        // NaN receiver.
        let xc = _mm256_min_pd(_mm256_max_pd(x, cutoff), _mm256_set1_pd(709.0));
        let shift = _mm256_set1_pd(SHIFT);
        let shifted =
            _mm256_add_pd(_mm256_mul_pd(xc, _mm256_set1_pd(std::f64::consts::LOG2_E)), shift);
        let nf = _mm256_sub_pd(shifted, shift);
        let r = _mm256_sub_pd(
            _mm256_sub_pd(xc, _mm256_mul_pd(nf, _mm256_set1_pd(LN2_HI))),
            _mm256_mul_pd(nf, _mm256_set1_pd(LN2_LO)),
        );
        // Estrin evaluation, exact operation order of the scalar code.
        let r2 = _mm256_mul_pd(r, r);
        let r4 = _mm256_mul_pd(r2, r2);
        let r8 = _mm256_mul_pd(r4, r4);
        let c = |v: f64| _mm256_set1_pd(v);
        let q0 = _mm256_add_pd(one, r);
        let q1 = _mm256_add_pd(c(5.0e-1), _mm256_mul_pd(c(1.666_666_666_666_666_6e-1), r));
        let q2 = _mm256_add_pd(
            c(4.166_666_666_666_666_4e-2),
            _mm256_mul_pd(c(8.333_333_333_333_333e-3), r),
        );
        let q3 = _mm256_add_pd(
            c(1.388_888_888_888_889e-3),
            _mm256_mul_pd(c(1.984_126_984_126_984e-4), r),
        );
        let q4 = _mm256_add_pd(
            c(2.480_158_730_158_73e-5),
            _mm256_mul_pd(c(2.755_731_922_398_589e-6), r),
        );
        let q5 = _mm256_add_pd(
            c(2.755_731_922_398_589e-7),
            _mm256_mul_pd(c(2.505_210_838_544_172e-8), r),
        );
        let q6 = _mm256_add_pd(
            c(2.087_675_698_786_81e-9),
            _mm256_mul_pd(c(1.605_904_383_682_161_5e-10), r),
        );
        // p = (q0 + q1·r2) + (q2 + q3·r2)·r4 + ((q4 + q5·r2) + q6·r4)·r8
        let p = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(q0, _mm256_mul_pd(q1, r2)),
                _mm256_mul_pd(_mm256_add_pd(q2, _mm256_mul_pd(q3, r2)), r4),
            ),
            _mm256_mul_pd(
                _mm256_add_pd(_mm256_add_pd(q4, _mm256_mul_pd(q5, r2)), _mm256_mul_pd(q6, r4)),
                r8,
            ),
        );
        // scale = 2^n via exponent assembly: n = bits(shifted) − bits(SHIFT).
        let n = _mm256_sub_epi64(
            _mm256_castpd_si256(shifted),
            _mm256_set1_epi64x(SHIFT.to_bits() as i64),
        );
        let expo = _mm256_slli_epi64(_mm256_add_epi64(n, _mm256_set1_epi64x(1023)), 52);
        let scale = _mm256_castsi256_pd(expo);
        _mm256_mul_pd(_mm256_mul_pd(p, scale), keep)
    }

    /// One exp step on 2 lanes (SSE2 mirror of [`exp4_avx2`]).
    #[target_feature(enable = "sse2")]
    unsafe fn exp2_sse2(x: __m128d) -> __m128d {
        let cutoff = _mm_set1_pd(CUTOFF);
        let one = _mm_set1_pd(1.0);
        let keep = _mm_and_pd(_mm_cmpge_pd(x, cutoff), one);
        let xc = _mm_min_pd(_mm_max_pd(x, cutoff), _mm_set1_pd(709.0));
        let shift = _mm_set1_pd(SHIFT);
        let shifted = _mm_add_pd(_mm_mul_pd(xc, _mm_set1_pd(std::f64::consts::LOG2_E)), shift);
        let nf = _mm_sub_pd(shifted, shift);
        let r = _mm_sub_pd(
            _mm_sub_pd(xc, _mm_mul_pd(nf, _mm_set1_pd(LN2_HI))),
            _mm_mul_pd(nf, _mm_set1_pd(LN2_LO)),
        );
        let r2 = _mm_mul_pd(r, r);
        let r4 = _mm_mul_pd(r2, r2);
        let r8 = _mm_mul_pd(r4, r4);
        let c = |v: f64| _mm_set1_pd(v);
        let q0 = _mm_add_pd(one, r);
        let q1 = _mm_add_pd(c(5.0e-1), _mm_mul_pd(c(1.666_666_666_666_666_6e-1), r));
        let q2 =
            _mm_add_pd(c(4.166_666_666_666_666_4e-2), _mm_mul_pd(c(8.333_333_333_333_333e-3), r));
        let q3 =
            _mm_add_pd(c(1.388_888_888_888_889e-3), _mm_mul_pd(c(1.984_126_984_126_984e-4), r));
        let q4 = _mm_add_pd(c(2.480_158_730_158_73e-5), _mm_mul_pd(c(2.755_731_922_398_589e-6), r));
        let q5 =
            _mm_add_pd(c(2.755_731_922_398_589e-7), _mm_mul_pd(c(2.505_210_838_544_172e-8), r));
        let q6 =
            _mm_add_pd(c(2.087_675_698_786_81e-9), _mm_mul_pd(c(1.605_904_383_682_161_5e-10), r));
        let p = _mm_add_pd(
            _mm_add_pd(
                _mm_add_pd(q0, _mm_mul_pd(q1, r2)),
                _mm_mul_pd(_mm_add_pd(q2, _mm_mul_pd(q3, r2)), r4),
            ),
            _mm_mul_pd(_mm_add_pd(_mm_add_pd(q4, _mm_mul_pd(q5, r2)), _mm_mul_pd(q6, r4)), r8),
        );
        let n = _mm_sub_epi64(_mm_castpd_si128(shifted), _mm_set1_epi64x(SHIFT.to_bits() as i64));
        let expo = _mm_slli_epi64(_mm_add_epi64(n, _mm_set1_epi64x(1023)), 52);
        let scale = _mm_castsi128_pd(expo);
        _mm_mul_pd(_mm_mul_pd(p, scale), keep)
    }

    /// AVX2 fused exponentiate-and-sum (8-lane structure).
    #[target_feature(enable = "avx2")]
    pub unsafe fn exp_sum_avx2(xs: &mut [f64], max: f64) -> f64 {
        let chunks = xs.len() / 8;
        let maxv = _mm256_set1_pd(max);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for t in 0..chunks {
            let i = 8 * t;
            let p = xs.as_mut_ptr().add(i);
            let e0 = exp4_avx2(_mm256_sub_pd(_mm256_loadu_pd(p), maxv));
            let e1 = exp4_avx2(_mm256_sub_pd(_mm256_loadu_pd(p.add(4)), maxv));
            _mm256_storeu_pd(p, e0);
            _mm256_storeu_pd(p.add(4), e1);
            acc0 = _mm256_add_pd(acc0, e0);
            acc1 = _mm256_add_pd(acc1, e1);
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
        let mut total = combine8(lanes);
        for x in &mut xs[8 * chunks..] {
            let e = crate::fastmath::exp_approx(*x - max);
            *x = e;
            total += e;
        }
        total
    }

    /// SSE2 fused exponentiate-and-sum (8-lane structure).
    #[target_feature(enable = "sse2")]
    pub unsafe fn exp_sum_sse2(xs: &mut [f64], max: f64) -> f64 {
        let chunks = xs.len() / 8;
        let maxv = _mm_set1_pd(max);
        let mut acc = [_mm_setzero_pd(); 4];
        for t in 0..chunks {
            let i = 8 * t;
            for (p, accp) in acc.iter_mut().enumerate() {
                let ptr = xs.as_mut_ptr().add(i + 2 * p);
                let e = exp2_sse2(_mm_sub_pd(_mm_loadu_pd(ptr), maxv));
                _mm_storeu_pd(ptr, e);
                *accp = _mm_add_pd(*accp, e);
            }
        }
        let mut lanes = [0.0f64; 8];
        for (p, accp) in acc.iter().enumerate() {
            _mm_storeu_pd(lanes.as_mut_ptr().add(2 * p), *accp);
        }
        let mut total = combine8(lanes);
        for x in &mut xs[8 * chunks..] {
            let e = crate::fastmath::exp_approx(*x - max);
            *x = e;
            total += e;
        }
        total
    }

    // ---------------- GEMM column strip ----------------

    /// AVX2 GEMM strip: full 4-row quads over the 8 output columns
    /// `[j0, j0+8)`. Vectorization is across columns, so each output
    /// element keeps the exact ascending-`k` mul-then-add sequence of
    /// the scalar microkernel — bitwise identity needs no restructure
    /// here. Eight accumulators (4 rows × 2 vectors) plus two B vectors
    /// and one broadcast stay inside the 16 ymm registers.
    ///
    /// Handles only `rows / 4 * 4` rows; callers cover remainder rows
    /// and columns with the scalar paths.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_strip8_avx2<const ACCUM: bool>(
        c: &mut [f64],
        ldc: usize,
        a: &[f64],
        lda: usize,
        b: &[f64],
        rows: usize,
        kd: usize,
        m: usize,
        j0: usize,
    ) {
        let mut r0 = 0;
        while r0 + 4 <= rows {
            let mut s00 = _mm256_setzero_pd();
            let mut s01 = _mm256_setzero_pd();
            let mut s10 = _mm256_setzero_pd();
            let mut s11 = _mm256_setzero_pd();
            let mut s20 = _mm256_setzero_pd();
            let mut s21 = _mm256_setzero_pd();
            let mut s30 = _mm256_setzero_pd();
            let mut s31 = _mm256_setzero_pd();
            for k in 0..kd {
                let bp = b.as_ptr().add(k * m + j0);
                let b0 = _mm256_loadu_pd(bp);
                let b1 = _mm256_loadu_pd(bp.add(4));
                let x0 = _mm256_set1_pd(*a.get_unchecked(r0 * lda + k));
                s00 = _mm256_add_pd(s00, _mm256_mul_pd(x0, b0));
                s01 = _mm256_add_pd(s01, _mm256_mul_pd(x0, b1));
                let x1 = _mm256_set1_pd(*a.get_unchecked((r0 + 1) * lda + k));
                s10 = _mm256_add_pd(s10, _mm256_mul_pd(x1, b0));
                s11 = _mm256_add_pd(s11, _mm256_mul_pd(x1, b1));
                let x2 = _mm256_set1_pd(*a.get_unchecked((r0 + 2) * lda + k));
                s20 = _mm256_add_pd(s20, _mm256_mul_pd(x2, b0));
                s21 = _mm256_add_pd(s21, _mm256_mul_pd(x2, b1));
                let x3 = _mm256_set1_pd(*a.get_unchecked((r0 + 3) * lda + k));
                s30 = _mm256_add_pd(s30, _mm256_mul_pd(x3, b0));
                s31 = _mm256_add_pd(s31, _mm256_mul_pd(x3, b1));
            }
            let pairs = [(0usize, s00, s01), (1, s10, s11), (2, s20, s21), (3, s30, s31)];
            for (r, lo, hi) in pairs {
                let cp = c.as_mut_ptr().add((r0 + r) * ldc + j0);
                if ACCUM {
                    // `c += s` after the full k loop: one rounding, same
                    // as the scalar store closure.
                    _mm256_storeu_pd(cp, _mm256_add_pd(_mm256_loadu_pd(cp), lo));
                    _mm256_storeu_pd(cp.add(4), _mm256_add_pd(_mm256_loadu_pd(cp.add(4)), hi));
                } else {
                    _mm256_storeu_pd(cp, lo);
                    _mm256_storeu_pd(cp.add(4), hi);
                }
            }
            r0 += 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_wins_over_detection() {
        // The satellite contract: OBSERVATORY_SIMD beats the CPU probe.
        let d = resolve(Some("off"), Tier::Avx2);
        assert_eq!(d.tier, Tier::Scalar);
        assert_eq!(d.source, Source::EnvOverride);
        assert_eq!(d.detected, Tier::Avx2);
        let d = resolve(Some("sse2"), Tier::Avx2);
        assert_eq!(d.tier, Tier::Sse2);
        assert_eq!(d.source, Source::EnvOverride);
        let d = resolve(Some("AVX2"), Tier::Avx2);
        assert_eq!((d.tier, d.source), (Tier::Avx2, Source::EnvOverride));
    }

    #[test]
    fn unset_env_uses_detection() {
        for t in [Tier::Scalar, Tier::Sse2, Tier::Avx2] {
            let d = resolve(None, t);
            assert_eq!((d.tier, d.source), (t, Source::Detected));
        }
    }

    #[test]
    fn empty_env_means_unset() {
        // CI matrices materialize OBSERVATORY_SIMD="" for the auto leg;
        // that must not count as an invalid override.
        for raw in ["", "  ", "\t"] {
            let d = resolve(Some(raw), Tier::Avx2);
            assert_eq!((d.tier, d.source), (Tier::Avx2, Source::Detected), "raw={raw:?}");
        }
    }

    #[test]
    fn forced_tier_downgrades_never_crashes() {
        let d = resolve(Some("avx2"), Tier::Sse2);
        assert_eq!(d.tier, Tier::Sse2, "cannot run what the CPU lacks");
        assert_eq!(d.source, Source::EnvDowngraded);
    }

    #[test]
    fn invalid_env_falls_back_to_detection() {
        let d = resolve(Some("avx512-please"), Tier::Avx2);
        assert_eq!((d.tier, d.source), (Tier::Avx2, Source::EnvInvalid));
    }

    #[test]
    fn decision_is_cached_and_tier_is_stable() {
        // The OnceLock must hand back the same decision every time (the
        // env/CPU probe happens exactly once per process).
        let a = decision() as *const Decision;
        let b = decision() as *const Decision;
        assert_eq!(a, b, "decision re-resolved");
        assert_eq!(tier(), decision().tier);
    }

    #[test]
    fn force_tier_overrides_and_restores() {
        let base = tier();
        force_tier(Some(Tier::Scalar));
        assert_eq!(tier(), Tier::Scalar);
        force_tier(None);
        assert_eq!(tier(), base);
    }

    #[test]
    fn describe_mentions_tier_and_source() {
        let d = Decision { tier: Tier::Scalar, detected: Tier::Avx2, source: Source::EnvOverride };
        let s = d.describe();
        assert!(s.contains("scalar") && s.contains("env") && s.contains("avx2"), "{s}");
    }

    #[test]
    fn scalar_lane_structure_matches_naive_on_exact_values() {
        // Powers of two: no rounding anywhere, so the 8-lane regrouping
        // must equal the sequential sum exactly.
        let a: Vec<f64> = (0..19).map(|i| (1u64 << (i % 7)) as f64).collect();
        let b: Vec<f64> = (0..19).map(|i| (1u64 << (i % 5)) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot_scalar(&a, &b), naive);
        let naive_sq: f64 = a.iter().map(|x| x * x).sum();
        assert_eq!(sq_norm_scalar(&a), naive_sq);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_tiers_match_scalar_bitwise() {
        let mut rng = crate::rng::SplitMix64::new(99);
        for len in 0..40usize {
            let a: Vec<f64> = (0..len).map(|_| rng.next_normal_with(0.0, 2.0)).collect();
            let b: Vec<f64> = (0..len).map(|_| rng.next_normal_with(0.0, 2.0)).collect();
            let want = dot_scalar(&a, &b);
            // SSE2 is baseline on x86-64.
            let got = unsafe { x86::dot_sse2(&a, &b) };
            assert_eq!(got.to_bits(), want.to_bits(), "sse2 dot len={len}");
            assert_eq!(
                unsafe { x86::sq_norm_sse2(&a) }.to_bits(),
                sq_norm_scalar(&a).to_bits(),
                "sse2 sq_norm len={len}"
            );
            if detect() >= Tier::Avx2 {
                let got = unsafe { x86::dot_avx2(&a, &b) };
                assert_eq!(got.to_bits(), want.to_bits(), "avx2 dot len={len}");
                assert_eq!(
                    unsafe { x86::sq_norm_avx2(&a) }.to_bits(),
                    sq_norm_scalar(&a).to_bits(),
                    "avx2 sq_norm len={len}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_exp_sum_matches_scalar_bitwise() {
        let mut rng = crate::rng::SplitMix64::new(7);
        for len in 0..40usize {
            let mut base: Vec<f64> = (0..len).map(|_| rng.next_normal_with(0.0, 3.0)).collect();
            if len > 3 {
                base[1] = f64::NEG_INFINITY;
                base[3] = -800.0; // below the flush cutoff
            }
            let max = 1.5;
            let mut want = base.clone();
            let ws = exp_sum_scalar(&mut want, max);
            let mut got = base.clone();
            let gs = unsafe { x86::exp_sum_sse2(&mut got, max) };
            assert_eq!(gs.to_bits(), ws.to_bits(), "sse2 sum len={len}");
            assert_eq!(got, want, "sse2 values len={len}");
            if detect() >= Tier::Avx2 {
                let mut got = base.clone();
                let gs = unsafe { x86::exp_sum_avx2(&mut got, max) };
                assert_eq!(gs.to_bits(), ws.to_bits(), "avx2 sum len={len}");
                assert_eq!(got, want, "avx2 values len={len}");
            }
        }
    }
}
