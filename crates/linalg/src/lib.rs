//! # observatory-linalg
//!
//! Dense linear algebra kernels for the Observatory workspace.
//!
//! Everything in this crate is self-contained (no external dependencies) and
//! operates on `f64`. The crate provides exactly what the Observatory
//! measures and the from-scratch Transformer need:
//!
//! - [`vector`]: dot products, norms, cosine similarity, L1/L2 distances,
//!   elementwise arithmetic and mean vectors.
//! - [`matrix`]: a row-major dense [`matrix::Matrix`] with multiplication,
//!   transpose, row views and per-row map/reduce helpers.
//! - [`kernels`]: the fused, tiled, row-parallel encoder kernels
//!   (register-tiled matmul with a transposed-B fast path, bias/GELU-fused
//!   linear maps, head-batched attention) plus their scalar reference
//!   implementations and the kernel timing counters.
//! - [`fastmath`]: branch-light, vectorizable polynomial `exp`/`tanh`/GELU
//!   approximations with documented, regression-tested ULP bounds — the
//!   kernels' softmax and GELU epilogue run on these.
//! - [`parallel`]: the scoped worker-pool primitive (ordered results,
//!   dynamic self-scheduling, nested-parallelism guard) that both the
//!   kernels and `observatory-runtime`'s table-batch pool run on.
//! - [`moments`]: mean vector and covariance matrix of a sample of vectors
//!   (the inputs to the multivariate coefficient of variation).
//! - [`pca`]: principal component analysis via power iteration with
//!   deflation (used to regenerate the paper's Figures 6 and 8).
//! - [`solve`]: Gaussian-elimination inverse/solver (used by the ablation
//!   MCV estimator that, unlike Albert–Zhang's, requires `Σ⁻¹`).
//! - [`rng`]: a tiny deterministic `SplitMix64` generator plus Box–Muller
//!   normal sampling, used for reproducible weight initialization.
//! - [`simd`]: runtime CPU-feature dispatch (scalar / SSE2 / AVX2 tiers,
//!   `OBSERVATORY_SIMD` override, decided once per process) and the
//!   fixed-order vector backends every tier shares — all tiers are
//!   **byte-identical**, only throughput differs.
//! - [`reduce`]: tier-dispatched dot / squared-norm / cosine reductions in
//!   the fixed 8-lane accumulation order (adopted by search, stats and the
//!   serving kNN path).
//! - [`workspace`]: per-thread scratch-buffer pool that removes steady-state
//!   heap allocations from the serial encoder hot path.

pub mod fastmath;
pub mod kernels;
pub mod matrix;
pub mod moments;
pub mod parallel;
pub mod pca;
pub mod reduce;
pub mod rng;
pub mod simd;
pub mod solve;
pub mod vector;
pub mod workspace;

pub use matrix::Matrix;
pub use rng::SplitMix64;
