//! Sample moments of vector-valued observations.
//!
//! Observatory's multivariate coefficient of variation (Measure 1) is a
//! function of the mean vector `μ` and covariance matrix `Σ` of a set of
//! embeddings. This module computes both. The covariance is the *unbiased*
//! sample covariance (divisor `n - 1`), matching the variance convention
//! used in the paper's Measure 4.

use crate::matrix::Matrix;
use crate::vector;

/// Mean vector and (unbiased) covariance matrix of a vector sample.
#[derive(Debug, Clone)]
pub struct Moments {
    /// Sample mean `μ`.
    pub mean: Vec<f64>,
    /// Unbiased sample covariance `Σ` (`d × d`).
    pub cov: Matrix,
    /// Number of observations.
    pub n: usize,
}

/// Compute the sample mean and covariance of `n` observations of dimension
/// `d`, given as the rows of `sample`.
///
/// With a single observation the covariance is defined to be the zero
/// matrix (there is no dispersion to estimate), which makes downstream MCV
/// computations return 0 rather than NaN.
///
/// # Panics
/// Panics if `sample` has no rows.
pub fn moments(sample: &Matrix) -> Moments {
    let n = sample.rows();
    assert!(n > 0, "moments: empty sample");
    let d = sample.cols();
    let mean = sample.row_mean();
    let mut cov = Matrix::zeros(d, d);
    if n > 1 {
        for row in sample.rows_iter() {
            let c = vector::sub(row, &mean);
            // Accumulate the outer product c cᵀ. Only the upper triangle is
            // computed; the matrix is symmetrized afterwards.
            for i in 0..d {
                if c[i] == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[(i, j)] += c[i] * c[j];
                }
            }
        }
        let inv = 1.0 / (n - 1) as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] * inv;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
    }
    Moments { mean, cov, n }
}

/// Univariate unbiased sample variance. Returns 0 for samples of size < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_cov_hand_computed() {
        // Observations: (1,2), (3,4), (5,9).
        let s = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 9.0]);
        let m = moments(&s);
        assert_eq!(m.mean, vec![3.0, 5.0]);
        // var(x) = ((−2)² + 0 + 2²)/2 = 4
        assert!((m.cov[(0, 0)] - 4.0).abs() < 1e-12);
        // var(y) = ((−3)² + (−1)² + 4²)/2 = 13
        assert!((m.cov[(1, 1)] - 13.0).abs() < 1e-12);
        // cov(x,y) = ((−2)(−3) + 0(−1) + 2·4)/2 = 7
        assert!((m.cov[(0, 1)] - 7.0).abs() < 1e-12);
        assert_eq!(m.cov[(0, 1)], m.cov[(1, 0)]);
    }

    #[test]
    fn single_observation_zero_cov() {
        let s = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let m = moments(&s);
        assert_eq!(m.mean, vec![1.0, 2.0, 3.0]);
        assert!(m.cov.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identical_observations_zero_cov() {
        let s = Matrix::from_rows(&[vec![2.0, -1.0], vec![2.0, -1.0], vec![2.0, -1.0]]);
        let m = moments(&s);
        assert!(m.cov.as_slice().iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn univariate_variance() {
        assert_eq!(variance(&[1.0, 3.0]), 2.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn covariance_diagonal_matches_univariate() {
        let xs = vec![1.0, 4.0, 6.0, 9.0];
        let s = Matrix::from_rows(&xs.iter().map(|&x| vec![x]).collect::<Vec<_>>());
        let m = moments(&s);
        assert!((m.cov[(0, 0)] - variance(&xs)).abs() < 1e-12);
    }
}
