//! A dense, row-major `f64` matrix.
//!
//! [`Matrix`] is the workhorse type shared by the Transformer (activations,
//! weights) and the statistics layer (embedding samples, covariance
//! matrices). It is deliberately minimal: fixed shape, row-major storage,
//! and the handful of operations Observatory needs.

use crate::vector;

/// A dense row-major matrix of `f64` values with fixed shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer/shape mismatch");
        Self { rows, cols, data }
    }

    /// Build a matrix whose rows are the given equal-length vectors.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows disagree on length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: empty input");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate over all rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Copy column `j` out as a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col: index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self * other`.
    ///
    /// Iterates in `i, k, j` order so the inner loop is a contiguous
    /// AXPY over the output row — this vectorizes well and is the layout
    /// recommended for row-major data.
    ///
    /// Rows of `self` with `a == 0.0` entries skip their AXPY **only**
    /// when the corresponding row of `other` is entirely finite: IEEE-754
    /// defines `0 × ±∞` and `0 × NaN` as NaN, so an unconditional skip
    /// would silently swallow non-finite values flowing in from `other`
    /// and report a clean product where the true result is poisoned.
    /// Kernel-layer consumers use [`crate::kernels::matmul`], which has
    /// no skip at all.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        // One O(k·m) pass so the O(n·k·m) loop can keep its branch-
        // predictable sparse fast path without losing NaN/∞ propagation.
        let row_finite: Vec<bool> =
            (0..other.rows).map(|k| other.row(k).iter().all(|b| b.is_finite())).collect();
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 && row_finite[k] {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        self.rows_iter().map(|r| vector::dot(r, v)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise `self += other`, allocation-free. Same result bits as
    /// [`Matrix::add`] (`a + b` per element, in order).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Consume the matrix, returning its flat row-major buffer (so the
    /// workspace pool can recycle the capacity of intermediates).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Scale every element by `s`, in place.
    pub fn scale_assign(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Mean of the rows (a `cols`-length vector).
    ///
    /// # Panics
    /// Panics if the matrix has no rows.
    pub fn row_mean(&self) -> Vec<f64> {
        assert!(self.rows > 0, "row_mean: empty matrix");
        vector::mean_of_rows(self.rows_iter())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(0), vec![1.0, 4.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let v = [2.0, 1.0, 0.0];
        assert_eq!(a.matvec(&v), vec![2.0, 1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn row_mean() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 3.0, 5.0]);
        assert_eq!(a.row_mean(), vec![2.0, 4.0]);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a, Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn matmul_zero_times_nonfinite_propagates() {
        // Regression: the `a == 0.0` sparse skip used to suppress NaN/±∞
        // flowing in from `other` (IEEE-754: 0 × ∞ = NaN). A zero in A
        // meeting a non-finite row of B must still poison the output.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 2.0, 0.0]);
        let b = Matrix::from_vec(2, 2, vec![f64::INFINITY, 5.0, 6.0, f64::NAN]);
        let c = a.matmul(&b);
        assert!(c[(0, 0)].is_nan(), "0×∞ + 1×6 must be NaN, got {}", c[(0, 0)]);
        assert!(c[(0, 1)].is_nan(), "0×5 + 1×NaN must be NaN, got {}", c[(0, 1)]);
        assert!(c[(1, 0)].is_infinite(), "2×∞ + 0×6 must be ∞, got {}", c[(1, 0)]);
        assert!(c[(1, 1)].is_nan(), "2×5 + 0×NaN must be NaN, got {}", c[(1, 1)]);
    }

    #[test]
    fn matmul_zero_skip_still_fast_path_on_finite_rows() {
        // The sparse skip survives for finite B: a fully-zero A row gives
        // an exactly-zero output row, not an accumulation of -0.0 noise.
        let a = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![-1.0, 2.0, 3.0, -4.0]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[0.0, 0.0]);
        assert_eq!(c.row(1), &[2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
