//! The workspace's parallel-for primitive: scoped workers, ordered
//! results, zero `'static` bounds.
//!
//! This module is the dependency-inverted core of the
//! `observatory-runtime` worker pool. The runtime crate sits *above* the
//! transformer in the crate graph (runtime → models → transformer →
//! linalg), so the primitive the encoder kernels parallelize on lives
//! here, at the bottom, and `observatory_runtime::pool` wraps it with
//! span instrumentation. One pool implementation, two entry points —
//! table-level batches (runtime) and row/head-level kernel loops
//! (transformer) — both honouring the same `--jobs` /
//! `OBSERVATORY_JOBS` setting.
//!
//! Determinism: [`run_indexed`] evaluates a pure `f(0..n)` on up to
//! `jobs` threads and returns results **in index order**, so callers
//! observe exactly the output of the serial loop regardless of worker
//! count or scheduling. Work distribution is a single shared atomic
//! cursor (dynamic self-scheduling), which load-balances skewed
//! workloads without a per-item cost model.
//!
//! Nesting: worker threads mark themselves with a thread-local flag.
//! [`current_jobs`] reports `1` inside a worker, so a kernel invoked
//! from an `encode_batch` worker runs serially instead of spawning
//! `jobs²` threads. The flag changes only *where* work runs, never its
//! result.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

thread_local! {
    /// Set while the current thread is a pool worker.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide default worker count for kernel-level parallelism.
/// `0` means "not configured": fall back to [`resolve_jobs`]`(None)`.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Install the process-wide default used by [`current_jobs`]. The CLI
/// calls this from `--jobs`; benches call it to pin serial vs parallel
/// configurations. Passing `0` clears the override.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// Resolve a worker count: explicit request > `OBSERVATORY_JOBS` env
/// var > available parallelism (capped at 8 — encode batches rarely
/// scale past that within the default cache budget). Always at least 1.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var("OBSERVATORY_JOBS").ok().and_then(|v| v.parse::<usize>().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(8)))
        .max(1)
}

/// The worker count kernels should use *right now*: `1` on a pool
/// worker thread (nested parallelism would oversubscribe), otherwise
/// the [`set_default_jobs`] override or [`resolve_jobs`]`(None)`.
pub fn current_jobs() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => resolve_jobs(None),
        n => n,
    }
}

/// Whether the current thread is a pool worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Evaluate `f(0..n)` on up to `jobs` threads; results are returned in
/// index order. `jobs <= 1` (or `n <= 1`) runs inline on the caller's
/// thread with zero spawn overhead.
///
/// # Panics
/// Re-raises the first worker panic.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_scoped(jobs, n, |_| (), |(), i| f(i))
}

/// [`run_indexed`] with a per-worker context: `setup(w)` runs once on
/// each spawned worker thread `w` before it pulls work, and the value it
/// returns is threaded through every `f(&mut ctx, i)` call that worker
/// makes, then dropped when the worker exits. The runtime pool uses
/// this to open an RAII tracing span per worker; kernels that need
/// per-thread scratch buffers can reuse it.
///
/// The inline fast path (`jobs <= 1 || n <= 1`) spawns no workers and
/// therefore calls `setup` **zero** times — `f` runs with a fresh
/// context built from `setup(0)` only when at least one thread spawns.
/// Inline execution uses a single `setup`-free context obtained the
/// same way workers do, so `f` must not rely on `setup` being called
/// exactly once per run. Results are bit-identical to the serial loop
/// for any `jobs`, because `f` is pure in `i`.
///
/// # Panics
/// Re-raises the first worker panic.
pub fn run_indexed_scoped<T, G, S, F>(jobs: usize, n: usize, setup: S, f: F) -> Vec<T>
where
    T: Send,
    S: Fn(usize) -> G + Sync,
    F: Fn(&mut G, usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        let mut ctx = setup(0);
        return (0..n).map(|i| f(&mut ctx, i)).collect();
    }
    let workers = jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            let setup = &setup;
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                let mut ctx = setup(w);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send can only fail if the receiver is gone, which
                    // means the parent scope is unwinding already.
                    if tx.send((i, f(&mut ctx, i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            slots[i] = Some(v);
        }
    });
    slots.into_iter().map(|s| s.expect("every index produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_any_job_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            assert_eq!(run_indexed(jobs, 100, |i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn scoped_context_threads_through() {
        // Each worker counts its own items; the sum of all contexts'
        // items equals n (observed via a side channel).
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        struct Tally<'a>(usize, &'a AtomicUsize);
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                self.1.fetch_add(self.0, Ordering::SeqCst);
            }
        }
        let out = run_indexed_scoped(
            3,
            20,
            |_w| Tally(0, &total),
            |t, i| {
                t.0 += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(total.load(Ordering::SeqCst), 20, "every item tallied exactly once");
    }

    #[test]
    fn workers_report_in_worker() {
        assert!(!in_worker(), "caller thread is not a worker");
        let flags = run_indexed(4, 8, |_| in_worker());
        assert!(flags.iter().all(|&f| f), "worker threads must set the flag");
        // Nested parallelism collapses to serial.
        let nested = run_indexed(4, 4, |_| current_jobs());
        assert!(nested.iter().all(|&j| j == 1), "nested jobs clamp to 1: {nested:?}");
    }

    #[test]
    fn default_jobs_override() {
        set_default_jobs(3);
        assert_eq!(current_jobs(), 3);
        set_default_jobs(0);
        assert!(current_jobs() >= 1);
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1, "clamped to >= 1");
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panic_propagates() {
        run_indexed(2, 8, |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }
}
