//! Vector kernels: dot products, norms, similarities and distances.
//!
//! All functions take plain `&[f64]` slices so they compose with both
//! `Vec<f64>` embeddings and [`crate::Matrix`] row views without copies.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm_l2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Manhattan (L1) norm.
#[inline]
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Cosine similarity in `[-1, 1]`.
///
/// Returns `0.0` when either vector has zero norm: a zero embedding carries
/// no directional information, and treating it as orthogonal to everything
/// keeps downstream measures (e.g. sample fidelity averages) finite.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (norm_l2(a), norm_l2(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    // Clamp: accumulated floating-point error can push |cos| past 1 for
    // nearly-parallel high-dimensional vectors, which would break acos-based
    // consumers and bound assertions.
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Squared Euclidean distance.
pub fn sq_l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_l2_distance: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    sq_l2_distance(a, b).sqrt()
}

/// Manhattan distance.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Elementwise difference `a - b`, the "translation vector" of
/// Observatory's functional-dependency measure (Measure 4).
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Add `b` into `a` in place.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add_assign: dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Scale a vector by a scalar, in place.
pub fn scale_assign(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Scaled copy `s * a`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Normalize to unit L2 norm. A zero vector is returned unchanged.
pub fn normalize(a: &[f64]) -> Vec<f64> {
    let n = norm_l2(a);
    if n == 0.0 {
        a.to_vec()
    } else {
        scale(a, 1.0 / n)
    }
}

/// Arithmetic mean of a non-empty set of equal-length vectors.
///
/// # Panics
/// Panics if `vs` is empty or the vectors disagree on dimensionality.
pub fn mean(vs: &[Vec<f64>]) -> Vec<f64> {
    mean_of_rows(vs.iter().map(|v| v.as_slice()))
}

/// Arithmetic mean over an iterator of vector slices.
///
/// # Panics
/// Panics if the iterator is empty or dimensions disagree.
pub fn mean_of_rows<'a, I: IntoIterator<Item = &'a [f64]>>(rows: I) -> Vec<f64> {
    let mut it = rows.into_iter();
    let first = it.next().expect("mean_of_rows: empty input");
    let mut acc = first.to_vec();
    let mut n = 1usize;
    for r in it {
        add_assign(&mut acc, r);
        n += 1;
    }
    scale_assign(&mut acc, 1.0 / n as f64);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm_l2(&a), 5.0);
        assert_eq!(norm_l1(&a), 7.0);
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = [1.0, 2.0, 3.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let a = [1.0, -2.0];
        let b = [-1.0, 2.0];
        assert!((cosine(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(sq_l2_distance(&a, &b), 25.0);
        assert_eq!(l2_distance(&a, &b), 5.0);
        assert_eq!(l1_distance(&a, &b), 7.0);
    }

    #[test]
    fn arithmetic() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(scale(&a, 2.0), vec![2.0, 4.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let v = normalize(&[3.0, 4.0]);
        assert!((norm_l2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_is_identity() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let vs = vec![vec![1.0, 0.0], vec![3.0, 2.0]];
        assert_eq!(mean(&vs), vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
