//! Principal component analysis via power iteration with deflation.
//!
//! The paper visualizes row- and column-shuffle embedding clouds by
//! projecting them onto their top two principal components (Figures 6
//! and 8). PCA here is computed directly on the sample covariance matrix
//! with power iteration, which is exact enough for the leading components
//! of the small (≤ a few hundred observations) samples Observatory
//! produces and keeps the crate dependency-free.

use crate::matrix::Matrix;
use crate::moments::moments;
use crate::vector;

/// Maximum power-iteration sweeps per component.
const MAX_ITERS: usize = 2000;
/// Convergence threshold on the change of the eigenvector between sweeps.
const TOL: f64 = 1e-26;

/// Result of a PCA fit: leading eigenpairs of the sample covariance.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Sample mean subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal axes, one row per component (orthonormal).
    pub components: Matrix,
    /// Eigenvalues (explained variances), descending.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit the top-`k` principal components of the rows of `sample`.
    ///
    /// `k` is clamped to the dimensionality. Components whose eigenvalue is
    /// numerically zero (no remaining variance) are still returned as valid
    /// unit vectors so the projection always has `k` coordinates.
    ///
    /// # Panics
    /// Panics if `sample` has no rows.
    pub fn fit(sample: &Matrix, k: usize) -> Pca {
        let d = sample.cols();
        let k = k.min(d);
        let m = moments(sample);
        let mut cov = m.cov.clone();
        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for c in 0..k {
            let (val, vec_) = dominant_eigenpair(&cov, c as u64);
            explained.push(val.max(0.0));
            components.row_mut(c).copy_from_slice(&vec_);
            deflate(&mut cov, val, &vec_);
        }
        Pca { mean: m.mean, components, explained_variance: explained }
    }

    /// Number of fitted components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Project one observation onto the fitted components.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        let centered = vector::sub(x, &self.mean);
        self.components.rows_iter().map(|c| vector::dot(c, &centered)).collect()
    }

    /// Project every row of `sample`; returns an `n × k` matrix.
    pub fn project_all(&self, sample: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = sample.rows_iter().map(|r| self.project(r)).collect();
        Matrix::from_rows(&rows)
    }
}

/// Dominant eigenpair of a symmetric PSD matrix by power iteration.
///
/// `salt` decorrelates the deterministic start vectors across deflation
/// rounds so a start vector orthogonal to the dominant eigenvector cannot
/// stall convergence for every component at once.
fn dominant_eigenpair(a: &Matrix, salt: u64) -> (f64, Vec<f64>) {
    let d = a.rows();
    let mut rng = crate::rng::SplitMix64::new(0x9E3779B9 ^ salt);
    let mut v: Vec<f64> = (0..d).map(|_| rng.next_normal()).collect();
    let n = vector::norm_l2(&v);
    if n == 0.0 || d == 0 {
        return (0.0, v);
    }
    vector::scale_assign(&mut v, 1.0 / n);
    let mut eigenvalue = 0.0;
    for _ in 0..MAX_ITERS {
        let w = a.matvec(&v);
        let norm = vector::norm_l2(&w);
        if norm < 1e-300 {
            // Matrix annihilates v: no variance left in this subspace.
            return (0.0, v);
        }
        let next: Vec<f64> = w.iter().map(|x| x / norm).collect();
        eigenvalue = vector::dot(&next, &a.matvec(&next));
        let delta = vector::sq_l2_distance(&next, &v).min(
            // Eigenvectors are sign-ambiguous; accept convergence to −v too.
            next.iter().zip(&v).map(|(x, y)| (x + y) * (x + y)).sum::<f64>(),
        );
        v = next;
        if delta < TOL {
            break;
        }
    }
    (eigenvalue, v)
}

/// Hotelling deflation: `A ← A − λ v vᵀ`.
fn deflate(a: &mut Matrix, eigenvalue: f64, v: &[f64]) {
    let d = a.rows();
    for i in 0..d {
        for j in 0..d {
            a[(i, j)] -= eigenvalue * v[i] * v[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cloud stretched along (1, 1)/√2 with minor noise along (1, −1)/√2.
    fn stretched_cloud() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let t = (i as f64 - 10.0) / 2.0; // major axis coordinate
                                             // Both ± minor offsets at every t, so minor is uncorrelated
                                             // with major and the principal axis is exactly (1, 1)/√2.
            rows.push(vec![t + 0.1, t - 0.1]);
            rows.push(vec![t - 0.1, t + 0.1]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_is_major_axis() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let c0 = pca.components.row(0);
        // Up to sign, c0 ≈ (1, 1)/√2.
        let target = 1.0 / 2f64.sqrt();
        assert!((c0[0].abs() - target).abs() < 1e-4, "{c0:?}");
        assert!((c0[1].abs() - target).abs() < 1e-4, "{c0:?}");
        assert!(c0[0].signum() == c0[1].signum());
    }

    #[test]
    fn eigenvalues_descend_and_dominant_explains_most() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        assert!(pca.explained_variance[0] > pca.explained_variance[1]);
        let total: f64 = pca.explained_variance.iter().sum();
        assert!(pca.explained_variance[0] / total > 0.95);
    }

    #[test]
    fn components_orthonormal() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let c0 = pca.components.row(0);
        let c1 = pca.components.row(1);
        assert!((vector::norm_l2(c0) - 1.0).abs() < 1e-8);
        assert!((vector::norm_l2(c1) - 1.0).abs() < 1e-8);
        assert!(vector::dot(c0, c1).abs() < 1e-5);
    }

    #[test]
    fn projection_centers_data() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let proj = pca.project_all(&stretched_cloud());
        let mean = proj.row_mean();
        assert!(mean.iter().all(|m| m.abs() < 1e-9));
    }

    #[test]
    fn projection_variance_matches_eigenvalue() {
        let cloud = stretched_cloud();
        let pca = Pca::fit(&cloud, 1);
        let proj = pca.project_all(&cloud);
        let coords = proj.col(0);
        let var = crate::moments::variance(&coords);
        assert!((var - pca.explained_variance[0]).abs() / var < 1e-6);
    }

    #[test]
    fn constant_data_zero_variance() {
        let m = Matrix::from_rows(&vec![vec![1.0, 2.0]; 5]);
        let pca = Pca::fit(&m, 2);
        assert!(pca.explained_variance.iter().all(|&v| v.abs() < 1e-12));
        // Projection is well-defined (all zeros).
        assert!(pca.project(&[1.0, 2.0]).iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn k_clamped_to_dimension() {
        let m = stretched_cloud();
        let pca = Pca::fit(&m, 10);
        assert_eq!(pca.k(), 2);
    }
}
