//! Tier-dispatched vector reductions with a **fixed 8-lane accumulation
//! order** shared by every backend.
//!
//! The PR-3 kernels left reductions (`vector::dot`, per-row softmax
//! normalizers, kNN cosine scores) on a strictly sequential
//! left-to-right sum. That order is the one thing a SIMD backend cannot
//! keep: an 8-wide register sums elements `8t + l` into lane `l`, which
//! is a *different* (still deterministic) parenthesization. Rather than
//! accept tier-dependent bits, this module fixes the accumulation
//! structure once — eight striped partial sums combined by the balanced
//! tree `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, then a sequential
//! scalar tail — and implements **that** structure in scalar, SSE2 and
//! AVX2 code. All tiers produce byte-identical results; the active tier
//! only changes throughput. See DESIGN.md §11.
//!
//! FMA is deliberately excluded: `vfmadd` contracts `a*b + c` into one
//! rounding, which would desynchronize the vector tiers from the
//! two-rounding scalar reference.
//!
//! NaN/±inf propagate exactly as the arithmetic dictates — there is no
//! zero-skip or shortcut anywhere in this module (preserving the PR-3
//! NaN-propagation fixes).

use crate::simd::{self, Tier};

/// Dot product `Σ a[i]·b[i]` in the fixed 8-lane order, dispatched on
/// the process-wide [`simd::tier`].
///
/// Panics if the slices differ in length (same contract as
/// [`crate::vector::dot`]).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_with_tier(a, b, simd::tier())
}

/// [`dot`] forced onto a specific tier. All tiers are bitwise
/// identical; this entry point exists for equivalence tests and
/// benchmarks. `tier` wider than the host CPU supports falls back to
/// the widest available tier (never faults).
#[inline]
pub fn dot_with_tier(a: &[f64], b: &[f64], tier: Tier) -> f64 {
    assert_eq!(a.len(), b.len(), "reduce::dot: length mismatch {} vs {}", a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        let tier = tier.min(simd::detect());
        match tier {
            // SAFETY: tier is clamped to the detected CPU features.
            Tier::Avx2 => return unsafe { simd::x86::dot_avx2(a, b) },
            Tier::Sse2 => return unsafe { simd::x86::dot_sse2(a, b) },
            Tier::Scalar => {}
        }
    }
    let _ = tier;
    simd::dot_scalar(a, b)
}

/// Squared Euclidean norm `Σ a[i]²` in the fixed 8-lane order.
#[inline]
pub fn sq_norm(a: &[f64]) -> f64 {
    sq_norm_with_tier(a, simd::tier())
}

/// [`sq_norm`] forced onto a specific tier (clamped to the host CPU).
#[inline]
pub fn sq_norm_with_tier(a: &[f64], tier: Tier) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        let tier = tier.min(simd::detect());
        match tier {
            // SAFETY: tier is clamped to the detected CPU features.
            Tier::Avx2 => return unsafe { simd::x86::sq_norm_avx2(a) },
            Tier::Sse2 => return unsafe { simd::x86::sq_norm_sse2(a) },
            Tier::Scalar => {}
        }
    }
    let _ = tier;
    simd::sq_norm_scalar(a)
}

/// Euclidean norm `√(Σ a[i]²)`. One `sqrt` on top of [`sq_norm`], so it
/// inherits bit-identity across tiers.
#[inline]
pub fn norm_l2(a: &[f64]) -> f64 {
    sq_norm(a).sqrt()
}

/// Cosine similarity with the same degenerate-input contract as
/// [`crate::vector::cosine`]: returns `0.0` when either vector has zero
/// norm, clamps the quotient into `[-1, 1]`.
///
/// Panics on length mismatch.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm_l2(a);
    let nb = norm_l2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine from a precomputed pair of L2 norms (the kNN hot path hoists
/// norms once per item set instead of recomputing them per query).
/// Same degenerate-input contract as [`cosine`]; the caller is
/// responsible for the norms actually matching the vectors.
#[inline]
pub fn cosine_prenormed(dotp: f64, na: f64, nb: f64) -> f64 {
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dotp / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn all_tiers_bitwise_identical_dot() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let a = pattern(n, 1);
            let b = pattern(n, 2);
            let want = simd::dot_scalar(&a, &b);
            for tier in simd::available_tiers() {
                let got = dot_with_tier(&a, &b, tier);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "dot n={n} tier={tier}: {got:?} vs scalar {want:?}"
                );
            }
        }
    }

    #[test]
    fn all_tiers_bitwise_identical_sq_norm() {
        for n in [0usize, 1, 5, 8, 13, 24, 40, 83] {
            let a = pattern(n, 3);
            let want = simd::sq_norm_scalar(&a);
            for tier in simd::available_tiers() {
                let got = sq_norm_with_tier(&a, tier);
                assert_eq!(got.to_bits(), want.to_bits(), "sq_norm n={n} tier={tier}");
            }
        }
    }

    #[test]
    fn nan_and_inf_propagate() {
        let mut a = pattern(19, 4);
        let b = pattern(19, 5);
        a[6] = f64::NAN;
        for tier in simd::available_tiers() {
            assert!(dot_with_tier(&a, &b, tier).is_nan(), "NaN must propagate on {tier}");
        }
        let mut c = pattern(19, 6);
        c[17] = f64::INFINITY; // tail region
        let d = pattern(19, 7);
        for tier in simd::available_tiers() {
            let got = dot_with_tier(&c, &d, tier);
            let want = dot_with_tier(&c, &d, Tier::Scalar);
            assert_eq!(got.to_bits(), want.to_bits(), "inf tail must match on {tier}");
        }
    }

    #[test]
    fn cosine_degenerate_and_clamp() {
        assert_eq!(cosine(&[0.0; 4], &[1.0, 2.0, 3.0, 4.0]), 0.0);
        assert_eq!(cosine(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
        let v = pattern(33, 8);
        let c = cosine(&v, &v);
        assert!((c - 1.0).abs() < 1e-12 && c <= 1.0, "self-cosine clamped to 1: {c}");
        // Mirrors vector::cosine on generic input.
        let a = pattern(21, 9);
        let b = pattern(21, 10);
        let want = crate::vector::cosine(&a, &b);
        assert!((cosine(&a, &b) - want).abs() < 1e-12);
    }

    #[test]
    fn cosine_prenormed_matches_cosine() {
        let a = pattern(29, 11);
        let b = pattern(29, 12);
        let na = norm_l2(&a);
        let nb = norm_l2(&b);
        let via = cosine_prenormed(dot(&a, &b), na, nb);
        assert_eq!(via.to_bits(), cosine(&a, &b).to_bits());
        assert_eq!(cosine_prenormed(1.0, 0.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0, 2.0], &[1.0]);
    }
}
