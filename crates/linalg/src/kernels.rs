//! Fused, tiled, row-parallel encoder kernels.
//!
//! This module is the hot path of the whole system: every Observatory
//! property (P1–P8) and downstream task re-encodes thousands of table
//! variants, and each encode is a stack of the four operations here —
//! dense matmul, bias-fused linear maps, the GELU feed-forward, and
//! multi-head attention. The kernels are written for speed *without*
//! giving up the workspace's determinism guarantee:
//!
//! - **Register-tiled matmul** ([`matmul`], [`linear_bias`],
//!   [`linear_bias_gelu`]): a 4×4 output tile accumulates in registers
//!   across the whole `k` loop (`gemm`), so the inner loop does no
//!   stores at all — the naive AXPY formulation streams the output row
//!   through memory once *per `k`*. The per-element accumulation order
//!   (ascending `k`) is **identical** to the naive `i,k,j` loop, so
//!   matmul and `linear_bias` match the reference path bit-for-bit (up
//!   to the sign of zero — the naive path's `a == 0.0` skip adds nothing
//!   where the kernel adds `±0.0`).
//! - **Transposed-B fast path** ([`matmul_transb`], and the Q·Kᵀ step
//!   inside [`attention`]): when the right operand is already stored
//!   row-major in its transposed form, logits accumulate over contiguous
//!   rows instead of strided column walks.
//! - **Fused epilogues**: bias addition and GELU run on the output block
//!   while it is still cache-hot, in the same order as the unfused
//!   reference (`Σ`, then `+bias`, then `gelu`).
//! - **Fast transcendentals** ([`crate::fastmath`]): the kernel-internal
//!   softmax and the fused GELU epilogue use branch-light polynomial
//!   `exp`/`tanh` that inline and vectorize — profiling shows libm
//!   `exp`/`tanh` are ~40% of scalar attention and ~35% of the scalar
//!   feed-forward. This is the **only** numerical deviation from the
//!   reference path and it is ULP-bounded and regression-tested
//!   (≤ 1e-14 relative on `exp`, ≤ 1e-13 on GELU; see `fastmath`).
//! - **Head-batched attention** ([`attention`]): per-head K/V panels are
//!   repacked contiguously once per call, per-head bias/mask matrices
//!   arrive **materialized** (no closure calls in the inner loop), and
//!   query-row blocks are computed independently so the work
//!   parallelizes over [`crate::parallel`] with bit-identical results at
//!   any job count (the parallel unit is the row block; tiling inside a
//!   block does not depend on the job count).
//!
//! - **Runtime SIMD dispatch** ([`crate::simd`]): on an AVX2 CPU the
//!   GEMM inner loop runs 8-column `__m256d` strips and the softmax
//!   exponentiation runs the vectorized `exp`; both are **byte-identical**
//!   to the scalar tier (column-wise vectorization keeps per-element
//!   ascending-`k` order; reductions share a fixed 8-lane structure; FMA
//!   is excluded). `OBSERVATORY_SIMD=off|sse2|avx2` overrides detection.
//! - **Workspace-pooled serial path** ([`crate::workspace`]): at
//!   `jobs == 1` every kernel writes into per-thread pooled scratch
//!   instead of fresh `Vec`s, so a steady-state encode performs zero
//!   heap allocations after warmup. Parallel blocks keep per-block
//!   buffers (scoped worker threads are ephemeral by design).
//!
//! Every public kernel records its wall time in [`stats`], which the
//! bench harness and CLI surface in their runtime reports.
//!
//! ## Numerical edge cases (fixed here, regression-tested)
//!
//! - [`softmax_inplace`] saturates NaN logits to `-∞` (zero mass)
//!   instead of letting a single NaN corrupt the whole distribution
//!   through the `exp`/normalize pass.
//! - [`attention`] gives **fully-masked** query rows a self-only
//!   attention distribution instead of the uniform fallback that used to
//!   leak *masked* key content into the output.

use crate::fastmath;
use crate::matrix::Matrix;
use crate::parallel;
use crate::reduce;
use crate::simd;
use crate::workspace;

/// Output-row block size: how many rows of A/out one task owns.
const TILE_I: usize = 32;
/// Minimum flop count before a kernel spawns worker threads; below this
/// the `std::thread::scope` spawn cost dominates any speedup.
const MIN_PAR_FLOPS: usize = 1 << 18;
/// Row-block granularity for the attention kernel's query-parallel loop.
const ATTN_ROW_BLOCK: usize = 8;

/// Clamp a requested job count to 1 when the kernel is too small to
/// amortize thread spawns. Gating affects only *where* work runs.
#[inline]
fn gate_jobs(jobs: usize, flops: usize) -> usize {
    if flops < MIN_PAR_FLOPS {
        1
    } else {
        jobs
    }
}

/// GELU activation (tanh approximation), applied elementwise.
///
/// This is the *reference* GELU (libm `tanh`); the fused kernel epilogue
/// uses [`fastmath::gelu_approx`], which agrees to ≤ 1e-13 relative.
#[inline]
pub fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + ((2.0 / std::f64::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
}

/// Numerically-stable softmax over a slice, in place.
///
/// Edge cases:
/// - **NaN logits** are saturated to `-∞` (zero probability mass) before
///   the max/exp pass. The previous implementation's `f64::max` fold
///   silently ignored NaN, found a finite max, and then `exp(NaN)`
///   poisoned the entire distribution during normalization.
/// - **All-`-∞` rows** (and all-NaN rows, after saturation) become
///   uniform — standalone callers use this for "no permitted targets";
///   the attention kernel handles that case itself *before* softmax so
///   masked keys receive no mass (see [`attention`]).
pub fn softmax_inplace(xs: &mut [f64]) {
    let Some(max) = saturate_nan_logits(xs) else {
        return;
    };
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Kernel-internal softmax, deferred-normalization form: identical NaN
/// saturation to [`softmax_inplace`], but exponentiates with
/// [`fastmath::exp_approx`] (≤ 1e-14 relative; `-∞` still maps to an
/// exact `0.0`, so masked keys receive exactly zero mass). Leaves the
/// *unnormalized* exponentials in `xs` and returns the `1/sum` factor
/// so the caller can fold the normalizing multiply into its next pass
/// over the row (the attention kernel fuses it with the head-summed
/// weights accumulation). The uniform fallback writes final values and
/// returns `1.0`. Normalizing by a precomputed reciprocal is one extra
/// rounding vs the reference's per-element division — inside the
/// documented bound.
fn softmax_fast_scaled(xs: &mut [f64]) -> f64 {
    let Some(max) = saturate_nan_logits(xs) else {
        return 1.0;
    };
    // Exponentiation and summation fused in one tier-dispatched pass,
    // eight lanes wide (the fixed reduction structure shared by scalar,
    // SSE2 and AVX2 — see `crate::simd`). All tiers are byte-identical;
    // vs a left-fold sum the fixed lane split differs only within the
    // documented fastmath rounding budget.
    1.0 / exp_sum_inplace(xs, max)
}

/// Tier-dispatched `xs[i] ← exp(xs[i] − max)` returning the sum in the
/// fixed 8-lane order. Every tier produces identical bits.
#[inline]
fn exp_sum_inplace(xs: &mut [f64], max: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        match simd::tier() {
            // SAFETY: `simd::tier()` never exceeds the detected CPU
            // capability, so the required instructions exist.
            simd::Tier::Avx2 => return unsafe { simd::x86::exp_sum_avx2(xs, max) },
            simd::Tier::Sse2 => return unsafe { simd::x86::exp_sum_sse2(xs, max) },
            simd::Tier::Scalar => {}
        }
    }
    simd::exp_sum_scalar(xs, max)
}

/// [`softmax_fast_scaled`] with the normalization applied — the form the
/// equivalence suites exercise directly (`tests/simd_equivalence.rs`
/// asserts it bitwise across tiers). Same NaN/-∞ contract as
/// [`softmax_inplace`], evaluated with [`fastmath::exp_approx`].
pub fn softmax_fast_inplace(xs: &mut [f64]) {
    let inv = softmax_fast_scaled(xs);
    for x in xs.iter_mut() {
        *x *= inv;
    }
}

/// Shared softmax prologue: saturate NaNs to `-∞`, return the finite max
/// or — when there is none — write the uniform fallback and return None.
fn saturate_nan_logits(xs: &mut [f64]) -> Option<f64> {
    // Branchless scan: `f64::max` ignores a NaN operand, so the max is
    // the same as an explicit NaN-skipping fold, and both reductions
    // vectorize.
    let mut max = f64::NEG_INFINITY;
    let mut saw_nan = false;
    for &x in xs.iter() {
        saw_nan |= x.is_nan();
        max = max.max(x);
    }
    if saw_nan {
        for x in xs.iter_mut() {
            if x.is_nan() {
                *x = f64::NEG_INFINITY;
            }
        }
    }
    if !max.is_finite() {
        let u = 1.0 / xs.len() as f64;
        xs.iter_mut().for_each(|x| *x = u);
        return None;
    }
    Some(max)
}

#[inline]
fn axpy(out: &mut [f64], a: f64, b: &[f64]) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// Register-tiled GEMM: `C[r][j] (+)= Σ_k A[r][k] · B[k][j]` — assign
/// when `ACCUM == false`, accumulate when `true`.
///
/// `a` is `rows × kd` with row stride `lda`, `b` is `kd × m` flat
/// row-major, `c` has row stride `ldc` (≥ `m`). The 4×4 micro-tile keeps
/// sixteen partial sums in registers across the entire `k` loop — the
/// inner loop issues no stores — and loads each B value once per four
/// output rows. Edge rows/columns fall back to AXPY/dot loops.
///
/// **Loop order:** column tiles outermost, row quads inside. One B
/// column strip (`kd` rows × 4 values ≈ `kd` cache lines) stays hot in
/// L1 across every row quad of the block, and the A block (≤
/// `TILE_I × kd`, the smaller operand) is what gets re-streamed per
/// tile. The reverse order re-reads *all of B* — the large operand —
/// once per row quad, which is an order of magnitude more memory
/// traffic at FFN shapes.
///
/// **Determinism:** every output element accumulates in ascending-`k`
/// order exactly like the scalar triple loop, so results are
/// bit-identical to the naive path (up to the sign of zero) and
/// independent of tile traversal order and of how callers block rows
/// across threads.
#[allow(clippy::too_many_arguments)]
fn gemm<const ACCUM: bool>(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    rows: usize,
    kd: usize,
    m: usize,
) {
    debug_assert!(ldc >= m && lda >= kd);
    debug_assert!(b.len() >= kd * m);
    let mut j0 = 0;
    // AVX2 tier: 8-column vector strips over the full row quads first.
    // Vectorization is across output *columns*, so every element keeps
    // the scalar ascending-`k` mul-then-add order — the tiers are
    // byte-identical and the choice below affects throughput only.
    // Remainder columns/rows fall through to the scalar paths.
    #[cfg(target_arch = "x86_64")]
    if simd::tier() == simd::Tier::Avx2 {
        while j0 + 8 <= m {
            // SAFETY: the tier is clamped to detected CPU capability.
            unsafe { simd::x86::gemm_strip8_avx2::<ACCUM>(c, ldc, a, lda, b, rows, kd, m, j0) };
            j0 += 8;
        }
    }
    while j0 + 4 <= m {
        let mut r0 = 0;
        while r0 + 4 <= rows {
            let a0 = &a[r0 * lda..][..kd];
            let a1 = &a[(r0 + 1) * lda..][..kd];
            let a2 = &a[(r0 + 2) * lda..][..kd];
            let a3 = &a[(r0 + 3) * lda..][..kd];
            let (mut s00, mut s01, mut s02, mut s03) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut s10, mut s11, mut s12, mut s13) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut s20, mut s21, mut s22, mut s23) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut s30, mut s31, mut s32, mut s33) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for k in 0..kd {
                let bk = &b[k * m + j0..k * m + j0 + 4];
                let (b0, b1, b2, b3) = (bk[0], bk[1], bk[2], bk[3]);
                let x0 = a0[k];
                s00 += x0 * b0;
                s01 += x0 * b1;
                s02 += x0 * b2;
                s03 += x0 * b3;
                let x1 = a1[k];
                s10 += x1 * b0;
                s11 += x1 * b1;
                s12 += x1 * b2;
                s13 += x1 * b3;
                let x2 = a2[k];
                s20 += x2 * b0;
                s21 += x2 * b1;
                s22 += x2 * b2;
                s23 += x2 * b3;
                let x3 = a3[k];
                s30 += x3 * b0;
                s31 += x3 * b1;
                s32 += x3 * b2;
                s33 += x3 * b3;
            }
            let store = |c: &mut [f64], idx: usize, s: f64| {
                if ACCUM {
                    c[idx] += s;
                } else {
                    c[idx] = s;
                }
            };
            let c0 = r0 * ldc + j0;
            store(c, c0, s00);
            store(c, c0 + 1, s01);
            store(c, c0 + 2, s02);
            store(c, c0 + 3, s03);
            let c1 = (r0 + 1) * ldc + j0;
            store(c, c1, s10);
            store(c, c1 + 1, s11);
            store(c, c1 + 2, s12);
            store(c, c1 + 3, s13);
            let c2 = (r0 + 2) * ldc + j0;
            store(c, c2, s20);
            store(c, c2 + 1, s21);
            store(c, c2 + 2, s22);
            store(c, c2 + 3, s23);
            let c3 = (r0 + 3) * ldc + j0;
            store(c, c3, s30);
            store(c, c3 + 1, s31);
            store(c, c3 + 2, s32);
            store(c, c3 + 3, s33);
            r0 += 4;
        }
        j0 += 4;
    }
    // Column remainder: one strided B column shared by four rows.
    let mut r0 = 0;
    while r0 + 4 <= rows {
        let a0 = &a[r0 * lda..][..kd];
        let a1 = &a[(r0 + 1) * lda..][..kd];
        let a2 = &a[(r0 + 2) * lda..][..kd];
        let a3 = &a[(r0 + 3) * lda..][..kd];
        for j in j0..m {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for k in 0..kd {
                let bv = b[k * m + j];
                s0 += a0[k] * bv;
                s1 += a1[k] * bv;
                s2 += a2[k] * bv;
                s3 += a3[k] * bv;
            }
            let store = |c: &mut [f64], idx: usize, s: f64| {
                if ACCUM {
                    c[idx] += s;
                } else {
                    c[idx] = s;
                }
            };
            store(c, r0 * ldc + j, s0);
            store(c, (r0 + 1) * ldc + j, s1);
            store(c, (r0 + 2) * ldc + j, s2);
            store(c, (r0 + 3) * ldc + j, s3);
        }
        r0 += 4;
    }
    // Row remainder: AXPY over B rows (same ascending-k element order).
    for r in r0..rows {
        let ar = &a[r * lda..][..kd];
        let cr = &mut c[r * ldc..r * ldc + m];
        if !ACCUM {
            cr.fill(0.0);
        }
        for (k, &av) in ar.iter().enumerate() {
            axpy(cr, av, &b[k * m..(k + 1) * m]);
        }
    }
}

/// Epilogue applied to a finished output block, row by row.
enum Epilogue<'a> {
    None,
    Bias(&'a [f64]),
    BiasGelu(&'a [f64]),
}

/// Apply an epilogue to a finished `rows × m` block while it is
/// cache-hot (shared by the serial and parallel paths — identical
/// operation order in both).
fn apply_epilogue(buf: &mut [f64], m: usize, epilogue: &Epilogue<'_>) {
    match epilogue {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            for row in buf.chunks_exact_mut(m) {
                for (o, &bv) in row.iter_mut().zip(*bias) {
                    *o += bv;
                }
            }
        }
        Epilogue::BiasGelu(bias) => {
            for row in buf.chunks_exact_mut(m) {
                for (o, &bv) in row.iter_mut().zip(*bias) {
                    *o = fastmath::gelu_approx(*o + bv);
                }
            }
        }
    }
}

/// Blocked `A · B` with an optional fused per-row epilogue; the shared
/// engine under [`matmul`], [`linear_bias`] and [`linear_bias_gelu`].
///
/// At `jobs == 1` the whole product is computed into one
/// [`workspace`]-pooled buffer (no per-block buffers, no gather copy,
/// zero steady-state heap allocations); block decomposition does not
/// affect any element's accumulation order, so serial and parallel
/// outputs stay bit-identical.
fn matmul_blocked(a: &Matrix, b: &Matrix, epilogue: &Epilogue<'_>, jobs: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimension mismatch");
    let (n, kdim, m) = (a.rows(), a.cols(), b.cols());
    if let Epilogue::Bias(bias) | Epilogue::BiasGelu(bias) = epilogue {
        assert_eq!(bias.len(), m, "matmul: bias/out dimension mismatch");
    }
    let jobs = gate_jobs(jobs, 2 * n * kdim * m);
    let a_flat = a.as_slice();
    let b_flat = b.as_slice();
    if jobs == 1 {
        let mut data = workspace::take_f64(n * m);
        gemm::<false>(&mut data, m, a_flat, kdim, b_flat, n, kdim, m);
        apply_epilogue(&mut data, m, epilogue);
        return Matrix::from_vec(n, m, data);
    }
    let blocks = n.div_ceil(TILE_I).max(1);
    let block_bufs: Vec<Vec<f64>> = parallel::run_indexed(jobs, blocks, |bi| {
        let i0 = bi * TILE_I;
        let i1 = (i0 + TILE_I).min(n);
        let rows = i1 - i0;
        let mut buf = vec![0.0f64; rows * m];
        gemm::<false>(&mut buf, m, &a_flat[i0 * kdim..i1 * kdim], kdim, b_flat, rows, kdim, m);
        apply_epilogue(&mut buf, m, epilogue);
        buf
    });
    let mut data = Vec::with_capacity(n * m);
    for buf in block_bufs {
        data.extend_from_slice(&buf);
    }
    Matrix::from_vec(n, m, data)
}

/// Tiled, row-parallel matrix product `A · B`.
///
/// Bit-identical to [`Matrix::matmul`] on finite inputs (same ascending-
/// `k` accumulation order per output element), up to the sign of zero.
/// Unlike the naive path there is no `a == 0.0` skip, so non-finite
/// values in `B` always propagate.
pub fn matmul(a: &Matrix, b: &Matrix, jobs: usize) -> Matrix {
    let t = std::time::Instant::now();
    let out = matmul_blocked(a, b, &Epilogue::None, jobs);
    stats::record(stats::Kernel::Matmul, t.elapsed());
    out
}

/// `A · Bᵀ` where `bt` stores `Bᵀ` row-major (`m × k`): every output
/// element is a dot product of two contiguous rows — the layout-friendly
/// fast path for similarity matrices and attention logits.
///
/// Each element is a [`reduce::dot`] (tier-dispatched, fixed 8-lane
/// accumulation order — byte-identical across SIMD tiers and job
/// counts). That order differs from `a.matmul(&bt.transpose())`'s
/// sequential fold only in rounding (≤ 1e-12 relative on encoder-scale
/// inputs; tested).
pub fn matmul_transb(a: &Matrix, bt: &Matrix, jobs: usize) -> Matrix {
    assert_eq!(a.cols(), bt.cols(), "matmul_transb: inner dimension mismatch");
    let t = std::time::Instant::now();
    let (n, kdim, m) = (a.rows(), a.cols(), bt.rows());
    let jobs = gate_jobs(jobs, 2 * n * kdim * m);
    let out = if jobs == 1 {
        let mut data = workspace::take_f64(n * m);
        for j in 0..m {
            let b_row = bt.row(j);
            for i in 0..n {
                data[i * m + j] = reduce::dot(a.row(i), b_row);
            }
        }
        Matrix::from_vec(n, m, data)
    } else {
        let blocks = n.div_ceil(TILE_I).max(1);
        let block_bufs: Vec<Vec<f64>> = parallel::run_indexed(jobs, blocks, |bi| {
            let i0 = bi * TILE_I;
            let i1 = (i0 + TILE_I).min(n);
            let mut buf = vec![0.0f64; (i1 - i0) * m];
            for j in 0..m {
                let b_row = bt.row(j);
                for i in i0..i1 {
                    buf[(i - i0) * m + j] = reduce::dot(a.row(i), b_row);
                }
            }
            buf
        });
        let mut data = Vec::with_capacity(n * m);
        for buf in block_bufs {
            data.extend_from_slice(&buf);
        }
        Matrix::from_vec(n, m, data)
    };
    stats::record(stats::Kernel::Matmul, t.elapsed());
    out
}

/// Fused affine map `X · W + bias`, row-parallel. Equivalent to
/// [`matmul`] followed by a bias pass, but the bias lands while the
/// output block is cache-hot. Same accumulation order as the unfused
/// reference: `(Σ_k x·w) + bias` — bit-identical to it.
pub fn linear_bias(x: &Matrix, w: &Matrix, bias: &[f64], jobs: usize) -> Matrix {
    let t = std::time::Instant::now();
    let out = matmul_blocked(x, w, &Epilogue::Bias(bias), jobs);
    stats::record(stats::Kernel::LinearBias, t.elapsed());
    out
}

/// Fused `GELU(X · W + bias)`, row-parallel — the first half of the
/// Transformer feed-forward block in one pass. The GELU is evaluated
/// with [`fastmath::gelu_approx`]: ≤ 1e-13 relative vs the reference
/// [`gelu`] (the matmul+bias underneath is still bit-identical).
pub fn linear_bias_gelu(x: &Matrix, w: &Matrix, bias: &[f64], jobs: usize) -> Matrix {
    let t = std::time::Instant::now();
    let out = matmul_blocked(x, w, &Epilogue::BiasGelu(bias), jobs);
    stats::record(stats::Kernel::LinearBiasGelu, t.elapsed());
    out
}

/// Materialized attention adjustments for one forward call.
///
/// Producers (the encoder) evaluate their bias/mask *functions* once per
/// forward into these flat buffers; the kernel's inner loops then run
/// pure slice arithmetic with no dynamic dispatch.
pub struct AttentionSpec<'a> {
    /// Number of attention heads (`n_heads · head_dim == dim`).
    pub n_heads: usize,
    /// Per-head subspace width.
    pub head_dim: usize,
    /// Logit scale (sharpness / √head_dim).
    pub scale: f64,
    /// Per-head additive logit bias, head-major `[h][i][j]`
    /// (`n_heads · n · n` entries), or `None`.
    pub bias: Option<&'a [f64]>,
    /// Attention permission matrix `[i][j]` (`n · n` entries,
    /// `true` = query `i` may attend key `j`), or `None` (all permitted).
    pub mask: Option<&'a [bool]>,
}

/// Head-batched multi-head attention core.
///
/// Inputs are the already-projected `Q`, `K`, `V` (each `n × dim`);
/// `V` is assumed finite (masked keys contribute an exact `0 · v` term
/// in the blocked aggregation rather than being skipped). Returns the
/// pre-output-projection context (`n × dim`) and the **head-summed**
/// attention weights (`n × n`; divide by `n_heads` for the
/// head-averaged map).
///
/// Per call, `K` and `V` are repacked into per-head contiguous panels
/// (`Kᵀ` per head for the logit GEMM, `V` per head for the value
/// aggregation); query-row blocks are then processed independently — in
/// parallel across `jobs` workers — through three register-tiled steps:
/// logits (`Q·Kᵀ`, ascending-`d` order), per-row softmax
/// ([`fastmath::exp_approx`], ≤ 1e-14 relative), value aggregation
/// (`W·V`, ascending-`j` order). Outputs are bit-identical at any job
/// count; vs the scalar reference the only deviation is the documented
/// softmax ULP bound.
///
/// **Fully-masked queries** (a row of the mask with no permitted key)
/// attend only themselves: the former uniform-softmax fallback attended
/// *every* key, leaking forbidden token content through the value
/// aggregation.
///
/// # Panics
/// Panics on shape mismatches between `q`/`k`/`v`/`spec`.
pub fn attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    spec: &AttentionSpec<'_>,
    jobs: usize,
) -> (Matrix, Matrix) {
    let t = std::time::Instant::now();
    let n = q.rows();
    let dim = q.cols();
    assert_eq!(spec.n_heads * spec.head_dim, dim, "attention: heads × head_dim != dim");
    assert_eq!((k.rows(), k.cols()), (n, dim), "attention: K shape mismatch");
    assert_eq!((v.rows(), v.cols()), (n, dim), "attention: V shape mismatch");
    if let Some(bias) = spec.bias {
        assert_eq!(bias.len(), spec.n_heads * n * n, "attention: bias length mismatch");
    }
    if let Some(mask) = spec.mask {
        assert_eq!(mask.len(), n * n, "attention: mask length mismatch");
    }
    let (n_heads, head_dim) = (spec.n_heads, spec.head_dim);

    // Pre-scale Q once: folding `· scale` into the GEMM's A operand is
    // one O(n·dim) pass instead of an O(heads·n²) per-logit multiply
    // sweep. `(Σ qk)·s` and `Σ (qs)k` differ only in rounding, inside
    // the documented softmax ULP budget. The panel buffers come from the
    // per-thread workspace pool (zero steady-state allocations).
    let mut qs = workspace::take_f64(n * dim);
    for (o, &x) in qs.iter_mut().zip(q.as_slice()) {
        *o = x * spec.scale;
    }

    // Repack K as per-head transposed panels (head-major, each
    // `head_dim × n`) and V as per-head row panels (each `n × head_dim`):
    // both GEMM steps then stream contiguous panel rows.
    let mut kt = workspace::take_f64(dim * n);
    let mut vh = workspace::take_f64(dim * n);
    for j in 0..n {
        let k_row = k.row(j);
        let v_row = v.row(j);
        for h in 0..n_heads {
            let lo = h * head_dim;
            for d in 0..head_dim {
                kt[(h * head_dim + d) * n + j] = k_row[lo + d];
                vh[(h * n + j) * head_dim + d] = v_row[lo + d];
            }
        }
    }

    // ~2 flops/element for Q·Kᵀ plus 2 for weights·V, per head.
    let jobs = gate_jobs(jobs, 4 * n * n * dim);
    let result = if jobs == 1 {
        // Serial path: the whole sequence is one row block written into
        // pooled buffers. The block decomposition never changes any
        // element's accumulation order, so this is bit-identical to the
        // parallel path at any job count.
        let mut out = workspace::take_f64(n * dim);
        let mut weights = workspace::take_f64(n * n);
        let mut wh = workspace::take_f64(n * n);
        attention_rows(
            0,
            n,
            n,
            dim,
            n_heads,
            head_dim,
            &qs,
            &kt,
            &vh,
            spec,
            &mut out,
            &mut weights,
            &mut wh,
        );
        workspace::give_f64(wh);
        (Matrix::from_vec(n, dim, out), Matrix::from_vec(n, n, weights))
    } else {
        let blocks = n.div_ceil(ATTN_ROW_BLOCK).max(1);
        let q_flat = &qs[..];
        let kt_ref = &kt[..];
        let vh_ref = &vh[..];
        let block_out: Vec<(Vec<f64>, Vec<f64>)> = parallel::run_indexed(jobs, blocks, |bi| {
            let i0 = bi * ATTN_ROW_BLOCK;
            let i1 = (i0 + ATTN_ROW_BLOCK).min(n);
            let rows = i1 - i0;
            if rows == 0 {
                return (Vec::new(), Vec::new());
            }
            let mut out = vec![0.0f64; rows * dim];
            let mut weights = vec![0.0f64; rows * n];
            // One head's logits → attention weights for the row block.
            let mut wh = vec![0.0f64; rows * n];
            attention_rows(
                i0,
                i1,
                n,
                dim,
                n_heads,
                head_dim,
                q_flat,
                kt_ref,
                vh_ref,
                spec,
                &mut out,
                &mut weights,
                &mut wh,
            );
            (out, weights)
        });
        let mut out_data = Vec::with_capacity(n * dim);
        let mut w_data = Vec::with_capacity(n * n);
        for (o, w) in block_out {
            out_data.extend_from_slice(&o);
            w_data.extend_from_slice(&w);
        }
        (Matrix::from_vec(n, dim, out_data), Matrix::from_vec(n, n, w_data))
    };
    workspace::give_f64(vh);
    workspace::give_f64(kt);
    workspace::give_f64(qs);
    stats::record(stats::Kernel::Attention, t.elapsed());
    result
}

/// The attention body for query rows `[i0, i1)`: logits GEMM, bias/mask,
/// softmax, head-summed weights, value aggregation. Shared verbatim by
/// the serial (whole-sequence) and parallel (per-block) paths so the two
/// cannot drift. `out` is `rows × dim`, `weights` (zero-initialized) and
/// `wh` (scratch) are `rows × n`.
#[allow(clippy::too_many_arguments)]
fn attention_rows(
    i0: usize,
    i1: usize,
    n: usize,
    dim: usize,
    n_heads: usize,
    head_dim: usize,
    q_flat: &[f64],
    kt: &[f64],
    vh: &[f64],
    spec: &AttentionSpec<'_>,
    out: &mut [f64],
    weights: &mut [f64],
    wh: &mut [f64],
) {
    let rows = i1 - i0;
    for h in 0..n_heads {
        let lo = h * head_dim;
        // Logits for the row block in one register-tiled GEMM:
        // wh[r][j] = Σ_d q[i0+r][lo+d] · ktʰ[d][j] — the same
        // ascending-d order as the scalar dot.
        let q_panel = &q_flat[i0 * dim + lo..(i1 - 1) * dim + lo + head_dim];
        let kt_panel = &kt[lo * n..(lo + head_dim) * n];
        gemm::<false>(wh, n, q_panel, dim, kt_panel, rows, head_dim, n);
        // Bias, mask, softmax — per query row (the logit scale is
        // already folded into the pre-scaled Q panel).
        for r in 0..rows {
            let i = i0 + r;
            let lrow = &mut wh[r * n..(r + 1) * n];
            if let Some(bias) = spec.bias {
                let b_row = &bias[(h * n + i) * n..(h * n + i + 1) * n];
                for (l, &bv) in lrow.iter_mut().zip(b_row) {
                    *l += bv;
                }
            }
            let mut permitted = n;
            if let Some(mask) = spec.mask {
                let mask_row = &mask[i * n..(i + 1) * n];
                permitted = 0;
                for (l, &ok) in lrow.iter_mut().zip(mask_row) {
                    if ok {
                        permitted += 1;
                    } else {
                        *l = f64::NEG_INFINITY;
                    }
                }
            }
            let inv = if permitted == 0 {
                // Fully-masked query: attend only itself. The uniform
                // fallback would aggregate *masked* values — an
                // information leak — so the only defensible
                // distribution is the self-delta. Already normalized,
                // so the deferred scale is 1.0 (`x · 1.0` is
                // bit-exact).
                lrow.fill(0.0);
                lrow[i] = 1.0;
                1.0
            } else {
                softmax_fast_scaled(lrow)
            };
            // One fused pass while the row is cache-hot: apply the
            // deferred softmax normalization and accumulate the
            // head-summed weights (ascending-h order).
            let w_acc = &mut weights[r * n..(r + 1) * n];
            for (wa, x) in w_acc.iter_mut().zip(lrow.iter_mut()) {
                let wv = *x * inv;
                *x = wv;
                *wa += wv;
            }
        }
        // Value aggregation, register-tiled:
        // out[r][lo+d] = Σ_j wh[r][j] · vhʰ[j][d] (ascending j; each
        // head writes a disjoint column range of `out`).
        let vh_panel = &vh[h * n * head_dim..(h + 1) * n * head_dim];
        gemm::<false>(&mut out[lo..], dim, wh, n, vh_panel, rows, n, head_dim);
    }
}

/// Naive scalar reference implementations.
///
/// These are the semantic ground truth the fused kernels must never
/// drift from: CI runs an equivalence job comparing each kernel against
/// its reference on randomized inputs. They implement the *fixed*
/// semantics (NaN-correct matmul, self-delta for fully-masked queries)
/// with libm transcendentals — `matmul`/`linear_bias` must match
/// bit-for-bit, `attention`/`linear_bias_gelu` to the documented
/// [`crate::fastmath`] ULP bounds.
pub mod reference {
    use super::{gelu, softmax_inplace, AttentionSpec};
    use crate::matrix::Matrix;

    /// Naive `A · B` (delegates to [`Matrix::matmul`]).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        a.matmul(b)
    }

    /// Unfused `X · W + bias`.
    pub fn linear_bias(x: &Matrix, w: &Matrix, bias: &[f64]) -> Matrix {
        let mut y = x.matmul(w);
        for i in 0..y.rows() {
            for (o, &b) in y.row_mut(i).iter_mut().zip(bias) {
                *o += b;
            }
        }
        y
    }

    /// Unfused `GELU(X · W + bias)`.
    pub fn linear_bias_gelu(x: &Matrix, w: &Matrix, bias: &[f64]) -> Matrix {
        let mut y = linear_bias(x, w, bias);
        for i in 0..y.rows() {
            for o in y.row_mut(i) {
                *o = gelu(*o);
            }
        }
        y
    }

    /// Scalar head-by-head attention with strided slices and no
    /// repacking — the shape of the pre-kernel implementation, with the
    /// fully-masked fix applied.
    pub fn attention(
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        spec: &AttentionSpec<'_>,
    ) -> (Matrix, Matrix) {
        let n = q.rows();
        let dim = q.cols();
        let mut out = Matrix::zeros(n, dim);
        let mut weights = Matrix::zeros(n, n);
        let mut logits = vec![0.0f64; n];
        for i in 0..n {
            for h in 0..spec.n_heads {
                let lo = h * spec.head_dim;
                let hi = lo + spec.head_dim;
                let qi = &q.row(i)[lo..hi];
                let mut permitted = 0usize;
                for (j, logit) in logits.iter_mut().enumerate() {
                    let ok = spec.mask.is_none_or(|m| m[i * n + j]);
                    *logit = if ok {
                        permitted += 1;
                        let mut l = crate::vector::dot(qi, &k.row(j)[lo..hi]) * spec.scale;
                        if let Some(b) = spec.bias {
                            l += b[(h * n + i) * n + j];
                        }
                        l
                    } else {
                        f64::NEG_INFINITY
                    };
                }
                if permitted == 0 {
                    weights[(i, i)] += 1.0;
                    let out_row = out.row_mut(i);
                    for (o, &vv) in out_row[lo..hi].iter_mut().zip(&v.row(i)[lo..hi]) {
                        *o += vv;
                    }
                    continue;
                }
                softmax_inplace(&mut logits);
                let out_row = out.row_mut(i);
                for (j, &w) in logits.iter().enumerate() {
                    weights[(i, j)] += w;
                    if w == 0.0 {
                        continue;
                    }
                    for (o, &vv) in out_row[lo..hi].iter_mut().zip(&v.row(j)[lo..hi]) {
                        *o += w * vv;
                    }
                }
            }
        }
        (out, weights)
    }
}

/// Lock-free kernel timing counters, surfaced by the CLI and bench
/// harness runtime reports.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// The instrumented kernel families.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Kernel {
        /// [`super::matmul`] and [`super::matmul_transb`].
        Matmul = 0,
        /// [`super::linear_bias`].
        LinearBias = 1,
        /// [`super::linear_bias_gelu`].
        LinearBiasGelu = 2,
        /// [`super::attention`].
        Attention = 3,
    }

    const N: usize = 4;
    const NAMES: [&str; N] = ["matmul", "linear_bias", "linear_bias_gelu", "attention"];

    static CALLS: [AtomicU64; N] =
        [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    static NANOS: [AtomicU64; N] =
        [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

    /// Record one kernel invocation. `sum` accumulation saturates, like
    /// the runtime latency histograms.
    pub fn record(kernel: Kernel, elapsed: Duration) {
        let i = kernel as usize;
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        CALLS[i].fetch_add(1, Ordering::Relaxed);
        let _ = NANOS[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c.saturating_add(ns)));
    }

    /// Zero all counters (benches call this between configurations).
    pub fn reset() {
        for i in 0..N {
            CALLS[i].store(0, Ordering::Relaxed);
            NANOS[i].store(0, Ordering::Relaxed);
        }
    }

    /// One kernel family's totals.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct KernelTotals {
        /// Invocations.
        pub calls: u64,
        /// Total wall time, ns (saturating).
        pub total_ns: u64,
    }

    /// Frozen totals for all kernel families.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    pub struct KernelStats {
        /// `(name, totals)` per family, in fixed order.
        pub kernels: [(&'static str, KernelTotals); N],
    }

    impl KernelStats {
        /// Sum of all kernel invocations.
        pub fn total_calls(&self) -> u64 {
            self.kernels.iter().map(|(_, t)| t.calls).sum()
        }

        /// Sum of all kernel wall time, ns.
        pub fn total_ns(&self) -> u64 {
            self.kernels.iter().fold(0u64, |a, (_, t)| a.saturating_add(t.total_ns))
        }

        /// One-line report: `matmul 12×/3.4ms attention 4×/9.1ms …`
        /// (families with zero calls are omitted; empty → `none`).
        pub fn render(&self) -> String {
            let parts: Vec<String> = self
                .kernels
                .iter()
                .filter(|(_, t)| t.calls > 0)
                .map(|(name, t)| format!("{name} {}x/{:.1}ms", t.calls, t.total_ns as f64 / 1.0e6))
                .collect();
            if parts.is_empty() {
                "none".to_string()
            } else {
                parts.join("  ")
            }
        }
    }

    /// Snapshot the current counters.
    pub fn snapshot() -> KernelStats {
        KernelStats {
            kernels: std::array::from_fn(|i| {
                (
                    NAMES[i],
                    KernelTotals {
                        calls: CALLS[i].load(Ordering::Relaxed),
                        total_ns: NANOS[i].load(Ordering::Relaxed),
                    },
                )
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = rng.next_normal_with(0.0, 1.0);
            }
        }
        m
    }

    /// `==` on the flat buffers: NaN-free outputs, ±0.0 compares equal.
    fn assert_matrix_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(x == y, "{what}: element {i} differs: {x} vs {y}");
        }
    }

    /// Relative-or-absolute closeness: the documented fastmath ULP bound
    /// for paths through softmax/GELU.
    fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let err = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
            assert!(err <= tol, "{what}: element {i}: {x} vs {y} (rel err {err:e})");
        }
    }

    #[test]
    fn matmul_matches_reference_exactly() {
        let mut rng = SplitMix64::new(11);
        for (n, k, m) in [(1, 1, 1), (3, 5, 2), (33, 65, 17), (70, 40, 70)] {
            let a = random_matrix(&mut rng, n, k);
            let b = random_matrix(&mut rng, k, m);
            for jobs in [1, 4] {
                assert_matrix_eq(
                    &matmul(&a, &b, jobs),
                    &reference::matmul(&a, &b),
                    &format!("matmul {n}x{k}x{m} jobs={jobs}"),
                );
            }
        }
    }

    #[test]
    fn matmul_transb_matches_transpose_product() {
        // matmul_transb reduces in the fixed 8-lane order (see
        // crate::reduce), so vs the sequential-fold transpose product it
        // agrees to rounding; across jobs and SIMD tiers it is bitwise.
        let mut rng = SplitMix64::new(12);
        let a = random_matrix(&mut rng, 40, 24);
        let bt = random_matrix(&mut rng, 33, 24);
        let slow = a.matmul(&bt.transpose());
        let base = matmul_transb(&a, &bt, 1);
        assert_matrix_close(&base, &slow, 1e-12, "matmul_transb vs transpose product");
        for jobs in [1, 3] {
            for tier in crate::simd::available_tiers() {
                crate::simd::force_tier(Some(tier));
                let fast = matmul_transb(&a, &bt, jobs);
                crate::simd::force_tier(None);
                assert_matrix_eq(&fast, &base, &format!("matmul_transb jobs={jobs} tier={tier}"));
            }
        }
    }

    #[test]
    fn linear_kernels_match_reference() {
        let mut rng = SplitMix64::new(13);
        let x = random_matrix(&mut rng, 50, 32);
        let w = random_matrix(&mut rng, 32, 48);
        let bias: Vec<f64> = (0..48).map(|_| rng.next_normal_with(0.0, 0.5)).collect();
        for jobs in [1, 4] {
            // The fused matmul+bias path is bit-identical; the GELU
            // epilogue carries the documented fastmath bound.
            assert_matrix_eq(
                &linear_bias(&x, &w, &bias, jobs),
                &reference::linear_bias(&x, &w, &bias),
                "linear_bias",
            );
            assert_matrix_close(
                &linear_bias_gelu(&x, &w, &bias, jobs),
                &reference::linear_bias_gelu(&x, &w, &bias),
                1e-12,
                "linear_bias_gelu",
            );
        }
    }

    fn attention_case(
        rng: &mut SplitMix64,
        n: usize,
        n_heads: usize,
        head_dim: usize,
        with_bias: bool,
        with_mask: bool,
    ) {
        let dim = n_heads * head_dim;
        let q = random_matrix(rng, n, dim);
        let k = random_matrix(rng, n, dim);
        let v = random_matrix(rng, n, dim);
        let bias: Vec<f64> = (0..n_heads * n * n).map(|_| rng.next_normal_with(0.0, 0.3)).collect();
        let mask: Vec<bool> = (0..n * n).map(|_| rng.next_u64() % 4 != 0).collect();
        let spec = AttentionSpec {
            n_heads,
            head_dim,
            scale: 1.0 / (head_dim as f64).sqrt(),
            bias: with_bias.then_some(bias.as_slice()),
            mask: with_mask.then_some(mask.as_slice()),
        };
        let (ro, rw) = reference::attention(&q, &k, &v, &spec);
        let (o1, w1) = attention(&q, &k, &v, &spec, 1);
        for jobs in [1, 4] {
            let (o, w) = attention(&q, &k, &v, &spec, jobs);
            let tag = format!(
                "attention n={n} h={n_heads} bias={with_bias} mask={with_mask} jobs={jobs}"
            );
            // vs reference: the documented softmax ULP bound.
            assert_matrix_close(&o, &ro, 1e-12, &format!("{tag} out"));
            assert_matrix_close(&w, &rw, 1e-12, &format!("{tag} weights"));
            // vs jobs=1: bit-identical at any job count.
            assert_matrix_eq(&o, &o1, &format!("{tag} out jobs-identity"));
            assert_matrix_eq(&w, &w1, &format!("{tag} weights jobs-identity"));
        }
    }

    #[test]
    fn attention_matches_reference_within_bound() {
        let mut rng = SplitMix64::new(14);
        for (n, h, d) in [(1, 1, 4), (5, 2, 3), (17, 4, 8), (40, 2, 16)] {
            for (wb, wm) in [(false, false), (true, false), (false, true), (true, true)] {
                attention_case(&mut rng, n, h, d, wb, wm);
            }
        }
    }

    #[test]
    fn kernels_bit_identical_across_job_counts() {
        // Shapes above MIN_PAR_FLOPS so the parallel path actually runs.
        let mut rng = SplitMix64::new(21);
        let a = random_matrix(&mut rng, 80, 80);
        let b = random_matrix(&mut rng, 80, 80);
        let bias: Vec<f64> = (0..80).map(|_| rng.next_normal_with(0.0, 0.5)).collect();
        let q = random_matrix(&mut rng, 64, 32);
        let k = random_matrix(&mut rng, 64, 32);
        let v = random_matrix(&mut rng, 64, 32);
        let spec = AttentionSpec {
            n_heads: 4,
            head_dim: 8,
            scale: 1.0 / 8.0f64.sqrt(),
            bias: None,
            mask: None,
        };
        let (o1, w1) = attention(&q, &k, &v, &spec, 1);
        let mm1 = matmul(&a, &b, 1);
        let lg1 = linear_bias_gelu(&a, &b, &bias, 1);
        for jobs in [2, 4, 8] {
            assert_matrix_eq(&matmul(&a, &b, jobs), &mm1, "matmul jobs-identity");
            assert_matrix_eq(&linear_bias_gelu(&a, &b, &bias, jobs), &lg1, "gelu jobs-identity");
            let (o, w) = attention(&q, &k, &v, &spec, jobs);
            assert_matrix_eq(&o, &o1, "attention out jobs-identity");
            assert_matrix_eq(&w, &w1, "attention weights jobs-identity");
        }
    }

    #[test]
    fn attention_fully_masked_rows_attend_only_self() {
        let mut rng = SplitMix64::new(15);
        let n = 6;
        let (h, d) = (2, 4);
        let q = random_matrix(&mut rng, n, h * d);
        let k = random_matrix(&mut rng, n, h * d);
        let v = random_matrix(&mut rng, n, h * d);
        // Query 2 may attend nothing at all.
        let mask: Vec<bool> = (0..n * n).map(|idx| idx / n != 2).collect();
        let spec =
            AttentionSpec { n_heads: h, head_dim: d, scale: 0.5, bias: None, mask: Some(&mask) };
        let (out, w) = attention(&q, &k, &v, &spec, 1);
        for j in 0..n {
            let want = if j == 2 { h as f64 } else { 0.0 };
            assert_eq!(w[(2, j)], want, "fully-masked query must be a self-delta");
        }
        // The output of the fully-masked query is exactly its own value
        // vector (per head, weight 1 on self): no other token leaks in.
        assert_eq!(out.row(2), v.row(2), "self-only aggregation");
    }

    #[test]
    fn softmax_saturates_nan_logits() {
        let mut xs = vec![1.0, f64::NAN, 3.0];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()), "no NaN may survive: {xs:?}");
        assert_eq!(xs[1], 0.0, "NaN logit gets zero mass");
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[0]);
    }

    #[test]
    fn softmax_all_nan_is_uniform() {
        let mut xs = vec![f64::NAN, f64::NAN];
        softmax_inplace(&mut xs);
        assert_eq!(xs, vec![0.5, 0.5]);
    }

    #[test]
    fn softmax_fast_matches_exact_softmax() {
        let mut rng = SplitMix64::new(19);
        for len in [1usize, 2, 7, 64, 257] {
            let mut a: Vec<f64> = (0..len).map(|_| rng.next_normal_with(0.0, 3.0)).collect();
            let mut b = a.clone();
            // Sprinkle masked entries.
            if len > 4 {
                a[1] = f64::NEG_INFINITY;
                b[1] = f64::NEG_INFINITY;
                a[3] = f64::NAN;
                b[3] = f64::NAN;
            }
            softmax_inplace(&mut a);
            softmax_fast_inplace(&mut b);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                let err = (x - y).abs() / x.abs().max(1.0);
                assert!(err <= 1e-13, "len={len} i={i}: {x} vs {y}");
            }
            if len > 4 {
                assert_eq!(b[1], 0.0, "masked logit keeps exactly zero mass");
                assert_eq!(b[3], 0.0, "NaN logit keeps exactly zero mass");
            }
        }
    }

    #[test]
    fn softmax_preserves_standard_behavior() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
        let mut masked = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_inplace(&mut masked);
        assert_eq!(masked, vec![0.5, 0.5]);
    }

    #[test]
    fn matmul_propagates_nonfinite_b() {
        // a == 0.0 rows must not swallow NaN/inf coming from B.
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![f64::INFINITY, 2.0], vec![3.0, 4.0]]);
        let c = matmul(&a, &b, 1);
        assert!(c[(0, 0)].is_nan(), "0 × ∞ must produce NaN, got {}", c[(0, 0)]);
        assert_eq!(c[(0, 1)], 4.0);
    }

    #[test]
    fn stats_accumulate_and_render() {
        stats::reset();
        let mut rng = SplitMix64::new(16);
        let a = random_matrix(&mut rng, 8, 8);
        let _ = matmul(&a, &a, 1);
        let _ = linear_bias(&a, &a, &vec![0.0; 8], 1);
        let snap = stats::snapshot();
        assert!(snap.total_calls() >= 2);
        let text = snap.render();
        assert!(text.contains("matmul"), "render mentions kernels: {text}");
        stats::reset();
        assert_eq!(stats::snapshot().total_calls(), 0);
        assert_eq!(stats::snapshot().render(), "none");
    }
}
