//! Per-run provenance manifest.
//!
//! Every exported trace and metrics file embeds the configuration that
//! produced it — model set, dataset, seed, permutations, jobs, cache
//! config, a git-describe-ish version, and wall time — so an artifact
//! found on disk six months later is self-describing. The manifest is an
//! ordered key→value list; exporters render it as the Chrome trace's
//! `otherData` object and as a Prometheus `observatory_run_info` gauge
//! with one label per entry.

use std::time::{SystemTime, UNIX_EPOCH};

/// Ordered provenance key→value pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    entries: Vec<(String, String)>,
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manifest pre-populated with the standard fields every run
    /// shares: `version` (crate version + short git commit when a `.git`
    /// directory is discoverable) and `started_unix_s`.
    pub fn for_run() -> Self {
        let mut m = Self::new();
        m.set("version", version_string());
        let now = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
        m.set("started_unix_s", now.to_string());
        m
    }

    /// Insert or replace a key.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let key = key.into();
        let value = value.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((key, value)),
        }
        self
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All entries in insertion order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// `<crate version>+g<short sha>` when a git checkout is discoverable
/// from the current directory upward, else just the crate version.
/// Reads `.git/HEAD` (and the ref file / `packed-refs` it points to)
/// directly — no subprocess, works offline.
pub fn version_string() -> String {
    let base = env!("CARGO_PKG_VERSION");
    match git_head_commit() {
        Some(sha) => format!("{base}+g{}", &sha[..sha.len().min(12)]),
        None => base.to_string(),
    }
}

/// Short commit hash of `HEAD`, read straight from the `.git` directory.
pub fn git_head_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read_head(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(sha) = std::fs::read_to_string(git.join(refname)) {
            return valid_sha(sha.trim());
        }
        // Ref may be packed.
        if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
            for line in packed.lines() {
                if let Some(sha) = line.strip_suffix(refname).map(str::trim) {
                    if let Some(v) = valid_sha(sha) {
                        return Some(v);
                    }
                }
            }
        }
        None
    } else {
        valid_sha(head)
    }
}

fn valid_sha(s: &str) -> Option<String> {
    (s.len() >= 7 && s.bytes().all(|b| b.is_ascii_hexdigit())).then(|| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut m = Manifest::new();
        assert!(m.is_empty());
        m.set("model", "bert").set("seed", "42");
        assert_eq!(m.get("model"), Some("bert"));
        m.set("model", "tapas");
        assert_eq!(m.get("model"), Some("tapas"));
        assert_eq!(m.len(), 2, "replace must not duplicate");
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut m = Manifest::new();
        m.set("z", "1").set("a", "2").set("m", "3");
        let keys: Vec<&str> = m.pairs().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn for_run_has_standard_fields() {
        let m = Manifest::for_run();
        assert!(m.get("version").is_some());
        assert!(m.get("started_unix_s").unwrap().parse::<u64>().is_ok());
        // This workspace is a git checkout, so the version should carry
        // a commit suffix when run from inside it.
        let v = m.get("version").unwrap();
        assert!(v.starts_with(env!("CARGO_PKG_VERSION")), "{v}");
    }

    #[test]
    fn sha_validation() {
        assert!(valid_sha("0123abc").is_some());
        assert!(valid_sha("0123abcdef0123abcdef0123abcdef0123abcdef").is_some());
        assert!(valid_sha("xyz").is_none());
        assert!(valid_sha("012").is_none());
    }
}
