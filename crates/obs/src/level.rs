//! Runtime log/trace level filter.
//!
//! A single process-wide `AtomicU8` gates every instrumentation site:
//! `enabled(level)` is one relaxed load plus a compare, so with the
//! default level ([`Level::Off`]) tracing costs a predictable branch —
//! the "<5% overhead on the runtime bench" budget in DESIGN.md.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable consulted by [`init_from_env`].
pub const LOG_ENV_VAR: &str = "OBSERVATORY_LOG";

/// Verbosity level, ordered: `Off < Error < Info < Debug < Trace`.
/// A site at level `L` records iff `L <= current level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Record nothing (the default).
    Off = 0,
    /// Failures only.
    Error = 1,
    /// Pipeline stages: properties, downstream tasks, encode batches.
    Info = 2,
    /// Per-encode spans and cache events.
    Debug = 3,
    /// Worker threads and per-lookup events.
    Trace = 4,
}

impl Level {
    /// Parse a level name (case-insensitive). Unknown names map to
    /// `Info` so a typo still yields a usable trace rather than silence.
    pub fn parse(s: &str) -> Level {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "error" => Level::Error,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => Level::Info,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Install a new process-wide level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide level.
pub fn current_level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether a site at `level` should record. This is the fast path:
/// one relaxed atomic load and an integer compare.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed) && level != Level::Off
}

/// Initialize the level from `OBSERVATORY_LOG` (unset ⇒ [`Level::Off`]).
/// Returns the installed level.
pub fn init_from_env() -> Level {
    let level = match std::env::var(LOG_ENV_VAR) {
        Ok(v) if !v.is_empty() => Level::parse(&v),
        _ => Level::Off,
    };
    set_level(level);
    level
}

/// Raise the level to at least `floor` (never lowers it). Used by
/// `--trace-out`, which needs span collection even when the env filter
/// is off.
pub fn raise_level(floor: Level) {
    if current_level() < floor {
        set_level(floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("TRACE"), Level::Trace);
        assert_eq!(Level::parse("Debug"), Level::Debug);
        assert_eq!(Level::parse("error"), Level::Error);
        assert_eq!(Level::parse("garbage"), Level::Info, "typos degrade to info");
    }

    #[test]
    fn names_round_trip() {
        for l in [Level::Off, Level::Error, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.name()), l);
        }
    }

    #[test]
    fn ordering() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn off_is_never_enabled() {
        // Even at level Trace, an Off-level site never records.
        let prev = current_level();
        set_level(Level::Trace);
        assert!(!enabled(Level::Off));
        assert!(enabled(Level::Trace));
        set_level(prev);
    }
}
