//! RAII span guards and instant events.
//!
//! [`span()`] opens a span; the returned [`Span`] records itself into the
//! global collector when dropped — including during panic unwinding, in
//! which case the record is marked `panicked`. Parentage is tracked with
//! a thread-local stack of open span ids: a new span's parent is the
//! innermost open span *on the same thread*. Cross-thread edges (worker
//! encodes under the batch span that spawned them) are wired explicitly
//! with [`Span::with_parent`].
//!
//! When the site's level is filtered out, [`span()`] returns an inert
//! guard: no allocation, no thread-local access, no collector touch —
//! the whole call is the [`crate::enabled`] branch.

use crate::collector::{collector, EventRecord, SpanRecord};
use crate::level::{enabled, Level};
use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic span-id source; 0 is never issued.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Dense per-process thread-id source.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread (innermost last).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// Id of the innermost open span on the current thread, if any.
pub fn current_span_id() -> Option<u64> {
    STACK.with(|s| s.borrow().last().copied())
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    target: &'static str,
    level: Level,
    tid: u64,
    start: Instant,
    fields: Vec<(&'static str, String)>,
    /// Whether this span pushed a profiler frame it must pop on close.
    profiled: bool,
}

/// An open span; closing (dropping) it emits a [`SpanRecord`].
/// Inert (all methods no-ops) when the creating site was filtered out.
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct Span(Option<ActiveSpan>);

/// Open a span at `level`. Returns an inert guard unless
/// [`enabled`]`(level)` — the disabled path is one atomic load.
#[inline]
pub fn span(level: Level, target: &'static str, name: &'static str) -> Span {
    if !enabled(level) {
        return Span(None);
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    STACK.with(|s| s.borrow_mut().push(id));
    let profiled = crate::profiler::push_frame(target, name);
    Span(Some(ActiveSpan {
        id,
        parent,
        name,
        target,
        level,
        tid: thread_id(),
        start: Instant::now(),
        fields: Vec::new(),
        profiled,
    }))
}

impl Span {
    /// Attach a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Display) -> Span {
        self.record(key, value);
        self
    }

    /// Attach a field to an already-open span.
    pub fn record(&mut self, key: &'static str, value: impl Display) {
        if let Some(a) = self.0.as_mut() {
            a.fields.push((key, value.to_string()));
        }
    }

    /// Override the parent edge (builder style). Use when the logical
    /// parent lives on another thread, where the thread-local stack
    /// cannot see it.
    pub fn with_parent(mut self, parent: Option<u64>) -> Span {
        if let Some(a) = self.0.as_mut() {
            if parent.is_some() {
                a.parent = parent;
            }
        }
        self
    }

    /// This span's id (`None` when inert). Pass to [`Span::with_parent`]
    /// on spans opened from other threads.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        if a.profiled {
            crate::profiler::pop_frame();
        }
        // Pop this span from the thread's open stack. Guards are dropped
        // innermost-first in straight-line code *and* during unwinding,
        // so the top is normally `a.id`; a stale deeper entry (a guard
        // leaked with `mem::forget`) is removed defensively.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&a.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == a.id) {
                stack.remove(pos);
            }
        });
        let c = collector();
        let start_ns = u64::try_from(a.start.saturating_duration_since(c.epoch()).as_nanos())
            .unwrap_or(u64::MAX);
        let dur_ns = u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        c.push_span(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            target: a.target,
            level: a.level,
            tid: a.tid,
            start_ns,
            dur_ns,
            fields: a.fields,
            panicked: std::thread::panicking(),
        });
    }
}

/// Record an instantaneous event with no fields.
#[inline]
pub fn event(level: Level, target: &'static str, name: &'static str) {
    event_with(level, target, name, Vec::new);
}

/// Record an instantaneous event; `fields` is only invoked (and only
/// allocates) when the site is enabled.
#[inline]
pub fn event_with<F>(level: Level, target: &'static str, name: &'static str, fields: F)
where
    F: FnOnce() -> Vec<(&'static str, String)>,
{
    if !enabled(level) {
        return;
    }
    let c = collector();
    let ts_ns = u64::try_from(Instant::now().saturating_duration_since(c.epoch()).as_nanos())
        .unwrap_or(u64::MAX);
    c.push_event(EventRecord { name, target, level, tid: thread_id(), ts_ns, fields: fields() });
}
