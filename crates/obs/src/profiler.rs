//! Zero-dep span-sampling profiler.
//!
//! Instead of walking native stacks (which needs a symbolizer and
//! unwinder), the profiler samples the *span* stacks obs already
//! maintains: while running, every opened span pushes its interned
//! `target::name` site onto a per-thread frame array, and a sampler
//! thread periodically snapshots each registered thread's array into a
//! [`Folder`] of folded span-path counts. The result exports as
//! flamegraph-compatible folded stacks (`a;b;c 42` lines) plus a top-N
//! self-time table — enough to find the hot span under live load with
//! no dependencies and no signal handling.
//!
//! Cost model: when stopped, [`push_frame`] is one relaxed atomic load
//! (the same budget as a filtered span site). When running, a span
//! push/pop is a thread-local cache lookup plus two relaxed stores and
//! a release store; the sampler wakes every `interval` and reads a few
//! atomics per registered thread. Frame reads race with mutation by
//! design — a torn sample attributes one tick to a neighboring span,
//! which sampling statistics absorb.

use crate::collector::lock_recover;
use crate::level::{raise_level, Level};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Deepest span nesting the sampler can see. Deeper spans still count
/// frames (push/pop stay balanced) but are truncated in sampled paths.
pub const MAX_DEPTH: usize = 32;

/// Per-thread active-span frame array, readable from the sampler
/// thread. `depth` is stored with `Release` after the frame write so an
/// `Acquire` reader sees initialized frames up to the depth it loads.
struct ThreadSlot {
    alive: AtomicBool,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot {
            alive: AtomicBool::new(true),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

/// Thread-local owner of a registered slot; thread exit marks the slot
/// dead so the sampler prunes it.
struct SlotHandle(Arc<ThreadSlot>);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.0.depth.store(0, Ordering::Release);
        self.0.alive.store(false, Ordering::Release);
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SLOT: SlotHandle = {
        let slot = Arc::new(ThreadSlot::new());
        lock_recover(registry()).push(Arc::clone(&slot));
        SlotHandle(slot)
    };
    /// Per-thread intern cache keyed by the *addresses* of the two
    /// `&'static str`s — the hot path never hashes string contents.
    static SITE_CACHE: RefCell<HashMap<(usize, usize), u32>> = RefCell::new(HashMap::new());
}

/// Global site table: index → rendered `target::name`.
struct Sites {
    names: Vec<String>,
    by_key: HashMap<(usize, usize), u32>,
}

fn sites() -> &'static Mutex<Sites> {
    static SITES: OnceLock<Mutex<Sites>> = OnceLock::new();
    SITES.get_or_init(|| Mutex::new(Sites { names: Vec::new(), by_key: HashMap::new() }))
}

fn intern(target: &'static str, name: &'static str) -> u32 {
    let key = (target.as_ptr() as usize, name.as_ptr() as usize);
    SITE_CACHE
        .try_with(|cache| {
            if let Some(&idx) = cache.borrow().get(&key) {
                return idx;
            }
            let idx = intern_global(key, target, name);
            cache.borrow_mut().insert(key, idx);
            idx
        })
        .unwrap_or_else(|_| intern_global(key, target, name))
}

fn intern_global(key: (usize, usize), target: &str, name: &str) -> u32 {
    let mut sites = lock_recover(sites());
    if let Some(&idx) = sites.by_key.get(&key) {
        return idx;
    }
    let idx = u32::try_from(sites.names.len()).unwrap_or(u32::MAX);
    sites.names.push(format!("{target}::{name}"));
    sites.by_key.insert(key, idx);
    idx
}

/// Rendered `target::name` for an interned site index.
fn site_name(idx: u32) -> String {
    lock_recover(sites()).names.get(idx as usize).cloned().unwrap_or_else(|| "?".to_string())
}

/// True while a profiling session is running. Checked (one relaxed
/// load) by every span open even when profiling is off.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static RUNNING: AtomicBool = AtomicBool::new(false);
static SAMPLES: AtomicU64 = AtomicU64::new(0);
static INTERVAL_US: AtomicU64 = AtomicU64::new(0);

fn folder() -> &'static Mutex<Folder> {
    static FOLDER: OnceLock<Mutex<Folder>> = OnceLock::new();
    FOLDER.get_or_init(|| Mutex::new(Folder::default()))
}

fn sampler_handle() -> &'static Mutex<Option<JoinHandle<()>>> {
    static HANDLE: OnceLock<Mutex<Option<JoinHandle<()>>>> = OnceLock::new();
    HANDLE.get_or_init(|| Mutex::new(None))
}

/// Push this span's site onto the current thread's frame array.
/// Returns whether a matching [`pop_frame`] is owed (i.e. profiling was
/// active). Called by [`crate::span()`] on the enabled path.
#[inline]
pub fn push_frame(target: &'static str, name: &'static str) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let site = intern(target, name);
    SLOT.try_with(|h| {
        let d = h.0.depth.load(Ordering::Relaxed);
        if d < MAX_DEPTH {
            h.0.frames[d].store(site, Ordering::Relaxed);
        }
        h.0.depth.store(d + 1, Ordering::Release);
    })
    .is_ok()
}

/// Pop the frame pushed by a [`push_frame`] that returned `true`.
#[inline]
pub fn pop_frame() {
    let _ = SLOT.try_with(|h| {
        let d = h.0.depth.load(Ordering::Relaxed);
        h.0.depth.store(d.saturating_sub(1), Ordering::Release);
    });
}

/// Accumulated folded span-path counts. Public so the folded-stack
/// format is unit-testable without running a sampler thread.
#[derive(Default)]
pub struct Folder {
    counts: HashMap<Vec<u32>, u64>,
}

impl Folder {
    /// Count one sample of `path` (root-first interned site indices).
    pub fn add_path(&mut self, path: &[u32]) {
        *self.counts.entry(path.to_vec()).or_insert(0) += 1;
    }

    /// Total samples across all paths.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Discard all counts.
    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// Flamegraph-compatible folded stacks: one `root;child;leaf N`
    /// line per distinct path, sorted lexicographically (deterministic
    /// output; paths whose sites resolve to the same names merge).
    pub fn render_folded(&self, resolve: &dyn Fn(u32) -> String) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for (path, count) in &self.counts {
            let key = path.iter().map(|&i| resolve(i)).collect::<Vec<_>>().join(";");
            *merged.entry(key).or_insert(0) += count;
        }
        let mut out = String::new();
        for (path, count) in merged {
            let _ = writeln!(out, "{path} {count}");
        }
        out
    }

    /// Top-`n` sites by *self* samples (samples where the site was the
    /// innermost open span), as `  12.5%      42  name` lines.
    pub fn render_top(&self, n: usize, resolve: &dyn Fn(u32) -> String) -> String {
        let mut self_counts: BTreeMap<String, u64> = BTreeMap::new();
        for (path, count) in &self.counts {
            if let Some(&leaf) = path.last() {
                *self_counts.entry(resolve(leaf)).or_insert(0) += count;
            }
        }
        let total = self.total().max(1);
        let mut rows: Vec<(String, u64)> = self_counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        for (name, count) in rows.into_iter().take(n) {
            let pct = 100.0 * count as f64 / total as f64;
            let _ = writeln!(out, "{pct:>5.1}% {count:>8}  {name}");
        }
        out
    }
}

/// A rendered profiling snapshot.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Folded stacks (`a;b;c 42` lines), flamegraph-ready.
    pub folded: String,
    /// Top-N self-time table.
    pub top: String,
    /// Total per-thread stack samples collected.
    pub samples: u64,
    /// Sampling interval of the session.
    pub interval: Duration,
}

/// Start a profiling session sampling every `interval`. Returns `false`
/// if one is already running. Raises the obs level to at least `Debug`
/// so instrumented sites actually open spans for the sampler to see.
pub fn start(interval: Duration) -> bool {
    if RUNNING.swap(true, Ordering::SeqCst) {
        return false;
    }
    raise_level(Level::Debug);
    lock_recover(folder()).clear();
    SAMPLES.store(0, Ordering::Relaxed);
    INTERVAL_US.store(u64::try_from(interval.as_micros()).unwrap_or(u64::MAX), Ordering::Relaxed);
    ACTIVE.store(true, Ordering::SeqCst);
    let spawned = std::thread::Builder::new()
        .name("obs-profiler".to_string())
        .spawn(move || sampler_loop(interval));
    match spawned {
        Ok(handle) => {
            *lock_recover(sampler_handle()) = Some(handle);
            true
        }
        Err(_) => {
            ACTIVE.store(false, Ordering::SeqCst);
            RUNNING.store(false, Ordering::SeqCst);
            false
        }
    }
}

/// Stop the running session and return its report (`None` if no
/// session was running).
pub fn stop() -> Option<ProfileReport> {
    if !RUNNING.swap(false, Ordering::SeqCst) {
        return None;
    }
    if let Some(handle) = lock_recover(sampler_handle()).take() {
        let _ = handle.join();
    }
    ACTIVE.store(false, Ordering::SeqCst);
    Some(report())
}

/// Whether a session is currently running.
pub fn is_running() -> bool {
    RUNNING.load(Ordering::Relaxed)
}

/// Render the current (possibly still-accumulating) session.
pub fn report() -> ProfileReport {
    let folder = lock_recover(folder());
    let resolve: &dyn Fn(u32) -> String = &site_name;
    ProfileReport {
        folded: folder.render_folded(resolve),
        top: folder.render_top(10, resolve),
        samples: SAMPLES.load(Ordering::Relaxed),
        interval: Duration::from_micros(INTERVAL_US.load(Ordering::Relaxed)),
    }
}

fn sampler_loop(interval: Duration) {
    while RUNNING.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        sample_once();
    }
}

fn sample_once() {
    let slots: Vec<Arc<ThreadSlot>> = {
        let mut registry = lock_recover(registry());
        registry.retain(|slot| slot.alive.load(Ordering::Relaxed));
        registry.clone()
    };
    let mut paths = Vec::new();
    for slot in slots {
        let depth = slot.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if depth == 0 {
            continue;
        }
        paths
            .push((0..depth).map(|i| slot.frames[i].load(Ordering::Relaxed)).collect::<Vec<u32>>());
    }
    if paths.is_empty() {
        return;
    }
    SAMPLES.fetch_add(paths.len() as u64, Ordering::Relaxed);
    let mut folder = lock_recover(folder());
    for path in &paths {
        folder.add_path(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ACTIVE/RUNNING are process-global; tests touching them serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    /// Read back the current thread's own frame array the way the
    /// sampler would.
    fn self_stack() -> Vec<u32> {
        SLOT.with(|h| {
            let depth = h.0.depth.load(Ordering::Acquire).min(MAX_DEPTH);
            (0..depth).map(|i| h.0.frames[i].load(Ordering::Relaxed)).collect()
        })
    }

    fn names(idx: u32) -> String {
        ["root", "mid", "leaf"].get(idx as usize).map(|s| s.to_string()).unwrap_or("?".into())
    }

    #[test]
    fn folded_format_merges_and_sorts() {
        let mut f = Folder::default();
        f.add_path(&[0]);
        f.add_path(&[0, 1]);
        f.add_path(&[0, 1]);
        f.add_path(&[0, 2]);
        assert_eq!(f.total(), 4);
        assert_eq!(f.render_folded(&names), "root 1\nroot;leaf 1\nroot;mid 2\n");
    }

    #[test]
    fn folded_merges_sites_resolving_to_same_name() {
        let mut f = Folder::default();
        f.add_path(&[0, 1]);
        f.add_path(&[0, 2]);
        // Two interned indices, one rendered name: the lines merge.
        let alias = |i: u32| if i == 0 { "root".to_string() } else { "dup".to_string() };
        assert_eq!(f.render_folded(&alias), "root;dup 2\n");
    }

    #[test]
    fn top_table_ranks_by_self_time() {
        let mut f = Folder::default();
        f.add_path(&[0]); // self: root
        f.add_path(&[0, 1]); // self: mid
        f.add_path(&[0, 1]); // self: mid
        f.add_path(&[0, 2]); // self: leaf
        let top = f.render_top(2, &names);
        let lines: Vec<&str> = top.lines().collect();
        assert_eq!(lines.len(), 2, "top-2 of three sites");
        assert!(lines[0].ends_with("mid"), "mid has most self samples: {top}");
        assert!(lines[0].contains("50.0%"), "2 of 4 samples: {top}");
        assert!(lines[0].contains(" 2 "), "raw count present: {top}");
    }

    #[test]
    fn frames_track_depth_and_truncate() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ACTIVE.store(true, Ordering::SeqCst);
        assert!(push_frame("test", "depth_a"));
        assert!(push_frame("test", "depth_b"));
        let stack = self_stack();
        assert_eq!(stack.len(), 2);
        assert_eq!(site_name(stack[0]), "test::depth_a");
        assert_eq!(site_name(stack[1]), "test::depth_b");
        // Overflow past MAX_DEPTH: depth keeps counting, paths truncate.
        for _ in 0..MAX_DEPTH + 3 {
            assert!(push_frame("test", "depth_deep"));
        }
        assert_eq!(self_stack().len(), MAX_DEPTH, "sampled path truncates");
        for _ in 0..MAX_DEPTH + 3 {
            pop_frame();
        }
        assert_eq!(self_stack().len(), 2, "balanced pops unwind past the cap");
        pop_frame();
        pop_frame();
        assert_eq!(self_stack().len(), 0);
        pop_frame(); // extra pop must not underflow
        assert_eq!(self_stack().len(), 0);
        ACTIVE.store(false, Ordering::SeqCst);
    }

    #[test]
    fn sampler_lifecycle_captures_frames() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(start(Duration::from_millis(2)));
        assert!(!start(Duration::from_millis(2)), "second start refused");
        assert!(is_running());
        assert!(push_frame("test", "prof_outer"));
        assert!(push_frame("test", "prof_inner"));
        std::thread::sleep(Duration::from_millis(50));
        pop_frame();
        pop_frame();
        let report = stop().expect("session was running");
        assert!(stop().is_none(), "second stop is a no-op");
        assert!(!is_running());
        assert!(report.samples >= 1, "sampler ticked during the sleep");
        assert!(
            report.folded.contains("test::prof_outer;test::prof_inner "),
            "folded stacks contain the held path: {}",
            report.folded
        );
        assert!(report.top.contains("test::prof_inner"), "leaf in top table: {}", report.top);
        assert_eq!(report.interval, Duration::from_millis(2));
    }
}
