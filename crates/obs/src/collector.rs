//! Lock-striped, bounded global sink for finished spans and events.
//!
//! Records are pushed by [`crate::span`] guards on drop and by
//! [`crate::event`]. The sink is striped by thread id so concurrent
//! workers contend on different locks, and each stripe is bounded: when
//! full, new records are counted in `dropped` and discarded — tracing
//! must never grow memory without bound inside a million-encode run.

use crate::level::Level;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Lock a stripe, recovering from poisoning. A panicking instrumented
/// thread (spans are pushed from `Drop` during unwinding) must never
/// poison a stripe and silently discard every later record on it — the
/// protected state is a trace buffer, so keeping the partially written
/// vector is always safe.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Number of independently locked stripes.
pub const N_STRIPES: usize = 8;

/// Default total span capacity (records, across stripes).
pub const DEFAULT_SPAN_CAP: usize = 1 << 17;

/// Default total event capacity (records, across stripes).
pub const DEFAULT_EVENT_CAP: usize = 1 << 15;

/// A finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique (per process) span id; ids increase with creation order.
    pub id: u64,
    /// Enclosing span, if any. Always `parent < id`.
    pub parent: Option<u64>,
    /// Span name, e.g. `"encode_batch"`.
    pub name: &'static str,
    /// Subsystem, e.g. `"runtime"` / `"props"` / `"pool"`.
    pub target: &'static str,
    /// Level the span was recorded at.
    pub level: Level,
    /// Dense per-process thread id (not the OS tid).
    pub tid: u64,
    /// Start, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured fields, in insertion order.
    pub fields: Vec<(&'static str, String)>,
    /// True when the span closed while its thread was unwinding.
    pub panicked: bool,
}

impl SpanRecord {
    /// End timestamp (ns since epoch), saturating.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// An instantaneous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name, e.g. `"evict"`.
    pub name: &'static str,
    /// Subsystem, e.g. `"cache"`.
    pub target: &'static str,
    /// Level the event was recorded at.
    pub level: Level,
    /// Dense per-process thread id.
    pub tid: u64,
    /// Timestamp, ns since the collector epoch.
    pub ts_ns: u64,
    /// Structured fields.
    pub fields: Vec<(&'static str, String)>,
}

/// Everything drained from the collector: spans sorted by start time,
/// events sorted by timestamp, plus bookkeeping counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Finished spans, ascending `start_ns`.
    pub spans: Vec<SpanRecord>,
    /// Events, ascending `ts_ns`.
    pub events: Vec<EventRecord>,
    /// Records discarded because a stripe was full.
    pub dropped: u64,
}

impl Trace {
    /// Look up a span by id.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Structural well-formedness of the span forest:
    /// every `parent` id exists, `parent < id` (no cycles), and the child
    /// interval nests inside the parent's (1 µs slack for clock rounding).
    pub fn check_nesting(&self) -> Result<(), String> {
        const SLACK_NS: u64 = 1_000;
        for s in &self.spans {
            let Some(p) = s.parent else { continue };
            if p >= s.id {
                return Err(format!("span {} '{}' has parent {} >= own id", s.id, s.name, p));
            }
            let Some(parent) = self.span(p) else {
                return Err(format!("span {} '{}' references missing parent {}", s.id, s.name, p));
            };
            if s.start_ns + SLACK_NS < parent.start_ns {
                return Err(format!(
                    "span {} '{}' starts before its parent '{}'",
                    s.id, s.name, parent.name
                ));
            }
            if s.end_ns() > parent.end_ns().saturating_add(SLACK_NS) {
                return Err(format!(
                    "span {} '{}' ends after its parent '{}' ({} > {})",
                    s.id,
                    s.name,
                    parent.name,
                    s.end_ns(),
                    parent.end_ns()
                ));
            }
        }
        Ok(())
    }
}

#[derive(Default)]
struct Stripe {
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

pub(crate) struct Collector {
    stripes: Vec<Stripe>,
    span_cap: usize,
    event_cap: usize,
    epoch: Instant,
    /// Drops since the last drain (reported in [`Trace::dropped`], reset
    /// by [`drain`]).
    dropped: AtomicU64,
    /// Cumulative drops over the process lifetime — never reset, so a
    /// live `/metrics` scrape can export it without draining the trace.
    dropped_total: AtomicU64,
}

impl Collector {
    fn new() -> Self {
        Self {
            stripes: (0..N_STRIPES).map(|_| Stripe::default()).collect(),
            span_cap: DEFAULT_SPAN_CAP / N_STRIPES,
            event_cap: DEFAULT_EVENT_CAP / N_STRIPES,
            epoch: Instant::now(),
            dropped: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
        }
    }

    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    fn stripe(&self, tid: u64) -> &Stripe {
        &self.stripes[(tid as usize) % N_STRIPES]
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        let mut spans = lock_recover(&self.stripe(record.tid).spans);
        if spans.len() >= self.span_cap {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(record);
    }

    pub(crate) fn push_event(&self, record: EventRecord) {
        let mut events = lock_recover(&self.stripe(record.tid).events);
        if events.len() >= self.event_cap {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(record);
    }

    fn drain(&self) -> Trace {
        let mut trace = Trace::default();
        for stripe in &self.stripes {
            trace.spans.append(&mut lock_recover(&stripe.spans));
            trace.events.append(&mut lock_recover(&stripe.events));
        }
        trace.spans.sort_by_key(|s| (s.start_ns, s.id));
        trace.events.sort_by_key(|e| e.ts_ns);
        trace.dropped = self.dropped.swap(0, Ordering::Relaxed);
        trace
    }
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

pub(crate) fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// Remove and return everything collected so far (spans sorted by start
/// time). Dropped-record count is reset.
pub fn drain() -> Trace {
    collector().drain()
}

/// Cumulative count of records discarded because a stripe was full, over
/// the whole process lifetime. Unlike [`Trace::dropped`] this is never
/// reset, so exporters (`observatory_obs_dropped_total`) can read it
/// repeatedly without draining the trace.
pub fn dropped_total() -> u64 {
    collector().dropped_total.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: "s",
            target: "t",
            level: Level::Info,
            tid: 0,
            start_ns: start,
            dur_ns: dur,
            fields: vec![],
            panicked: false,
        }
    }

    #[test]
    fn nesting_accepts_well_formed() {
        let t = Trace {
            spans: vec![rec(1, None, 0, 100), rec(2, Some(1), 10, 50), rec(3, Some(2), 20, 10)],
            ..Default::default()
        };
        assert!(t.check_nesting().is_ok());
    }

    #[test]
    fn nesting_rejects_missing_parent() {
        let t = Trace { spans: vec![rec(2, Some(1), 0, 10)], ..Default::default() };
        assert!(t.check_nesting().unwrap_err().contains("missing parent"));
    }

    #[test]
    fn nesting_rejects_forward_parent() {
        let t = Trace {
            spans: vec![rec(1, Some(2), 0, 10), rec(2, None, 0, 100)],
            ..Default::default()
        };
        assert!(t.check_nesting().is_err());
    }

    #[test]
    fn nesting_rejects_escaping_child() {
        let t = Trace {
            spans: vec![rec(1, None, 0, 100), rec(2, Some(1), 50, 500_000)],
            ..Default::default()
        };
        assert!(t.check_nesting().unwrap_err().contains("ends after"));
    }

    #[test]
    fn survives_poisoned_stripes() {
        // Poison every stripe mutex by panicking while holding it, then
        // verify pushes and drain still work: a tracing buffer must never
        // become a single point of failure for the instrumented program.
        let c = std::sync::Arc::new(Collector::new());
        for i in 0..N_STRIPES {
            let c2 = std::sync::Arc::clone(&c);
            let _ = std::thread::Builder::new()
                .spawn(move || {
                    let _spans = c2.stripes[i].spans.lock().unwrap();
                    let _events = c2.stripes[i].events.lock().unwrap();
                    panic!("poison stripe {i}");
                })
                .unwrap()
                .join();
        }
        for tid in 0..N_STRIPES as u64 {
            let mut r = rec(tid + 1, None, tid, 1);
            r.tid = tid;
            c.push_span(r);
        }
        let t = c.drain();
        assert_eq!(t.spans.len(), N_STRIPES, "all stripes usable after poisoning");
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn bounded_stripe_counts_drops() {
        let c = Collector {
            stripes: (0..N_STRIPES).map(|_| Stripe::default()).collect(),
            span_cap: 2,
            event_cap: 1,
            epoch: Instant::now(),
            dropped: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
        };
        for i in 0..5 {
            c.push_span(rec(i, None, i, 1)); // all tid 0 → one stripe
        }
        let t = c.drain();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.dropped, 3);
        // Drain resets the per-drain counter but not the cumulative one.
        assert_eq!(c.drain().dropped, 0);
        assert_eq!(c.dropped_total.load(Ordering::Relaxed), 3);
    }
}
