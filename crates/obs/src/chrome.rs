//! Chrome trace-event JSON exporter.
//!
//! Emits the [Trace Event Format] object form: spans become `"ph":"X"`
//! (complete) events with microsecond `ts`/`dur`, instant events become
//! `"ph":"i"`, and the provenance [`Manifest`] lands in `otherData`.
//! The output loads directly in `chrome://tracing` and Perfetto; span
//! ids and parent edges ride along in `args` so tooling (and our
//! round-trip tests) can rebuild the exact span forest.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::collector::Trace;
use crate::json::escape;
use crate::level::Level;
use crate::manifest::Manifest;
use std::fmt::Write as _;

/// Render a drained [`Trace`] plus its provenance [`Manifest`] as a
/// Chrome trace-event JSON document.
pub fn chrome_trace(trace: &Trace, manifest: &Manifest) -> String {
    let mut out = String::with_capacity(256 + 160 * (trace.spans.len() + trace.events.len()));
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
    // Manifest + collector bookkeeping.
    let mut first = true;
    for (k, v) in manifest.pairs() {
        sep(&mut out, &mut first);
        let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
    }
    sep(&mut out, &mut first);
    let _ = write!(out, "\"dropped_records\": \"{}\"", trace.dropped);
    out.push_str("},\n\"traceEvents\": [\n");

    let mut first_event = true;
    // Process metadata.
    push_meta(&mut out, &mut first_event, "process_name", 0, "observatory");
    let mut tids: Vec<u64> = trace.spans.iter().map(|s| s.tid).collect();
    tids.extend(trace.events.iter().map(|e| e.tid));
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        push_meta(&mut out, &mut first_event, "thread_name", tid, &format!("thread-{tid}"));
    }

    for s in &trace.spans {
        sep_line(&mut out, &mut first_event);
        let _ = write!(
            out,
            "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"pid\": 1, \"tid\": {}, \
             \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"id\": {}, ",
            escape(s.name),
            escape(s.target),
            s.tid,
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
            s.id,
        );
        match s.parent {
            Some(p) => {
                let _ = write!(out, "\"parent\": {p}, ");
            }
            None => out.push_str("\"parent\": null, "),
        }
        let _ = write!(out, "\"level\": \"{}\"", level_name(s.level));
        if s.panicked {
            out.push_str(", \"panicked\": true");
        }
        for (k, v) in &s.fields {
            let _ = write!(out, ", \"{}\": \"{}\"", escape(k), escape(v));
        }
        out.push_str("}}");
    }

    for e in &trace.events {
        sep_line(&mut out, &mut first_event);
        let _ = write!(
            out,
            "{{\"ph\": \"i\", \"s\": \"t\", \"name\": \"{}\", \"cat\": \"{}\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {:.3}, \"args\": {{\"level\": \"{}\"",
            escape(e.name),
            escape(e.target),
            e.tid,
            e.ts_ns as f64 / 1_000.0,
            level_name(e.level),
        );
        for (k, v) in &e.fields {
            let _ = write!(out, ", \"{}\": \"{}\"", escape(k), escape(v));
        }
        out.push_str("}}");
    }

    out.push_str("\n]\n}\n");
    out
}

fn level_name(l: Level) -> &'static str {
    l.name()
}

fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
}

fn sep_line(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

fn push_meta(out: &mut String, first: &mut bool, name: &str, tid: u64, value: &str) {
    sep_line(out, first);
    let _ = write!(
        out,
        "{{\"ph\": \"M\", \"name\": \"{name}\", \"pid\": 1, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        escape(value)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{EventRecord, SpanRecord};
    use crate::json;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "P1",
                    target: "props",
                    level: Level::Info,
                    tid: 1,
                    start_ns: 1_000,
                    dur_ns: 9_000_000,
                    fields: vec![("model", "bert \"q\"".into())],
                    panicked: false,
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "encode_batch",
                    target: "runtime",
                    level: Level::Debug,
                    tid: 1,
                    start_ns: 2_000,
                    dur_ns: 500_000,
                    fields: vec![("tables", "12".into())],
                    panicked: true,
                },
            ],
            events: vec![EventRecord {
                name: "evict",
                target: "cache",
                level: Level::Debug,
                tid: 2,
                ts_ns: 3_000,
                fields: vec![("count", "4".into())],
            }],
            dropped: 7,
        }
    }

    #[test]
    fn output_is_valid_json_with_expected_shape() {
        let mut m = Manifest::new();
        m.set("seed", "42").set("dataset", "wiki\\demo");
        let text = chrome_trace(&sample_trace(), &m);
        let doc = json::parse(&text).expect("chrome export must parse");
        assert_eq!(doc.get("otherData").unwrap().get("seed").unwrap().as_str(), Some("42"));
        assert_eq!(
            doc.get("otherData").unwrap().get("dataset").unwrap().as_str(),
            Some("wiki\\demo")
        );
        assert_eq!(
            doc.get("otherData").unwrap().get("dropped_records").unwrap().as_str(),
            Some("7")
        );
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process meta + 2 thread metas + 2 spans + 1 instant.
        assert_eq!(events.len(), 6);
        let xs: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
        assert_eq!(xs.len(), 2);
        let child = xs.iter().find(|e| e.get("name").unwrap().as_str() == Some("encode_batch"));
        let child = child.unwrap();
        assert_eq!(child.get("args").unwrap().get("parent").unwrap().as_f64(), Some(1.0));
        assert_eq!(child.get("args").unwrap().get("panicked"), Some(&json::Json::Bool(true)));
        assert_eq!(child.get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(child.get("dur").unwrap().as_f64(), Some(500.0));
        let instant =
            events.iter().find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i")).unwrap();
        assert_eq!(instant.get("cat").unwrap().as_str(), Some("cache"));
        assert_eq!(instant.get("args").unwrap().get("count").unwrap().as_str(), Some("4"));
    }

    #[test]
    fn escaped_field_values_round_trip() {
        let text = chrome_trace(&sample_trace(), &Manifest::new());
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let p1 =
            events.iter().find(|e| e.get("name").and_then(|n| n.as_str()) == Some("P1")).unwrap();
        assert_eq!(p1.get("args").unwrap().get("model").unwrap().as_str(), Some("bert \"q\""));
    }

    #[test]
    fn empty_trace_still_valid() {
        let text = chrome_trace(&Trace::default(), &Manifest::new());
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1, "process metadata only");
    }
}
