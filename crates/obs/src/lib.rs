//! # observatory-obs
//!
//! The observability layer for the Observatory workspace: structured,
//! hierarchical span tracing plus exporters, with **zero dependencies**
//! and a disabled-path cost of one relaxed atomic load.
//!
//! The paper's evaluation (§5) is a long multi-stage pipeline —
//! per-property permutation loops over thousands of encodes, then
//! downstream tasks — and "where does the time go?" must be answerable
//! without a profiler. This crate provides:
//!
//! - [`level`] — the `OBSERVATORY_LOG=off|error|info|debug|trace` runtime
//!   filter. When the level is [`Level::Off`] (the default), every
//!   instrumentation site reduces to a branch on one atomic.
//! - [`span`] — RAII span guards ([`span()`]): panic-safe (the record is
//!   emitted from `Drop`, which runs during unwinding and marks the span
//!   `panicked`), thread-aware (parents default to the innermost open
//!   span *on the same thread*; cross-thread parents — a worker encode
//!   under its batch span — are wired explicitly with
//!   [`Span::with_parent`]).
//! - [`collector`] — a lock-striped, bounded global sink. Overflow never
//!   blocks or reallocates past the cap; it increments a drop counter
//!   that the exporters surface.
//! - [`chrome`] — Chrome trace-event JSON (`chrome://tracing`, Perfetto).
//! - [`flight`] — the always-on flight recorder: a lock-striped ring of
//!   compact serving events, dumped as Chrome-trace JSON to
//!   `OBSERVATORY_FLIGHT_DIR` when an anomaly fires.
//! - [`profiler`] — the span-sampling profiler: a sampler thread folds
//!   every registered thread's active-span stack into
//!   flamegraph-compatible folded stacks plus a top-N self-time table.
//! - [`prom`] — a Prometheus text-exposition builder + line validator.
//! - [`manifest`] — the per-run provenance manifest (models, dataset,
//!   seed, permutations, jobs, cache config, version, wall time) embedded
//!   in both export formats.
//! - [`json`] — a minimal JSON parser so tests and the `validate_trace`
//!   tool can round-trip the Chrome export without external crates.
//!
//! ## Span taxonomy
//!
//! | target | spans | level |
//! |---|---|---|
//! | `props` | `P1` … `P8` (one per `Property::evaluate`) | info |
//! | `downstream` | `column_type`, `join_discovery`, `tableqa`, `imputation`, `ensemble` | info |
//! | `runtime` | `encode_batch` (per batch), `encode` (per cache miss) | info / debug |
//! | `pool` | `worker` (per spawned worker thread) | trace |
//! | `cache` | `evict`, `reject_oversized` events | debug / trace |
//!
//! ## Quick use
//!
//! ```
//! use observatory_obs as obs;
//! obs::set_level(obs::Level::Debug);
//! {
//!     let _outer = obs::span(obs::Level::Info, "props", "P1").with("model", "bert");
//!     let _inner = obs::span(obs::Level::Debug, "runtime", "encode_batch");
//! } // spans close on drop, innermost first
//! let trace = obs::drain();
//! assert_eq!(trace.spans.len(), 2);
//! obs::set_level(obs::Level::Off);
//! ```

pub mod chrome;
pub mod collector;
pub mod flight;
pub mod json;
pub mod level;
pub mod manifest;
pub mod profiler;
pub mod prom;
pub mod span;

pub use chrome::chrome_trace;
pub use collector::{drain, dropped_total, EventRecord, SpanRecord, Trace};
pub use flight::{FlightEvent, FlightKind, FLIGHT_DIR_ENV, STAGE_NAMES};
pub use level::{
    current_level, enabled, init_from_env, raise_level, set_level, Level, LOG_ENV_VAR,
};
pub use manifest::Manifest;
pub use profiler::ProfileReport;
pub use prom::PromBuf;
pub use span::{current_span_id, event, event_with, span, Span};
