//! Always-on flight recorder: a lock-striped, fixed-capacity ring of
//! compact serving anomaly events.
//!
//! Unlike the span [`crate::collector`] — which is level-gated and
//! drained wholesale at the end of a run — the flight recorder is
//! *always on*: every admission, shed, expiry, completion, panic, and
//! quarantine pushes one fixed-size [`FlightEvent`] (no allocation, one
//! striped mutex) into a ring that overwrites its oldest entries. When
//! an anomaly fires, [`dump`] writes the last [`DUMP_WINDOW`] of events
//! as a Chrome-trace JSON into `OBSERVATORY_FLIGHT_DIR`, so the process
//! keeps a black-box record of what it was doing right before things
//! went wrong. `GET /debug/flight` renders the same window on demand.
//!
//! Events are compact by construction: the request id is truncated into
//! an inline [`SmallId`] buffer (no heap), and per-stage timings ride
//! in a fixed `[u64; 5]` keyed by [`STAGE_NAMES`].

use crate::collector::{collector, lock_recover, N_STRIPES};
use crate::json::escape;
use crate::span::thread_id;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable naming the directory anomaly dumps are written
/// to. When unset, [`dump`] is a no-op — the ring still records.
pub const FLIGHT_DIR_ENV: &str = "OBSERVATORY_FLIGHT_DIR";

/// Total event capacity of the global ring, across stripes.
pub const DEFAULT_FLIGHT_CAP: usize = 1 << 14;

/// How far back an anomaly dump reaches.
pub const DUMP_WINDOW: Duration = Duration::from_secs(30);

/// Minimum spacing between consecutive anomaly dumps: a shed storm must
/// not turn into a disk-write storm. The first dump always fires.
pub const DUMP_MIN_INTERVAL: Duration = Duration::from_secs(1);

/// Stage-timing slot names, in `[u64; 5]` order: time spent queued for
/// admission, waiting for the batch to fill, encoding, resolving the
/// tier-2 store read, and writing through to the store.
pub const STAGE_NAMES: [&str; 5] =
    ["queue_us", "batch_wait_us", "encode_us", "store_us", "write_us"];

/// What happened. One per recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Request accepted into the admission queue (`a` = queue depth).
    Admit,
    /// Request shed (`a` = HTTP status, 429 or 503).
    Shed,
    /// Server entered drain.
    Drain,
    /// Deadline expired before encode; answered 408.
    Expired,
    /// Request completed (`a` = HTTP status).
    Done,
    /// Encode panic caught by `catch_unwind`.
    Panic,
    /// Store segment quarantined during recovery.
    Quarantine,
    /// Analysis job admitted to the scheduler (`a` = queue depth).
    JobAdmit,
    /// Analysis job finished successfully (`a` = progress ‰).
    JobDone,
    /// Analysis job failed — error, deadline, or retry exhaustion
    /// (`a` = progress ‰).
    JobFail,
    /// Analysis job cancelled — DELETE or drain (`a` = progress ‰).
    JobCancel,
    /// Connection accepted by an epoll shard (`a` = connection token).
    ConnAccept,
    /// Connection closed by the server's timeout ladder (`a` = HTTP
    /// status written before close, 0 for a silent idle close).
    ConnTimeout,
}

impl FlightKind {
    /// Stable lowercase name, used as the Chrome event name.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Admit => "admit",
            FlightKind::Shed => "shed",
            FlightKind::Drain => "drain",
            FlightKind::Expired => "expired",
            FlightKind::Done => "done",
            FlightKind::Panic => "panic",
            FlightKind::Quarantine => "quarantine",
            FlightKind::JobAdmit => "job_admit",
            FlightKind::JobDone => "job_done",
            FlightKind::JobFail => "job_fail",
            FlightKind::JobCancel => "job_cancel",
            FlightKind::ConnAccept => "conn_accept",
            FlightKind::ConnTimeout => "conn_timeout",
        }
    }
}

/// Inline, fixed-capacity request-id buffer. Keeps [`FlightEvent`]
/// `Copy` and allocation-free; ids longer than the buffer are truncated
/// (ids are validated to ≤128 bytes upstream, and the first bytes are
/// what correlates a dump with a log line).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SmallId {
    len: u8,
    buf: [u8; Self::CAP],
}

impl SmallId {
    /// Inline capacity in bytes.
    pub const CAP: usize = 47;

    /// Copy (and truncate, on a UTF-8 boundary) `s` into an inline id.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(Self::CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; Self::CAP];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallId { len: end as u8, buf }
    }

    /// The stored id.
    pub fn as_str(&self) -> &str {
        // Construction only ever copies on a char boundary.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl std::fmt::Debug for SmallId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SmallId({:?})", self.as_str())
    }
}

/// One recorded moment. Fixed size, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the collector epoch (same clock as spans, so a
    /// flight dump and a span trace line up in one timeline).
    pub ts_ns: u64,
    /// Dense per-process thread id.
    pub tid: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The request this event belongs to (empty for process-level
    /// events like [`FlightKind::Drain`]).
    pub rid: SmallId,
    /// Per-stage timings in [`STAGE_NAMES`] order; zero when unknown.
    pub stages: [u64; 5],
    /// Kind-specific detail (queue depth, HTTP status, …).
    pub a: u64,
}

/// Fixed-capacity overwrite-oldest buffer.
struct Ring {
    buf: Vec<FlightEvent>,
    cap: usize,
    /// Next overwrite position once `buf.len() == cap`.
    head: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring { buf: Vec::with_capacity(cap), cap, head: 0 }
    }

    fn push(&mut self, e: FlightEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
        }
    }
}

/// A flight recorder instance. Production code uses the process-global
/// one via [`record`]/[`render`]/[`dump`]; tests build small instances
/// with [`Flight::with_capacity`] to exercise wraparound.
pub struct Flight {
    stripes: Vec<Mutex<Ring>>,
    seq: AtomicU64,
    last_dump: Mutex<Option<Instant>>,
}

impl Flight {
    /// A recorder holding at most `total` events (split across
    /// [`N_STRIPES`] stripes, at least one slot each).
    pub fn with_capacity(total: usize) -> Self {
        let per = (total / N_STRIPES).max(1);
        Flight {
            stripes: (0..N_STRIPES).map(|_| Mutex::new(Ring::new(per))).collect(),
            seq: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// Record one event. Always on — no level gate; the cost is one
    /// striped lock and a fixed-size copy.
    pub fn record(&self, kind: FlightKind, rid: &str, stages: [u64; 5], a: u64) {
        let tid = thread_id();
        let ts_ns =
            u64::try_from(Instant::now().saturating_duration_since(collector().epoch()).as_nanos())
                .unwrap_or(u64::MAX);
        let event = FlightEvent { ts_ns, tid, kind, rid: SmallId::new(rid), stages, a };
        lock_recover(&self.stripes[(tid as usize) % N_STRIPES]).push(event);
    }

    /// Copy out the retained events — all of them, or only those within
    /// the trailing `window` — sorted by timestamp. The ring is not
    /// cleared: the recorder keeps flying.
    pub fn snapshot(&self, window: Option<Duration>) -> Vec<FlightEvent> {
        let cutoff = window.map(|w| {
            let now = u64::try_from(collector().epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
            now.saturating_sub(u64::try_from(w.as_nanos()).unwrap_or(u64::MAX))
        });
        let mut events = Vec::new();
        for stripe in &self.stripes {
            let ring = lock_recover(stripe);
            match cutoff {
                Some(c) => events.extend(ring.buf.iter().filter(|e| e.ts_ns >= c)),
                None => events.extend(ring.buf.iter().copied()),
            }
        }
        events.sort_by_key(|e| (e.ts_ns, e.tid));
        events
    }

    /// Render the trailing `window` (or everything) as a Chrome
    /// trace-event JSON document of instant events.
    pub fn render(&self, window: Option<Duration>, reason: &str) -> String {
        render_chrome(&self.snapshot(window), reason)
    }

    /// Write the trailing [`DUMP_WINDOW`] to
    /// `$OBSERVATORY_FLIGHT_DIR/flight-{reason}-{seq}.json`. No-op when
    /// the variable is unset; rate-limited to one dump per
    /// [`DUMP_MIN_INTERVAL`] (the first always fires). Returns the
    /// written path, or `None` when skipped or on I/O failure (an
    /// anomaly dump must never take the serving path down with it).
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = std::env::var_os(FLIGHT_DIR_ENV)?;
        {
            let mut last = lock_recover(&self.last_dump);
            if let Some(t) = *last {
                if t.elapsed() < DUMP_MIN_INTERVAL {
                    return None;
                }
            }
            *last = Some(Instant::now());
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let text = self.render(Some(DUMP_WINDOW), reason);
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("flight: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("flight-{reason}-{seq}.json"));
        match std::fs::write(&path, text) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("flight: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Render flight events as a Chrome trace-event JSON document: one
/// `"ph": "i"` instant per event, with the request id and the five
/// stage timings in `args`, plus thread-name metadata — the same shape
/// [`crate::chrome_trace`] emits, so the file loads in `chrome://tracing`
/// and Perfetto next to a span trace.
pub fn render_chrome(events: &[FlightEvent], reason: &str) -> String {
    let mut out = String::with_capacity(256 + 200 * events.len());
    let _ = write!(
        out,
        "{{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"recorder\": \"flight\", \
         \"reason\": \"{}\", \"events\": \"{}\"}},\n\"traceEvents\": [\n",
        escape(reason),
        events.len()
    );

    let mut first = true;
    push_meta(&mut out, &mut first, "process_name", 0, "observatory");
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        push_meta(&mut out, &mut first, "thread_name", tid, &format!("thread-{tid}"));
    }

    for e in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\": \"i\", \"s\": \"t\", \"name\": \"{}\", \"cat\": \"flight\", \
             \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"args\": {{\"request_id\": \"{}\"",
            e.kind.name(),
            e.tid,
            e.ts_ns as f64 / 1_000.0,
            escape(e.rid.as_str()),
        );
        for (name, value) in STAGE_NAMES.iter().zip(e.stages) {
            let _ = write!(out, ", \"{name}\": {value}");
        }
        let _ = write!(out, ", \"a\": {}}}}}", e.a);
    }

    out.push_str("\n]\n}\n");
    out
}

fn push_meta(out: &mut String, first: &mut bool, name: &str, tid: u64, value: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"ph\": \"M\", \"name\": \"{name}\", \"pid\": 1, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        escape(value)
    );
}

static FLIGHT: OnceLock<Flight> = OnceLock::new();

/// The process-global recorder.
pub fn flight() -> &'static Flight {
    FLIGHT.get_or_init(|| Flight::with_capacity(DEFAULT_FLIGHT_CAP))
}

/// Record one event into the global recorder. See [`Flight::record`].
pub fn record(kind: FlightKind, rid: &str, stages: [u64; 5], a: u64) {
    flight().record(kind, rid, stages, a);
}

/// Render the global recorder's trailing `window` as Chrome-trace JSON.
pub fn render(window: Option<Duration>, reason: &str) -> String {
    flight().render(window, reason)
}

/// Dump the global recorder to `$OBSERVATORY_FLIGHT_DIR`. See
/// [`Flight::dump`].
pub fn dump(reason: &str) -> Option<PathBuf> {
    flight().dump(reason)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(flight: &Flight, rid: &str, a: u64) {
        flight.record(FlightKind::Done, rid, [1, 2, 3, 4, 5], a);
    }

    #[test]
    fn small_id_truncates_on_char_boundary() {
        assert_eq!(SmallId::new("abc").as_str(), "abc");
        assert_eq!(SmallId::new("").as_str(), "");
        let long = "x".repeat(200);
        assert_eq!(SmallId::new(&long).as_str().len(), SmallId::CAP);
        // Multi-byte char straddling the cap is dropped whole, never torn.
        let tricky = format!("{}é", "a".repeat(SmallId::CAP - 1));
        let stored = SmallId::new(&tricky);
        assert_eq!(stored.as_str(), &tricky[..SmallId::CAP - 1]);
    }

    #[test]
    fn ring_overwrites_oldest_per_stripe() {
        // Single-threaded, so every push lands on this thread's stripe.
        let f = Flight::with_capacity(N_STRIPES * 4); // 4 slots per stripe
        for i in 0..10u64 {
            ev(&f, &format!("r{i}"), i);
        }
        let got = f.snapshot(None);
        assert_eq!(got.len(), 4, "ring keeps exactly its per-stripe capacity");
        let kept: Vec<u64> = got.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest overwritten first, order preserved");
        assert_eq!(got[0].rid.as_str(), "r6");
    }

    #[test]
    fn snapshot_window_filters_old_events() {
        let f = Flight::with_capacity(64);
        ev(&f, "old", 1);
        // An hour-long window sees it; a zero-length window does not.
        assert_eq!(f.snapshot(Some(Duration::from_secs(3600))).len(), 1);
        assert_eq!(f.snapshot(Some(Duration::ZERO)).len(), 0);
        // Snapshot does not drain.
        assert_eq!(f.snapshot(None).len(), 1);
    }

    #[test]
    fn chrome_render_is_valid_json_with_stage_args() {
        let f = Flight::with_capacity(64);
        f.record(FlightKind::Expired, "req-slow-1", [10, 20, 30, 40, 50], 408);
        let text = f.render(None, "test");
        let doc = json::parse(&text).expect("flight export must parse");
        assert_eq!(doc.get("otherData").unwrap().get("reason").unwrap().as_str(), Some("test"));
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .expect("one instant event");
        assert_eq!(instant.get("name").unwrap().as_str(), Some("expired"));
        let args = instant.get("args").unwrap();
        assert_eq!(args.get("request_id").unwrap().as_str(), Some("req-slow-1"));
        for (name, want) in STAGE_NAMES.iter().zip([10.0, 20.0, 30.0, 40.0, 50.0]) {
            assert_eq!(args.get(name).unwrap().as_f64(), Some(want), "stage {name}");
        }
        assert_eq!(args.get("a").unwrap().as_f64(), Some(408.0));
    }

    #[test]
    fn dump_without_env_is_noop() {
        // The test harness never sets OBSERVATORY_FLIGHT_DIR, so the
        // global dump path must bail before touching the filesystem.
        if std::env::var_os(FLIGHT_DIR_ENV).is_none() {
            let f = Flight::with_capacity(8);
            ev(&f, "r", 0);
            assert_eq!(f.dump("test"), None);
        }
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            (FlightKind::Admit, "admit"),
            (FlightKind::Shed, "shed"),
            (FlightKind::Drain, "drain"),
            (FlightKind::Expired, "expired"),
            (FlightKind::Done, "done"),
            (FlightKind::Panic, "panic"),
            (FlightKind::Quarantine, "quarantine"),
            (FlightKind::JobAdmit, "job_admit"),
            (FlightKind::JobDone, "job_done"),
            (FlightKind::JobFail, "job_fail"),
            (FlightKind::JobCancel, "job_cancel"),
            (FlightKind::ConnAccept, "conn_accept"),
            (FlightKind::ConnTimeout, "conn_timeout"),
        ];
        for (k, name) in kinds {
            assert_eq!(k.name(), name);
        }
    }
}
