//! Prometheus text-exposition builder and validator.
//!
//! [`PromBuf`] writes the [text exposition format] (version 0.0.4):
//! `# HELP` / `# TYPE` comments followed by samples with escaped label
//! values. [`validate`] parses a document line-by-line — pure Rust, no
//! jq — and is what the `validate_trace` tool and the CI smoke step use
//! to schema-check `--metrics-out` files.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::collector::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Incremental builder for a Prometheus text document.
#[derive(Debug, Default)]
pub struct PromBuf {
    out: String,
}

impl PromBuf {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the `# HELP` and `# TYPE` header for a metric family.
    /// `kind` is `"counter"`, `"gauge"`, `"histogram"`, or `"untyped"`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// Write one sample line. Non-finite values render as `NaN`/`+Inf`/
    /// `-Inf` per the format.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
        self
    }

    /// Convenience: header + single unlabeled sample.
    pub fn scalar(&mut self, name: &str, kind: &str, help: &str, value: f64) -> &mut Self {
        self.family(name, kind, help).sample(name, &[], value)
    }

    /// Write a full histogram family from fixed bucket upper bounds (ns)
    /// and per-bucket counts. Rendered in **seconds** (the Prometheus
    /// base unit), cumulative, with the mandatory `+Inf` bucket, `_sum`
    /// and `_count` series.
    #[allow(clippy::too_many_arguments)] // mirrors the exposition schema
    pub fn histogram_ns(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds_ns: &[u64],
        counts: &[u64],
        sum_ns: u64,
        count: u64,
    ) -> &mut Self {
        assert_eq!(bounds_ns.len(), counts.len(), "one count per bound");
        self.family(name, "histogram", help);
        let mut cumulative = 0u64;
        let mut labels_le: Vec<(&str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        labels_le.push(("le", String::new()));
        for (bound, c) in bounds_ns.iter().zip(counts) {
            cumulative += c;
            let le = if *bound == u64::MAX {
                "+Inf".to_string()
            } else {
                fmt_value(*bound as f64 / 1e9)
            };
            labels_le.last_mut().unwrap().1 = le;
            let borrowed: Vec<(&str, &str)> =
                labels_le.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.sample(&format!("{name}_bucket"), &borrowed, cumulative as f64);
        }
        if bounds_ns.last() != Some(&u64::MAX) {
            labels_le.last_mut().unwrap().1 = "+Inf".into();
            let borrowed: Vec<(&str, &str)> =
                labels_le.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.sample(&format!("{name}_bucket"), &borrowed, count as f64);
        }
        self.sample(&format!("{name}_sum"), labels, sum_ns as f64 / 1e9);
        self.sample(&format!("{name}_count"), labels, count as f64);
        self
    }

    /// Fold per-span-name aggregates (count + total seconds) from a
    /// drained trace into the document, plus the dropped-record counter.
    pub fn span_aggregates(&mut self, trace: &Trace) -> &mut Self {
        let mut agg: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
        for s in &trace.spans {
            let e = agg.entry((s.target, s.name)).or_insert((0, 0));
            e.0 += 1;
            e.1 = e.1.saturating_add(s.dur_ns);
        }
        self.family("observatory_span_total", "counter", "Closed spans per (target, name).");
        for ((target, name), (count, _)) in &agg {
            self.sample(
                "observatory_span_total",
                &[("target", target), ("name", name)],
                *count as f64,
            );
        }
        self.family(
            "observatory_span_seconds_total",
            "counter",
            "Total time inside spans per (target, name); nested spans double-count their parents.",
        );
        for ((target, name), (_, ns)) in &agg {
            self.sample(
                "observatory_span_seconds_total",
                &[("target", target), ("name", name)],
                *ns as f64 / 1e9,
            );
        }
        self.scalar(
            "observatory_trace_dropped_records",
            "counter",
            "Span/event records discarded because the collector was full.",
            trace.dropped as f64,
        )
    }

    /// Finish and return the document.
    pub fn finish(self) -> String {
        self.out
    }

    /// Current document length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Summary returned by [`validate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromSummary {
    /// Distinct metric names with at least one sample.
    pub metrics: Vec<String>,
    /// Total sample lines.
    pub samples: usize,
}

impl PromSummary {
    /// Whether a metric name has samples.
    pub fn has(&self, name: &str) -> bool {
        self.metrics.iter().any(|m| m == name)
    }
}

/// Line-by-line validation of a Prometheus text document:
/// comment lines must be well-formed `# HELP`/`# TYPE`, sample lines
/// must be `name[{labels}] value`, metric/label names must be legal,
/// values must parse, and histogram `_bucket` series must be cumulative
/// (non-decreasing in `le` order of appearance).
pub fn validate(text: &str) -> Result<PromSummary, String> {
    let mut summary = PromSummary::default();
    let mut bucket_last: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment.starts_with("HELP") || comment.starts_with("TYPE") {
                let mut parts = comment.splitn(3, ' ');
                let kw = parts.next().unwrap_or("");
                let name = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in # {kw}: '{name}'"));
                }
                if kw == "TYPE" {
                    let t = parts.next().unwrap_or("").trim();
                    if !matches!(t, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {n}: unknown TYPE '{t}'"));
                    }
                }
            }
            continue; // other comments are legal and ignored
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => line.split_at(i),
            None => return Err(format!("line {n}: no value: '{line}'")),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad metric name '{name}'"));
        }
        let mut le_label: Option<f64> = None;
        // Non-`le` labels identify the child series: cumulativity is
        // per (family, labelset), not per family — a labeled histogram
        // (e.g. one `stage=...` child per pipeline stage) restarts its
        // cumulative count at each new labelset.
        let mut series_labels = String::new();
        let rest = if let Some(body) = rest.strip_prefix('{') {
            let close = body.find('}').ok_or_else(|| format!("line {n}: unclosed labels"))?;
            let labels = &body[..close];
            for pair in split_labels(labels) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {n}: bad label pair '{pair}'"))?;
                if !valid_label_name(k) {
                    return Err(format!("line {n}: bad label name '{k}'"));
                }
                let v = v.trim();
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(format!("line {n}: unquoted label value '{v}'"));
                }
                if k == "le" {
                    let raw = &v[1..v.len() - 1];
                    le_label = Some(parse_value(raw).map_err(|e| format!("line {n}: {e}"))?);
                } else {
                    if !series_labels.is_empty() {
                        series_labels.push(',');
                    }
                    series_labels.push_str(pair);
                }
            }
            &body[close + 1..]
        } else {
            rest
        };
        let value_str = rest.split_whitespace().next().unwrap_or("");
        let value = parse_value(value_str).map_err(|e| format!("line {n}: {e}"))?;
        if let (Some(series), Some(_le)) = (name.strip_suffix("_bucket"), le_label) {
            let key = format!("{series}{{{series_labels}}}");
            let prev = bucket_last.entry(key).or_insert(f64::NEG_INFINITY);
            if value < *prev {
                return Err(format!(
                    "line {n}: histogram '{series}' buckets not cumulative ({value} < {prev})"
                ));
            }
            *prev = value;
        }
        if !summary.metrics.iter().any(|m| m == name) {
            summary.metrics.push(name.to_string());
        }
        summary.samples += 1;
    }
    if summary.samples == 0 {
        return Err("no samples in document".into());
    }
    Ok(summary)
}

/// Split a label body on commas that are outside quoted values.
fn split_labels(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                if !body[start..i].trim().is_empty() {
                    out.push(body[start..i].trim());
                }
                start = i + 1;
                escaped = false;
            }
            _ => escaped = false,
        }
    }
    if !body[start..].trim().is_empty() {
        out.push(body[start..].trim());
    }
    out
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("bad value '{s}'")),
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_valid_text() {
        let mut b = PromBuf::new();
        b.scalar("observatory_encodes_total", "counter", "Total encodes.", 42.0);
        b.family("observatory_cache_bytes", "gauge", "Live bytes per shard.");
        b.sample("observatory_cache_bytes", &[("shard", "0")], 123.0);
        b.sample("observatory_cache_bytes", &[("shard", "1")], 4.5);
        let text = b.finish();
        let s = validate(&text).expect("builder output must validate");
        assert_eq!(s.samples, 3);
        assert!(s.has("observatory_encodes_total"));
        assert!(s.has("observatory_cache_bytes"));
        assert!(text.contains("observatory_cache_bytes{shard=\"0\"} 123"));
    }

    #[test]
    fn histogram_is_cumulative_with_inf() {
        let mut b = PromBuf::new();
        b.histogram_ns(
            "observatory_encode_latency_seconds",
            "Encode latency.",
            &[],
            &[1_000, 4_000, u64::MAX],
            &[2, 3, 1],
            12_345,
            6,
        );
        let text = b.finish();
        validate(&text).expect("histogram must validate");
        assert!(text.contains("le=\"+Inf\"} 6"));
        assert!(text.contains("observatory_encode_latency_seconds_count 6"));
        assert!(text.contains("observatory_encode_latency_seconds_sum 0.000012345"));
    }

    #[test]
    fn label_escaping_survives_validation() {
        let mut b = PromBuf::new();
        b.family("m_total", "counter", "Help with \\ backslash\nand newline.");
        b.sample("m_total", &[("model", "we\"ird\\name")], 1.0);
        validate(&b.finish()).expect("escaped labels must validate");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate("").is_err(), "empty doc");
        assert!(validate("1bad_name 3\n").is_err(), "leading digit");
        assert!(validate("m{x=\"1\"\n").is_err(), "unclosed labels");
        assert!(validate("m{x=1} 3\n").is_err(), "unquoted label value");
        assert!(validate("m notanumber\n").is_err(), "bad value");
        assert!(validate("# TYPE m bogus\nm 1\n").is_err(), "unknown TYPE");
        let noncumulative = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(validate(noncumulative).is_err(), "non-cumulative buckets");
    }

    #[test]
    fn labeled_histogram_children_are_independent() {
        // Two children of one family: each restarts its cumulative
        // count — a family-level check would reject the second child.
        let ok = "h_bucket{stage=\"a\",le=\"1\"} 5\nh_bucket{stage=\"a\",le=\"+Inf\"} 9\n\
                  h_bucket{stage=\"b\",le=\"1\"} 2\nh_bucket{stage=\"b\",le=\"+Inf\"} 3\n";
        validate(ok).expect("per-labelset cumulativity");
        let bad = "h_bucket{stage=\"a\",le=\"1\"} 5\nh_bucket{stage=\"a\",le=\"+Inf\"} 4\n";
        assert!(validate(bad).is_err(), "still cumulative within one child");
    }

    #[test]
    fn validator_accepts_special_values() {
        let s = validate("m_gauge NaN\nn_gauge +Inf\n").unwrap();
        assert_eq!(s.samples, 2);
    }

    #[test]
    fn span_aggregates_fold_trace() {
        use crate::collector::SpanRecord;
        use crate::level::Level;
        let mk = |id, name: &'static str, dur| SpanRecord {
            id,
            parent: None,
            name,
            target: "props",
            level: Level::Info,
            tid: 1,
            start_ns: 0,
            dur_ns: dur,
            fields: vec![],
            panicked: false,
        };
        let trace = Trace {
            spans: vec![mk(1, "P1", 1_000_000), mk(2, "P1", 2_000_000), mk(3, "P2", 500_000)],
            events: vec![],
            dropped: 2,
        };
        let mut b = PromBuf::new();
        b.span_aggregates(&trace);
        let text = b.finish();
        validate(&text).unwrap();
        assert!(text.contains("observatory_span_total{target=\"props\",name=\"P1\"} 2"));
        assert!(text.contains("observatory_span_seconds_total{target=\"props\",name=\"P1\"} 0.003"));
        assert!(text.contains("observatory_trace_dropped_records 2"));
    }
}
