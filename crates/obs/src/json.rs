//! A minimal JSON tree: enough to emit (escape) and parse back the
//! Chrome trace export inside tests and the `validate_trace` tool,
//! keeping the workspace free of external parsers.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escape a string for embedding inside a JSON string literal
/// (everything between, not including, the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected '{}' at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "q\"uote", "back\\slash", "new\nline", "tab\tctrl\u{1}", "ünïcode 表"]
        {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc).unwrap(), Json::Str(s.to_string()), "{s:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        // Literal astral char and its surrogate-pair escape: 😀 U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"open", "01a", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn object_key_order_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
