//! Integration tests for the global tracing machinery: span nesting,
//! level filtering, cross-thread parents, panic safety, and exporter
//! round-trips through the real collector.
//!
//! The level and collector are process-wide, so every test takes the
//! same lock and filters drained records by names unique to itself —
//! tests must not see each other's spans.

use observatory_obs as obs;
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the global level set to `level`, serialized against the
/// other tests, restoring Off afterwards.
fn with_level<T>(level: obs::Level, f: impl FnOnce() -> T) -> T {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_level(level);
    let out = f();
    obs::set_level(obs::Level::Off);
    out
}

#[test]
fn spans_nest_and_close_in_order() {
    let trace = with_level(obs::Level::Debug, || {
        {
            let _outer = obs::span(obs::Level::Info, "test", "nest_outer").with("k", "v");
            let _mid = obs::span(obs::Level::Info, "test", "nest_mid");
            let _inner = obs::span(obs::Level::Debug, "test", "nest_inner");
        }
        obs::drain()
    });
    let outer = trace.spans_named("nest_outer").next().expect("outer recorded");
    let mid = trace.spans_named("nest_mid").next().expect("mid recorded");
    let inner = trace.spans_named("nest_inner").next().expect("inner recorded");
    assert_eq!(outer.parent, None);
    assert_eq!(mid.parent, Some(outer.id));
    assert_eq!(inner.parent, Some(mid.id));
    assert_eq!(outer.fields, vec![("k", "v".to_string())]);
    assert!(!outer.panicked);
    trace.check_nesting().expect("well-formed forest");
}

#[test]
fn level_filter_suppresses_and_is_inert() {
    let trace = with_level(obs::Level::Info, || {
        let filtered = obs::span(obs::Level::Debug, "test", "filtered_out");
        assert_eq!(filtered.id(), None, "filtered span is inert");
        drop(filtered);
        let _kept = obs::span(obs::Level::Info, "test", "level_kept");
        obs::event(obs::Level::Trace, "test", "filtered_event");
        obs::event(obs::Level::Info, "test", "kept_event");
        drop(_kept);
        obs::drain()
    });
    assert_eq!(trace.spans_named("filtered_out").count(), 0);
    assert_eq!(trace.spans_named("level_kept").count(), 1);
    assert!(!trace.events.iter().any(|e| e.name == "filtered_event"));
    assert!(trace.events.iter().any(|e| e.name == "kept_event"));
}

#[test]
fn off_records_nothing_at_all() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_level(obs::Level::Off);
    let before = obs::drain();
    drop(before);
    {
        let _s = obs::span(obs::Level::Error, "test", "off_span");
        obs::event(obs::Level::Error, "test", "off_event");
    }
    let trace = obs::drain();
    assert_eq!(trace.spans_named("off_span").count(), 0);
    assert!(!trace.events.iter().any(|e| e.name == "off_event"));
}

#[test]
fn cross_thread_parent_via_with_parent() {
    let trace = with_level(obs::Level::Trace, || {
        let batch = obs::span(obs::Level::Info, "test", "xthread_batch");
        let parent_id = batch.id();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _w = obs::span(obs::Level::Trace, "test", "xthread_worker")
                        .with_parent(parent_id);
                });
            }
        });
        drop(batch);
        obs::drain()
    });
    let batch = trace.spans_named("xthread_batch").next().unwrap();
    let workers: Vec<_> = trace.spans_named("xthread_worker").collect();
    assert_eq!(workers.len(), 2);
    for w in &workers {
        assert_eq!(w.parent, Some(batch.id), "explicit cross-thread parent");
        assert_ne!(w.tid, batch.tid, "workers run on other threads");
    }
    trace.check_nesting().expect("cross-thread forest still nests");
}

#[test]
fn panicking_worker_still_closes_its_spans() {
    let trace = with_level(obs::Level::Debug, || {
        let handle = std::thread::spawn(|| {
            let _outer = obs::span(obs::Level::Info, "test", "panic_outer");
            let _inner = obs::span(obs::Level::Info, "test", "panic_inner");
            panic!("worker poisoned");
        });
        assert!(handle.join().is_err(), "worker must panic");
        obs::drain()
    });
    let outer = trace.spans_named("panic_outer").next().expect("outer closed during unwind");
    let inner = trace.spans_named("panic_inner").next().expect("inner closed during unwind");
    assert!(outer.panicked && inner.panicked, "unwound spans are marked");
    assert_eq!(inner.parent, Some(outer.id), "parentage survives the panic");
    trace.check_nesting().expect("panicked spans still nest");
}

#[test]
fn chrome_export_round_trips_through_parser() {
    let trace = with_level(obs::Level::Debug, || {
        {
            let _p = obs::span(obs::Level::Info, "props", "roundtrip_P1").with("model", "bert");
            let _b = obs::span(obs::Level::Debug, "runtime", "roundtrip_batch");
            obs::event_with(obs::Level::Debug, "cache", "roundtrip_evict", || {
                vec![("count", "3".into())]
            });
        }
        obs::drain()
    });
    let mut manifest = obs::Manifest::new();
    manifest.set("seed", "42").set("models", "bert");
    let json_text = obs::chrome_trace(&trace, &manifest);
    let doc = obs::json::parse(&json_text).expect("export parses");
    assert_eq!(doc.get("otherData").unwrap().get("seed").unwrap().as_str(), Some("42"));
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let batch = events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("roundtrip_batch"))
        .expect("batch span exported");
    let parent = batch.get("args").unwrap().get("parent").unwrap().as_f64().unwrap();
    let p1 = events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("roundtrip_P1"))
        .unwrap();
    assert_eq!(p1.get("args").unwrap().get("id").unwrap().as_f64(), Some(parent));
    assert!(events
        .iter()
        .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("roundtrip_evict")));
}

#[test]
fn prometheus_span_aggregates_validate() {
    let trace = with_level(obs::Level::Info, || {
        for _ in 0..3 {
            let _s = obs::span(obs::Level::Info, "props", "prom_agg_span");
        }
        obs::drain()
    });
    let mut buf = obs::PromBuf::new();
    buf.span_aggregates(&trace);
    let text = buf.finish();
    let summary = obs::prom::validate(&text).expect("aggregates validate");
    assert!(summary.has("observatory_span_total"));
    assert!(text.contains("name=\"prom_agg_span\"} 3"));
}
