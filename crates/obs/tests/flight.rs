//! Property tests for the flight recorder: bounded wraparound under
//! arbitrary push counts and no torn events under concurrent writers.

use observatory_obs::flight::{Flight, FlightKind, STAGE_NAMES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Single-writer wraparound: whatever the capacity and push count,
    /// the ring retains exactly `min(pushes, per-stripe cap)` events
    /// (one thread → one stripe) and they are the *newest* ones, in
    /// order.
    #[test]
    fn wraparound_keeps_newest(total_cap in 1usize..64, pushes in 0usize..200) {
        let f = Flight::with_capacity(total_cap * 8); // per-stripe cap = max(total_cap, 1)
        for i in 0..pushes {
            f.record(FlightKind::Done, &format!("r{i}"), [i as u64; 5], i as u64);
        }
        let got = f.snapshot(None);
        let expect = pushes.min(total_cap.max(1));
        prop_assert_eq!(got.len(), expect);
        for (k, e) in got.iter().enumerate() {
            let want = (pushes - expect + k) as u64;
            prop_assert_eq!(e.a, want, "newest events survive in order");
            prop_assert_eq!(e.rid.as_str(), format!("r{want}").as_str());
            prop_assert_eq!(e.stages, [want; 5]);
        }
    }

    /// Concurrent writers: every retained event is internally
    /// consistent (its rid, stages, and `a` all encode the same
    /// writer/sequence pair — a torn read/write would mismatch), the
    /// ring never exceeds its capacity, and the snapshot is
    /// time-ordered.
    #[test]
    fn concurrent_pushes_never_tear(threads in 1usize..5, per_thread in 1usize..40) {
        let f = std::sync::Arc::new(Flight::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let f = std::sync::Arc::clone(&f);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let tag = (t * 1_000 + i) as u64;
                        f.record(FlightKind::Admit, &format!("w{t}-{i}"), [tag; 5], tag);
                    }
                });
            }
        });
        let got = f.snapshot(None);
        prop_assert!(got.len() <= 64);
        prop_assert!(got.len() <= threads * per_thread);
        let mut last_ts = 0u64;
        for e in &got {
            let (t, i) = ((e.a / 1_000) as usize, (e.a % 1_000) as usize);
            prop_assert!(t < threads && i < per_thread);
            prop_assert_eq!(e.rid.as_str(), format!("w{t}-{i}").as_str(), "rid matches tag");
            prop_assert_eq!(e.stages, [e.a; 5], "stages match tag");
            prop_assert!(e.ts_ns >= last_ts, "snapshot sorted by timestamp");
            last_ts = e.ts_ns;
        }
        // Chrome rendering of a concurrent snapshot stays valid JSON
        // with the full stage schema on every instant.
        let doc = observatory_obs::json::parse(&f.render(None, "proptest"))
            .expect("flight render parses");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        for e in events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i")) {
            let args = e.get("args").unwrap();
            prop_assert!(args.get("request_id").is_some());
            for name in STAGE_NAMES {
                prop_assert!(args.get(name).is_some(), "stage {} exported", name);
            }
        }
    }
}
