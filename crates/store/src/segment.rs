//! Immutable, memory-mapped columnar segment files.
//!
//! A segment is the durable resting place of rotated memtables and the
//! output of compaction. Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (40 B): magic "OBSEG001" · version u32 · dtype u32    │
//! │                dim u32 (0 = mixed) · reserved u32            │
//! │                count u64 · index_offset u64                  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ records: count × [fp u128][len u32][crc u32][payload]        │
//! ├──────────────────────────────────────────────────────────────┤
//! │ index: count × [fp u128][offset u64][len u32][crc u32]       │
//! │ index_crc u32 (over the index block)                         │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers little-endian. Records carry their fingerprint inline so
//! a segment whose index block is corrupt degrades to a sequential scan
//! instead of losing data. Lookups verify the payload CRC before
//! returning bytes — a failed check reads as "absent" and the engine
//! re-encodes (self-healing).
//!
//! Creation is crash-safe: the file is assembled as `<name>.tmp`,
//! fsynced, renamed into place, and the directory fsynced — a crash at
//! any point leaves either no segment or a complete one, never a torn
//! one (torn `.tmp` leftovers are swept at open).

use crate::format::{crc32, parse_record, FRAME_HEADER};
use crate::mmap::FileMap;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"OBSEG001";
const VERSION: u32 = 1;
/// Payload dtype tag: 1 = f64 (`to_bits` little-endian).
const DTYPE_F64: u32 = 1;
const HEADER_LEN: usize = 40;
/// Index entry: fp (16) + offset (8) + len (4) + crc (4).
const INDEX_ENTRY: usize = 32;

/// Filename for segment `id` (fixed width so lexicographic = numeric).
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:06}.seg")
}

/// Parse a segment id back out of a file name produced by
/// [`segment_file_name`].
pub fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(".seg")?.parse().ok()
}

/// Location of one record inside the mapped file.
#[derive(Clone, Copy)]
struct Slot {
    offset: u64,
    len: u32,
    crc: u32,
}

/// An open (mapped) immutable segment.
pub struct Segment {
    map: FileMap,
    index: HashMap<u128, Slot>,
    /// Fingerprints in file order, for deterministic iteration.
    order: Vec<u128>,
    id: u64,
    path: PathBuf,
    /// True when the on-disk index block was unusable and the index was
    /// rebuilt by scanning records.
    pub recovered_by_scan: bool,
}

impl Segment {
    /// Write `records` as segment `id` in `dir` (durably) and open it.
    /// Caller guarantees fingerprints are unique.
    pub fn create(dir: &Path, id: u64, records: &[(u128, &[u8])]) -> io::Result<Segment> {
        let final_path = dir.join(segment_file_name(id));
        let tmp_path = dir.join(format!("{}.tmp", segment_file_name(id)));

        // dim header field: the shared embedding width when every payload
        // agrees (payload bytes 4..8 are the cols field), else 0 = mixed.
        let mut dim: u32 = 0;
        for (i, (_, payload)) in records.iter().enumerate() {
            let d = payload.get(4..8).and_then(|b| b.try_into().ok()).map_or(0, u32::from_le_bytes);
            if i == 0 {
                dim = d;
            } else if d != dim {
                dim = 0;
                break;
            }
        }

        let mut body = Vec::new();
        let mut index = Vec::with_capacity(records.len() * INDEX_ENTRY);
        for &(fp, payload) in records {
            let offset = (HEADER_LEN + body.len() + FRAME_HEADER) as u64;
            crate::format::frame_record(&mut body, fp, payload);
            index.extend_from_slice(&fp.to_le_bytes());
            index.extend_from_slice(&offset.to_le_bytes());
            index.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            index.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let index_offset = (HEADER_LEN + body.len()) as u64;

        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&DTYPE_F64.to_le_bytes());
        header.extend_from_slice(&dim.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes()); // reserved
        header.extend_from_slice(&(records.len() as u64).to_le_bytes());
        header.extend_from_slice(&index_offset.to_le_bytes());

        {
            let mut f =
                OpenOptions::new().create(true).write(true).truncate(true).open(&tmp_path)?;
            f.write_all(&header)?;
            f.write_all(&body)?;
            f.write_all(&index)?;
            f.write_all(&crc32(&index).to_le_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        File::open(dir)?.sync_all()?; // durable directory entry
        Segment::open(&final_path)
    }

    /// Map and parse the segment at `path`. A corrupt index block is
    /// survivable (sequential scan rebuild); a corrupt header is not.
    pub fn open(path: &Path) -> io::Result<Segment> {
        let id = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_segment_id)
            .ok_or_else(|| bad_data("not a segment file name"))?;
        let map = FileMap::of(&File::open(path)?)?;
        if map.len() < HEADER_LEN || &map[..8] != MAGIC {
            return Err(bad_data("bad segment magic"));
        }
        let u32_at = |o: usize| u32::from_le_bytes(map[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(map[o..o + 8].try_into().unwrap());
        if u32_at(8) != VERSION {
            return Err(bad_data("unsupported segment version"));
        }
        if u32_at(12) != DTYPE_F64 {
            return Err(bad_data("unsupported segment dtype"));
        }
        let count = u64_at(24) as usize;
        let index_offset = u64_at(32) as usize;

        // Try the index block first.
        let mut index = HashMap::with_capacity(count);
        let mut order = Vec::with_capacity(count);
        let index_len = count.checked_mul(INDEX_ENTRY);
        let index_ok = (|| {
            let index_len = index_len?;
            let end = index_offset.checked_add(index_len)?;
            let block = map.get(index_offset..end)?;
            let stored_crc = u32::from_le_bytes(map.get(end..end + 4)?.try_into().ok()?);
            if crc32(block) != stored_crc {
                return None;
            }
            for entry in block.chunks_exact(INDEX_ENTRY) {
                let fp = u128::from_le_bytes(entry[..16].try_into().ok()?);
                let offset = u64::from_le_bytes(entry[16..24].try_into().ok()?);
                let len = u32::from_le_bytes(entry[24..28].try_into().ok()?);
                let crc = u32::from_le_bytes(entry[28..32].try_into().ok()?);
                // Offsets must stay inside the record region.
                let end = (offset as usize).checked_add(len as usize)?;
                if end > index_offset {
                    return None;
                }
                index.insert(fp, Slot { offset, len, crc });
                order.push(fp);
            }
            Some(())
        })()
        .is_some();

        let mut recovered_by_scan = false;
        if !index_ok {
            // Fallback: rebuild from the inline record frames. Stops at
            // the first unparsable frame; everything before it survives.
            index.clear();
            order.clear();
            recovered_by_scan = true;
            let mut pos = HEADER_LEN;
            let limit = if index_offset >= HEADER_LEN && index_offset <= map.len() {
                index_offset
            } else {
                map.len()
            };
            while pos + FRAME_HEADER <= limit {
                match parse_record(&map, pos) {
                    Some((fp, payload, next)) if next <= limit => {
                        let slot = Slot {
                            offset: (pos + FRAME_HEADER) as u64,
                            len: payload.len() as u32,
                            crc: crc32(payload),
                        };
                        if index.insert(fp, slot).is_none() {
                            order.push(fp);
                        }
                        pos = next;
                    }
                    _ => break,
                }
            }
        }
        Ok(Segment { map, index, order, id, path: path.to_path_buf(), recovered_by_scan })
    }

    /// Verified payload bytes for `fp`, or `None` (absent or corrupt).
    pub fn get(&self, fp: u128) -> Option<&[u8]> {
        let slot = self.index.get(&fp)?;
        let start = slot.offset as usize;
        let payload = self.map.get(start..start + slot.len as usize)?;
        if crc32(payload) != slot.crc {
            return None;
        }
        Some(payload)
    }

    /// Whether `fp` is indexed (without verifying its payload).
    pub fn contains(&self, fp: u128) -> bool {
        self.index.contains_key(&fp)
    }

    /// Iterate `(fp, verified payload)` in file order, silently skipping
    /// records that fail their CRC.
    pub fn iter(&self) -> impl Iterator<Item = (u128, &[u8])> {
        self.order.iter().filter_map(move |&fp| Some((fp, self.get(fp)?)))
    }

    /// Fingerprints indexed in this segment, in file order.
    pub fn fingerprints(&self) -> &[u128] {
        &self.order
    }

    /// Records indexed.
    pub fn count(&self) -> usize {
        self.index.len()
    }

    /// Segment id (from the file name).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Mapped file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<(u128, Vec<u8>)> {
        (0..20u128).map(|i| (i * 7 + 1, vec![i as u8; 50 + i as usize])).collect()
    }

    #[test]
    fn create_open_get_roundtrip() {
        let dir = tmp_dir("rt");
        let records = sample_records();
        let refs: Vec<(u128, &[u8])> = records.iter().map(|(f, p)| (*f, p.as_slice())).collect();
        let seg = Segment::create(&dir, 3, &refs).unwrap();
        assert_eq!(seg.id(), 3);
        assert_eq!(seg.count(), records.len());
        assert!(!seg.recovered_by_scan);
        for (fp, payload) in &records {
            assert_eq!(seg.get(*fp), Some(payload.as_slice()));
        }
        assert_eq!(seg.get(999_999), None);
        assert!(!dir.join("seg-000003.seg.tmp").exists(), "tmp renamed away");
        // Reopen from disk.
        let again = Segment::open(&dir.join(segment_file_name(3))).unwrap();
        assert_eq!(again.count(), records.len());
        assert_eq!(again.iter().count(), records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_falls_back_to_scan() {
        let dir = tmp_dir("scan");
        let records = sample_records();
        let refs: Vec<(u128, &[u8])> = records.iter().map(|(f, p)| (*f, p.as_slice())).collect();
        let seg = Segment::create(&dir, 1, &refs).unwrap();
        let path = seg.path().to_path_buf();
        drop(seg);
        // Flip a byte in the index block (after index_offset).
        let mut bytes = std::fs::read(&path).unwrap();
        let index_offset = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
        bytes[index_offset + 5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(seg.recovered_by_scan, "must detect the bad index crc");
        assert_eq!(seg.count(), records.len(), "scan recovers every record");
        for (fp, payload) in &records {
            assert_eq!(seg.get(*fp), Some(payload.as_slice()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_reads_as_absent() {
        let dir = tmp_dir("heal");
        let records = sample_records();
        let refs: Vec<(u128, &[u8])> = records.iter().map(|(f, p)| (*f, p.as_slice())).collect();
        let seg = Segment::create(&dir, 2, &refs).unwrap();
        let path = seg.path().to_path_buf();
        drop(seg);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first record's payload.
        bytes[HEADER_LEN + FRAME_HEADER + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.get(records[0].0), None, "corrupt payload must not be served");
        assert!(seg.get(records[1].0).is_some(), "other records unaffected");
        assert_eq!(seg.iter().count(), records.len() - 1, "iter skips the corrupt record");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let dir = tmp_dir("magic");
        let path = dir.join(segment_file_name(9));
        std::fs::write(&path, b"not a segment at all....").unwrap();
        assert!(Segment::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(segment_file_name(7), "seg-000007.seg");
        assert_eq!(parse_segment_id("seg-000007.seg"), Some(7));
        assert_eq!(parse_segment_id("seg-1234567.seg"), Some(1_234_567));
        assert_eq!(parse_segment_id("wal.log"), None);
        assert_eq!(parse_segment_id("seg-xyz.seg"), None);
    }

    #[test]
    fn empty_segment_is_valid() {
        let dir = tmp_dir("empty");
        let seg = Segment::create(&dir, 0, &[]).unwrap();
        assert_eq!(seg.count(), 0);
        assert_eq!(seg.get(1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
