//! On-disk record format: the encoding payload codec and CRC-32.
//!
//! One *record* persists one [`ModelEncoding`] under its fingerprint.
//! Both the WAL and segment files carry records in the same frame:
//!
//! ```text
//! [fp: u128 LE][len: u32 LE][crc: u32 LE][payload: len bytes]
//! ```
//!
//! where `crc` is CRC-32 (IEEE, poly 0xEDB88320) over the payload only —
//! the frame fields are covered by the segment index checksum and, in
//! the WAL, by the structural validity check (a corrupt `len` walks the
//! cursor out of bounds and truncates the tail).
//!
//! The payload serializes every field of [`ModelEncoding`], because warm
//! restarts must be *byte-identical*: responses are rendered through the
//! readout metadata, not just the raw matrix. All floats are stored via
//! `f64::to_bits` little-endian, so NaN payloads and signed zeros round-
//! trip bitwise.

use observatory_linalg::Matrix;
use observatory_models::{Capabilities, ModelEncoding, Readout, TokenProvenance};

/// Bytes in a record frame header (`fp` + `len` + `crc`).
pub const FRAME_HEADER: usize = 16 + 4 + 4;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — table-driven, table
// built at compile time so the hot path is branch-free per byte.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Payload codec.
// ---------------------------------------------------------------------

/// Sentinel for `Option<usize>` indices: `u64::MAX` = `None`. Token
/// indices are bounded by token counts, so the sentinel is unreachable
/// as a real value.
const NONE_IDX: u64 = u64::MAX;

const READOUT_MEAN: u8 = 0;
const READOUT_CLS: u8 = 1;
const READOUT_HEADER_MEAN: u8 = 2;
const READOUT_HEADER_BIASED: u8 = 3;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_readout(out: &mut Vec<u8>, r: Readout) {
    match r {
        Readout::MeanPool => out.push(READOUT_MEAN),
        Readout::Cls => out.push(READOUT_CLS),
        Readout::HeaderMean => out.push(READOUT_HEADER_MEAN),
        Readout::HeaderBiasedMean { header_weight } => {
            out.push(READOUT_HEADER_BIASED);
            put_f64(out, header_weight);
        }
    }
}

/// Serialize one encoding into a payload (without the record frame).
pub fn encode_payload(enc: &ModelEncoding) -> Vec<u8> {
    let rows = enc.embeddings.rows();
    let cols = enc.embeddings.cols();
    let mut out = Vec::with_capacity(32 + rows * cols * 8 + enc.provenance.len() * 9);
    put_u32(&mut out, rows as u32);
    put_u32(&mut out, cols as u32);
    for &v in enc.embeddings.as_slice() {
        put_f64(&mut out, v);
    }
    put_u32(&mut out, enc.provenance.len() as u32);
    for p in &enc.provenance {
        put_u32(&mut out, p.row);
        put_u32(&mut out, p.col);
        out.push(p.special as u8);
    }
    put_u64(&mut out, enc.table_cls.map_or(NONE_IDX, |i| i as u64));
    put_u32(&mut out, enc.column_cls.len() as u32);
    for c in &enc.column_cls {
        put_u64(&mut out, c.map_or(NONE_IDX, |i| i as u64));
    }
    put_u64(&mut out, enc.rows_encoded as u64);
    put_u64(&mut out, enc.cols_encoded as u64);
    put_readout(&mut out, enc.column_readout);
    put_readout(&mut out, enc.table_readout);
    let caps = &enc.capabilities;
    out.push(
        (caps.table as u8)
            | (caps.column as u8) << 1
            | (caps.row as u8) << 2
            | (caps.cell as u8) << 3
            | (caps.entity as u8) << 4,
    );
    out
}

/// Bounds-checked little-endian reader over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn opt_idx(&mut self) -> Option<Option<usize>> {
        let v = self.u64()?;
        Some(if v == NONE_IDX { None } else { Some(usize::try_from(v).ok()?) })
    }

    fn readout(&mut self) -> Option<Readout> {
        Some(match self.u8()? {
            READOUT_MEAN => Readout::MeanPool,
            READOUT_CLS => Readout::Cls,
            READOUT_HEADER_MEAN => Readout::HeaderMean,
            READOUT_HEADER_BIASED => Readout::HeaderBiasedMean { header_weight: self.f64()? },
            _ => return None,
        })
    }
}

/// Deserialize a payload back into an encoding. `None` on any structural
/// problem (short buffer, bad tag, trailing garbage) — the caller treats
/// that as a miss and re-encodes.
pub fn decode_payload(payload: &[u8]) -> Option<ModelEncoding> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let rows = c.u32()? as usize;
    let cols = c.u32()? as usize;
    let n = rows.checked_mul(cols)?;
    // Refuse to allocate more than the buffer could possibly hold.
    if n.checked_mul(8)? > payload.len() {
        return None;
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(c.f64()?);
    }
    let embeddings = Matrix::from_vec(rows, cols, data);
    let n_prov = c.u32()? as usize;
    if n_prov.checked_mul(9)? > payload.len() {
        return None;
    }
    let mut provenance = Vec::with_capacity(n_prov);
    for _ in 0..n_prov {
        let row = c.u32()?;
        let col = c.u32()?;
        let special = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        provenance.push(TokenProvenance { row, col, special });
    }
    let table_cls = c.opt_idx()?;
    let n_cols_cls = c.u32()? as usize;
    if n_cols_cls.checked_mul(8)? > payload.len() {
        return None;
    }
    let mut column_cls = Vec::with_capacity(n_cols_cls);
    for _ in 0..n_cols_cls {
        column_cls.push(c.opt_idx()?);
    }
    let rows_encoded = usize::try_from(c.u64()?).ok()?;
    let cols_encoded = usize::try_from(c.u64()?).ok()?;
    let column_readout = c.readout()?;
    let table_readout = c.readout()?;
    let caps = c.u8()?;
    if caps & !0x1F != 0 || c.pos != payload.len() {
        return None;
    }
    Some(ModelEncoding {
        embeddings,
        provenance,
        table_cls,
        column_cls,
        rows_encoded,
        cols_encoded,
        column_readout,
        table_readout,
        capabilities: Capabilities {
            table: caps & 1 != 0,
            column: caps & 2 != 0,
            row: caps & 4 != 0,
            cell: caps & 8 != 0,
            entity: caps & 16 != 0,
        },
    })
}

/// Append one framed record (`fp`, `len`, `crc`, payload) to `out`.
pub fn frame_record(out: &mut Vec<u8>, fp: u128, payload: &[u8]) {
    out.extend_from_slice(&fp.to_le_bytes());
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Parse the record frame starting at `buf[pos..]`. Returns
/// `(fp, payload, next_pos)` with the payload CRC **verified**, or `None`
/// when the frame is incomplete or corrupt (torn tail).
pub fn parse_record(buf: &[u8], pos: usize) -> Option<(u128, &[u8], usize)> {
    let header = buf.get(pos..pos + FRAME_HEADER)?;
    let fp = u128::from_le_bytes(header[..16].try_into().ok()?);
    let len = u32::from_le_bytes(header[16..20].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(header[20..24].try_into().ok()?);
    let start = pos + FRAME_HEADER;
    let payload = buf.get(start..start.checked_add(len)?)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((fp, payload, start + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelEncoding {
        ModelEncoding {
            embeddings: Matrix::from_rows(&[
                vec![1.5, -0.0, f64::NAN],
                vec![f64::INFINITY, f64::NEG_INFINITY, 2.0e-308],
            ]),
            provenance: vec![
                TokenProvenance { row: 0, col: 0, special: true },
                TokenProvenance { row: 1, col: 2, special: false },
            ],
            table_cls: Some(0),
            column_cls: vec![None, Some(1), None],
            rows_encoded: 1,
            cols_encoded: 3,
            column_readout: Readout::HeaderBiasedMean { header_weight: 0.7 },
            table_readout: Readout::Cls,
            capabilities: Capabilities::all(),
        }
    }

    fn bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn payload_roundtrip_is_bitwise() {
        let enc = sample();
        let payload = encode_payload(&enc);
        let back = decode_payload(&payload).expect("decodes");
        // PartialEq on f64 fails NaN == NaN; compare raw bits instead.
        assert_eq!(bits(&enc.embeddings), bits(&back.embeddings));
        assert_eq!(enc.provenance, back.provenance);
        assert_eq!(enc.table_cls, back.table_cls);
        assert_eq!(enc.column_cls, back.column_cls);
        assert_eq!(enc.rows_encoded, back.rows_encoded);
        assert_eq!(enc.cols_encoded, back.cols_encoded);
        assert_eq!(enc.column_readout, back.column_readout);
        assert_eq!(enc.table_readout, back.table_readout);
        assert_eq!(enc.capabilities, back.capabilities);
    }

    #[test]
    fn frame_roundtrip_and_crc_rejects_flip() {
        let payload = encode_payload(&sample());
        let mut buf = Vec::new();
        frame_record(&mut buf, 0xDEAD_BEEF, &payload);
        let (fp, body, next) = parse_record(&buf, 0).expect("parses");
        assert_eq!(fp, 0xDEAD_BEEF);
        assert_eq!(body, &payload[..]);
        assert_eq!(next, buf.len());
        // Flip one payload byte: the CRC must catch it.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(parse_record(&bad, 0).is_none(), "corrupt payload must not parse");
        // Truncated frame (torn tail) must not parse either.
        assert!(parse_record(&buf[..buf.len() - 1], 0).is_none());
        assert!(parse_record(&buf[..FRAME_HEADER - 1], 0).is_none());
    }

    #[test]
    fn decode_rejects_structural_garbage() {
        assert!(decode_payload(&[]).is_none());
        assert!(decode_payload(&[0xFF; 7]).is_none());
        // Absurd row count: the dims-vs-length guard must refuse before
        // allocating.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        put_u32(&mut huge, u32::MAX);
        assert!(decode_payload(&huge).is_none());
        // Valid payload with trailing garbage is rejected (exact-length).
        let mut tail = encode_payload(&sample());
        tail.push(0);
        assert!(decode_payload(&tail).is_none());
    }
}
