//! Persistent tier-2 embedding store (the mmap adapter).
//!
//! Observatory's runtime keeps a 16-shard in-memory LRU of encodings
//! (tier 1); this crate adds the durable tier underneath it, behind the
//! [`EmbeddingStore`] port the runtime defines — hexagonal layering: the
//! engine knows only the trait, this crate owns files, mmap, and fsync.
//!
//! The design is a deliberately small LSM:
//!
//! - **WAL** ([`wal`]): every write is one framed, CRC'd append — the
//!   acknowledgement point. Survives `kill -9` once `write(2)` returns;
//!   `flush` (= fsync) upgrades that to machine-crash durability.
//! - **Memtable**: the WAL's records mirrored in memory for O(1) reads.
//! - **Segments** ([`segment`]): immutable, memory-mapped files produced
//!   by rotating the memtable in the background; fixed header,
//!   fingerprint index block, per-record CRC, atomic tmp → rename
//!   creation.
//! - **Compaction** ([`store`]): newest-wins merge of all segments into
//!   one when their count crosses a threshold, verified in parallel on
//!   the worker pool.
//! - **Recovery**: replay `wal-frozen.log` then `wal.log`, truncate torn
//!   tails, quarantine unreadable segments, rebuild corrupt segment
//!   indices by scanning the inline record frames.
//!
//! Everything is content-addressed by the runtime's 128-bit table
//! fingerprint, so "same model, same table bytes" is the identity — a
//! warm restart serves bit-identical embeddings without re-encoding.

pub mod format;
pub mod mmap;
pub mod segment;
pub mod store;
pub mod wal;

pub use observatory_runtime::{EmbeddingStore, StoreTierStats};
pub use store::{open_and_attach, MmapStore, StoreConfig};
