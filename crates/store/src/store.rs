//! The mmap store adapter: LSM-lite over a memtable, a WAL, and
//! immutable segments, with a background compactor thread.
//!
//! ## Write path
//!
//! `save` appends the encoded record to the WAL (one `write(2)` — the
//! ack point) and inserts the payload into the in-memory memtable. When
//! the WAL crosses the rotation threshold, the memtable is *frozen*: the
//! WAL is fsynced and renamed to `wal-frozen.log`, a fresh `wal.log`
//! opens, and the frozen records are handed to the compactor thread,
//! which writes them as an immutable segment (tmp → fsync → rename →
//! dir fsync) and only then deletes `wal-frozen.log`. At no point is a
//! record's only copy in volatile memory.
//!
//! ## Read path
//!
//! memtable → frozen memtable → segments newest-first. Segment payloads
//! are CRC-verified before decode; any failure reads as a miss, the
//! engine re-encodes, and the fresh write-through replaces the bad
//! record — corruption is self-healing.
//!
//! ## Recovery
//!
//! On open: sweep `*.tmp`/`wal.new` leftovers, open every segment
//! (falling back to a sequential scan when an index block is corrupt),
//! replay `wal-frozen.log` then `wal.log` (newest wins, torn tails
//! truncated), and — when anything was torn or a frozen WAL survived a
//! crash — rewrite a single compacted `wal.log` (via `wal.new` +
//! atomic rename) before deleting the frozen one. A crash at any point
//! of recovery itself leaves a state recovery handles again.
//!
//! ## Compaction
//!
//! When the segment count reaches the threshold, the compactor merges
//! all current segments newest-wins into one (per-record CRCs verified
//! in parallel on the worker pool) and atomically swaps the list.

use crate::format::{decode_payload, encode_payload};
use crate::segment::{parse_segment_id, Segment};
use crate::wal::{self, Wal};
use observatory_models::ModelEncoding;
use observatory_obs as obs;
use observatory_runtime::{run_indexed, EmbeddingStore, Fingerprint, StoreTierStats};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Active WAL file name.
const WAL: &str = "wal.log";
/// A WAL frozen at rotation, deleted once its segment is durable.
const WAL_FROZEN: &str = "wal-frozen.log";
/// Scratch name for the recovery rewrite (atomic-renamed over [`WAL`]).
const WAL_NEW: &str = "wal.new";

/// Tuning knobs for [`MmapStore`]. [`StoreConfig::new`] reads the
/// `OBSERVATORY_STORE_ROTATE_BYTES` and `OBSERVATORY_STORE_COMPACT_SEGMENTS`
/// environment overrides so tests and benches can force tiny thresholds.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the WAL and segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate the memtable into a segment when the WAL reaches this size.
    pub rotate_bytes: u64,
    /// Merge all segments into one when their count reaches this.
    pub compact_threshold: usize,
    /// Worker count for parallel verification during compaction.
    pub jobs: usize,
}

impl StoreConfig {
    /// Defaults for `dir`: 64 MiB rotation, compact at 4 segments,
    /// workers from the environment.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        let env_u64 = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        StoreConfig {
            dir: dir.into(),
            rotate_bytes: env_u64("OBSERVATORY_STORE_ROTATE_BYTES").unwrap_or(64 << 20),
            compact_threshold: env_u64("OBSERVATORY_STORE_COMPACT_SEGMENTS")
                .map_or(4, |v| v.max(2) as usize),
            jobs: observatory_runtime::resolve_jobs(None),
        }
    }
}

/// Lock-free statistic counters (relaxed: counts, not ordering).
#[derive(Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    read_errors: AtomicU64,
    rotations: AtomicU64,
    compactions: AtomicU64,
    recovery_dropped: AtomicU64,
    generation: AtomicU64,
}

/// Mutable store state behind one mutex: the lookup structures and the
/// WAL writer (a WAL append per save is the serialization point that
/// keeps log order identical to memtable order).
struct Inner {
    memtable: HashMap<u128, Arc<Vec<u8>>>,
    frozen: Option<HashMap<u128, Arc<Vec<u8>>>>,
    wal: Wal,
    /// Oldest → newest. Lookups scan in reverse.
    segments: Vec<Arc<Segment>>,
    next_seg_id: u64,
}

struct Shared {
    config: StoreConfig,
    inner: Mutex<Inner>,
    stats: Counters,
}

/// Background work item: write frozen-memtable `records` as segment
/// `seg_id`, install it, delete the frozen WAL. Compaction runs inline
/// on the same worker afterwards, so jobs stay strictly ordered.
struct Job {
    records: Vec<(u128, Arc<Vec<u8>>)>,
    seg_id: u64,
}

/// The memory-mapped tier-2 store. See the module docs for the design.
pub struct MmapStore {
    shared: Arc<Shared>,
    /// `None` after the worker has been stopped (Drop).
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl MmapStore {
    /// Open (or create) the store at `config.dir`, running crash
    /// recovery, and start the background compactor.
    pub fn open(config: StoreConfig) -> io::Result<MmapStore> {
        fs::create_dir_all(&config.dir)?;
        let mut span = obs::span(obs::Level::Info, "store", "open")
            .with("dir", config.dir.display().to_string());
        let stats = Counters::default();

        // Sweep scratch files a crash may have left behind. A torn
        // `.tmp` segment was never renamed, so nothing references it.
        for entry in fs::read_dir(&config.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".tmp") || name == WAL_NEW {
                let _ = fs::remove_file(&path);
            }
        }

        // Open every segment, oldest first. A segment that cannot be
        // opened at all is quarantined (renamed aside) rather than
        // silently retried forever.
        let mut seg_paths: Vec<(u64, PathBuf)> = fs::read_dir(&config.dir)?
            .filter_map(|e| {
                let path = e.ok()?.path();
                let id = parse_segment_id(path.file_name()?.to_str()?)?;
                Some((id, path))
            })
            .collect();
        seg_paths.sort();
        let mut segments = Vec::with_capacity(seg_paths.len());
        let mut next_seg_id = 0;
        for (id, path) in seg_paths {
            next_seg_id = next_seg_id.max(id + 1);
            match Segment::open(&path) {
                Ok(seg) => {
                    if seg.recovered_by_scan {
                        obs::event(obs::Level::Error, "store", "segment_index_rebuilt");
                    }
                    segments.push(Arc::new(seg));
                }
                Err(_) => {
                    stats.recovery_dropped.fetch_add(1, Ordering::Relaxed);
                    obs::event(obs::Level::Error, "store", "segment_quarantined");
                    // Quarantine is an anomaly: snapshot the flight ring
                    // so the events leading up to the corruption survive.
                    obs::flight::record(obs::flight::FlightKind::Quarantine, "store", [0; 5], id);
                    obs::flight::dump("quarantine");
                    let _ = fs::rename(&path, path.with_extension("seg.corrupt"));
                }
            }
        }

        // Replay the WALs: frozen first (older), then active — a later
        // record for the same fingerprint wins.
        let frozen_path = config.dir.join(WAL_FROZEN);
        let wal_path = config.dir.join(WAL);
        let had_frozen = frozen_path.exists();
        let frozen_replay = wal::replay(&frozen_path)?;
        let active_replay = wal::replay(&wal_path)?;
        let torn = frozen_replay.dropped_bytes + active_replay.dropped_bytes;
        if torn > 0 {
            stats.recovery_dropped.fetch_add(1, Ordering::Relaxed);
            obs::event(obs::Level::Error, "store", "wal_tail_truncated");
        }
        let mut memtable: HashMap<u128, Arc<Vec<u8>>> = HashMap::new();
        for (fp, payload) in frozen_replay.records.into_iter().chain(active_replay.records) {
            memtable.insert(fp, Arc::new(payload));
        }

        // When a frozen WAL survived (crash mid-rotation) or a tail was
        // torn, rewrite one compacted active WAL: everything live, no
        // garbage, atomically swapped in before the frozen log goes away.
        if had_frozen || torn > 0 {
            let new_path = config.dir.join(WAL_NEW);
            {
                let mut new_wal = Wal::open(&new_path)?;
                let mut fps: Vec<&u128> = memtable.keys().collect();
                fps.sort();
                for fp in fps {
                    new_wal.append(*fp, &memtable[fp])?;
                }
                new_wal.sync()?;
            }
            fs::rename(&new_path, &wal_path)?;
            fs::File::open(&config.dir)?.sync_all()?;
            let _ = fs::remove_file(&frozen_path);
        }
        let wal = Wal::open(&wal_path)?;

        // The generation seeds from the segment id space so it stays
        // monotone across restarts (every rotation/compaction claims an
        // id and bumps it).
        stats.generation.store(next_seg_id, Ordering::Relaxed);
        span.record("segments", segments.len());
        span.record("recovered_records", memtable.len());

        let shared = Arc::new(Shared {
            config,
            inner: Mutex::new(Inner { memtable, frozen: None, wal, segments, next_seg_id }),
            stats,
        });
        let (tx, rx) = channel::<Job>();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("store-compactor".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    worker_shared.finish_rotation(job.records, job.seg_id);
                }
            })
            .map_err(io::Error::other)?;
        Ok(MmapStore { shared, tx: Mutex::new(Some(tx)), worker: Mutex::new(Some(worker)) })
    }

    /// Stop the background worker after it drains queued jobs. Called by
    /// Drop; idempotent.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        drop(tx); // closes the channel; the worker drains and exits
        let worker = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = worker {
            let _ = handle.join();
        }
    }

    /// Block until no rotation is mid-flight (all acked records are in
    /// the active WAL, the frozen memtable, or a durable segment —
    /// frozen implies its WAL file still exists). Test/bench helper.
    pub fn quiesce(&self) {
        loop {
            {
                let inner = self.shared.lock_inner();
                if inner.frozen.is_none() {
                    return;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Force the current memtable into a durable segment regardless of
    /// the rotation threshold, and wait for it (and any compaction it
    /// triggers) to complete. Saves racing with the checkpoint may leave
    /// a fresh (small) memtable behind; records present when this was
    /// called are on disk in segment form when it returns.
    pub fn checkpoint(&self) {
        enum Step {
            Wait,
            Done,
            Failed,
            Submit(Job),
        }
        loop {
            let step = {
                let mut inner = self.shared.lock_inner();
                if inner.frozen.is_some() {
                    Step::Wait // a rotation is in flight; wait it out first
                } else if inner.memtable.is_empty() {
                    Step::Done
                } else {
                    match self.shared.freeze(&mut inner) {
                        Some(job) => Step::Submit(job),
                        None => Step::Failed, // disk trouble; stay degraded
                    }
                }
            };
            match step {
                Step::Done | Step::Failed => return,
                Step::Wait => self.quiesce(),
                Step::Submit(job) => {
                    self.submit(Some(job));
                    self.quiesce();
                }
            }
        }
    }

    fn submit(&self, job: Option<Job>) {
        if let Some(job) = job {
            if let Some(tx) = self.tx.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                let _ = tx.send(job);
            }
        }
    }
}

impl Drop for MmapStore {
    fn drop(&mut self) {
        self.shutdown();
        // Best-effort final fsync so a clean exit is machine-durable.
        let inner = self.shared.lock_inner();
        let _ = inner.wal.sync();
    }
}

impl Shared {
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Recover from poisoning: all invariants are re-checked by
        // recovery anyway, and a wedged store would take serving down.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Freeze the memtable (caller holds the lock and has checked
    /// `frozen.is_none()`): fsync + rename the WAL, open a fresh one,
    /// and produce the rotation job for the compactor.
    fn freeze(&self, inner: &mut Inner) -> Option<Job> {
        let rotated = inner.wal.sync().and_then(|()| {
            fs::rename(inner.wal.path(), self.config.dir.join(WAL_FROZEN))?;
            Wal::open(&self.config.dir.join(WAL))
        });
        match rotated {
            Ok(fresh) => {
                inner.wal = fresh;
                let frozen = std::mem::take(&mut inner.memtable);
                let records: Vec<(u128, Arc<Vec<u8>>)> =
                    frozen.iter().map(|(fp, p)| (*fp, Arc::clone(p))).collect();
                inner.frozen = Some(frozen);
                let seg_id = inner.next_seg_id;
                inner.next_seg_id += 1;
                Some(Job { records, seg_id })
            }
            Err(_) => {
                obs::event(obs::Level::Error, "store", "wal_rotate_failed");
                None
            }
        }
    }

    /// Compactor half of a rotation: make the frozen memtable durable as
    /// a segment, then retire the frozen WAL.
    fn finish_rotation(&self, mut records: Vec<(u128, Arc<Vec<u8>>)>, seg_id: u64) {
        let mut span =
            obs::span(obs::Level::Debug, "store", "rotate").with("records", records.len());
        records.sort_by_key(|(fp, _)| *fp);
        let refs: Vec<(u128, &[u8])> = records.iter().map(|(fp, p)| (*fp, p.as_slice())).collect();
        match Segment::create(&self.config.dir, seg_id, &refs) {
            Ok(seg) => {
                let compact = {
                    let mut inner = self.lock_inner();
                    inner.segments.push(Arc::new(seg));
                    inner.frozen = None;
                    let _ = fs::remove_file(self.config.dir.join(WAL_FROZEN));
                    self.stats.rotations.fetch_add(1, Ordering::Relaxed);
                    self.stats.generation.fetch_add(1, Ordering::Relaxed);
                    if inner.segments.len() >= self.config.compact_threshold {
                        let ids: Vec<u64> = inner.segments.iter().map(|s| s.id()).collect();
                        let id = inner.next_seg_id;
                        inner.next_seg_id += 1;
                        Some((ids, id))
                    } else {
                        None
                    }
                };
                span.record("segment", seg_id);
                if let Some((ids, id)) = compact {
                    // Run inline on this worker: jobs stay ordered.
                    self.run_compaction(&ids, id);
                }
            }
            Err(_) => {
                // Leave `frozen` and the frozen WAL in place: records
                // stay readable in memory now and via WAL replay after a
                // restart. Rotation is blocked until an operator frees
                // disk space — degraded, not lossy.
                obs::event(obs::Level::Error, "store", "rotation_failed");
            }
        }
    }

    /// Merge segments `ids` (a prefix of the list) newest-wins into one
    /// segment `seg_id` and swap it in.
    fn run_compaction(&self, ids: &[u64], seg_id: u64) {
        let sources: Vec<Arc<Segment>> = {
            let inner = self.lock_inner();
            inner.segments.iter().filter(|s| ids.contains(&s.id())).cloned().collect()
        };
        if sources.is_empty() {
            return;
        }
        let mut span =
            obs::span(obs::Level::Info, "store", "compact").with("segments", sources.len());
        // Parallel CRC verification: each segment's records are read
        // (and checksummed) on the worker pool.
        let verified: Vec<Vec<(u128, &[u8])>> =
            run_indexed(self.config.jobs, sources.len(), |i| sources[i].iter().collect());
        // Newest wins: later segments overwrite earlier fingerprints.
        let mut merged: HashMap<u128, &[u8]> = HashMap::new();
        for records in &verified {
            for &(fp, payload) in records {
                merged.insert(fp, payload);
            }
        }
        let mut records: Vec<(u128, &[u8])> = merged.into_iter().collect();
        records.sort_by_key(|(fp, _)| *fp);
        span.record("records", records.len());
        match Segment::create(&self.config.dir, seg_id, &records) {
            Ok(seg) => {
                let removed: Vec<PathBuf> = {
                    let mut inner = self.lock_inner();
                    let removed = inner
                        .segments
                        .iter()
                        .filter(|s| ids.contains(&s.id()))
                        .map(|s| s.path().to_path_buf())
                        .collect();
                    // The merged segment replaces the prefix it covers;
                    // segments rotated in meanwhile stay behind it (they
                    // are newer, and lookups scan from the back).
                    inner.segments.retain(|s| !ids.contains(&s.id()));
                    inner.segments.insert(0, Arc::new(seg));
                    self.stats.compactions.fetch_add(1, Ordering::Relaxed);
                    self.stats.generation.fetch_add(1, Ordering::Relaxed);
                    removed
                };
                for path in removed {
                    let _ = fs::remove_file(path);
                }
            }
            Err(_) => obs::event(obs::Level::Error, "store", "compaction_failed"),
        }
    }
}

impl EmbeddingStore for MmapStore {
    fn load(&self, fp: Fingerprint) -> Option<Arc<ModelEncoding>> {
        // Resolve the payload under the lock, decode outside it.
        enum Found {
            Bytes(Arc<Vec<u8>>),
            Seg(Arc<Segment>),
        }
        let found = {
            let inner = self.shared.lock_inner();
            if let Some(p) = inner.memtable.get(&fp.0) {
                Some(Found::Bytes(Arc::clone(p)))
            } else if let Some(p) = inner.frozen.as_ref().and_then(|f| f.get(&fp.0)) {
                Some(Found::Bytes(Arc::clone(p)))
            } else {
                inner
                    .segments
                    .iter()
                    .rev()
                    .find(|s| s.contains(fp.0))
                    .map(|s| Found::Seg(Arc::clone(s)))
            }
        }?;
        let decoded = match &found {
            Found::Bytes(p) => decode_payload(p),
            // `get` re-verifies the CRC against the mapped bytes.
            Found::Seg(seg) => seg.get(fp.0).and_then(decode_payload),
        };
        match decoded {
            Some(enc) => {
                self.shared.stats.reads.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(enc))
            }
            None => {
                // Indexed but unreadable: count it and report a miss so
                // the engine re-encodes and overwrites (self-healing).
                self.shared.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                obs::event(obs::Level::Error, "store", "read_error");
                None
            }
        }
    }

    fn save(&self, fp: Fingerprint, enc: &ModelEncoding) {
        let payload = encode_payload(enc);
        let rotate = {
            let mut inner = self.shared.lock_inner();
            if let Err(e) = inner.wal.append(fp.0, &payload) {
                // Keep serving from memory; durability for this record is
                // lost but nothing else is. The event is the operator's
                // signal (disk full is the realistic cause).
                obs::event(obs::Level::Error, "store", "wal_append_failed");
                let _ = e;
            }
            inner.memtable.insert(fp.0, Arc::new(payload));
            self.shared.stats.writes.fetch_add(1, Ordering::Relaxed);
            if inner.wal.bytes() >= self.shared.config.rotate_bytes && inner.frozen.is_none() {
                self.shared.freeze(&mut inner)
            } else {
                None
            }
        };
        self.submit(rotate);
    }

    fn flush(&self) -> io::Result<()> {
        let inner = self.shared.lock_inner();
        inner.wal.sync()
    }

    fn tier_stats(&self) -> StoreTierStats {
        let inner = self.shared.lock_inner();
        let mut live: std::collections::HashSet<u128> = inner.memtable.keys().copied().collect();
        if let Some(frozen) = &inner.frozen {
            live.extend(frozen.keys());
        }
        for seg in &inner.segments {
            live.extend(seg.fingerprints());
        }
        let frozen_wal_bytes =
            fs::metadata(self.shared.config.dir.join(WAL_FROZEN)).map(|m| m.len()).unwrap_or(0);
        let s = &self.shared.stats;
        StoreTierStats {
            records: live.len() as u64,
            segments: inner.segments.len() as u64,
            segment_bytes: inner.segments.iter().map(|s| s.file_bytes()).sum(),
            wal_bytes: inner.wal.bytes() + frozen_wal_bytes,
            memtable_records: (inner.memtable.len() + inner.frozen.as_ref().map_or(0, HashMap::len))
                as u64,
            generation: s.generation.load(Ordering::Relaxed),
            reads: s.reads.load(Ordering::Relaxed),
            writes: s.writes.load(Ordering::Relaxed),
            read_errors: s.read_errors.load(Ordering::Relaxed),
            rotations: s.rotations.load(Ordering::Relaxed),
            compactions: s.compactions.load(Ordering::Relaxed),
            recovery_dropped: s.recovery_dropped.load(Ordering::Relaxed),
        }
    }

    fn fingerprints(&self) -> Vec<Fingerprint> {
        // Union across tiers (memtable, frozen memtable, segments): a
        // fingerprint rewritten since the last rotation appears in more
        // than one tier, so dedup before handing the list out. Sorted
        // ascending to make warm-start index builds order-deterministic
        // regardless of rotation history.
        let inner = self.shared.lock_inner();
        let mut live: std::collections::HashSet<u128> = inner.memtable.keys().copied().collect();
        if let Some(frozen) = &inner.frozen {
            live.extend(frozen.keys());
        }
        for seg in &inner.segments {
            live.extend(seg.fingerprints());
        }
        drop(inner);
        let mut out: Vec<Fingerprint> = live.into_iter().map(Fingerprint).collect();
        out.sort_unstable_by_key(|fp| fp.0);
        out
    }
}

/// Open a store at `dir` with default tuning and attach it to `engine`.
/// Returns the store handle (the engine holds its own `Arc`). Fails if
/// another store is already attached.
pub fn open_and_attach(
    dir: &Path,
    engine: &observatory_runtime::Engine,
) -> io::Result<Arc<MmapStore>> {
    let store = Arc::new(MmapStore::open(StoreConfig::new(dir))?);
    if !engine.attach_store(Arc::clone(&store) as Arc<dyn EmbeddingStore>) {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "an embedding store is already attached to the engine",
        ));
    }
    Ok(store)
}
