//! The checksummed write-ahead log.
//!
//! Every `save` appends one framed record (see [`crate::format`]) to
//! `wal.log` with a single `write(2)` before the store acknowledges. A
//! single syscall per record means the bytes are in the kernel page
//! cache when `append` returns: the record survives `kill -9` of the
//! process. [`Wal::sync`] adds machine-crash durability (fsync); the
//! serve drain path calls it through `EmbeddingStore::flush`.
//!
//! Replay walks the frames front to back and stops at the first frame
//! that is incomplete or fails its CRC — everything after a torn write
//! is unreachable garbage by construction, so truncation is the only
//! correct recovery. Duplicate fingerprints keep the *latest* record
//! (append order is write order).

use crate::format::{frame_record, parse_record};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Append-only WAL writer.
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl Wal {
    /// Open (creating if absent) `path` for appending.
    pub fn open(path: &Path) -> io::Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(Wal { file, path: path.to_path_buf(), bytes })
    }

    /// Append one record. The frame is assembled in memory and handed to
    /// the OS in one `write_all` — no user-space buffering survives this
    /// call, which is what makes ack-after-append `kill -9`-safe.
    pub fn append(&mut self, fp: u128, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(crate::format::FRAME_HEADER + payload.len());
        frame_record(&mut frame, fp, payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// fsync: make everything appended so far machine-crash durable.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Bytes appended (including any pre-existing content).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The file path this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of replaying one WAL file.
pub struct Replay {
    /// Verified records in append order (callers apply newest-wins).
    pub records: Vec<(u128, Vec<u8>)>,
    /// Bytes of torn/corrupt tail that were dropped.
    pub dropped_bytes: u64,
}

/// Replay `path`. A missing file is an empty log, not an error.
pub fn replay(path: &Path) -> io::Result<Replay> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Replay { records: Vec::new(), dropped_bytes: 0 })
        }
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut pos = 0;
    while let Some((fp, payload, next)) = parse_record(&buf, pos) {
        records.push((fp, payload.to_vec()));
        pos = next;
    }
    Ok(Replay { records, dropped_bytes: (buf.len() - pos) as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_replay_roundtrip_newest_visible() {
        let path = tmp("rt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"one").unwrap();
        wal.append(2, b"two").unwrap();
        wal.append(1, b"one-v2").unwrap();
        wal.sync().unwrap();
        let replay = replay(&path).unwrap();
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.records.len(), 3, "replay preserves append order");
        assert_eq!(replay.records[2], (1, b"one-v2".to_vec()));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(7, b"intact").unwrap();
        drop(wal);
        // Simulate a torn write: append half a frame.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 9]).unwrap();
        drop(f);
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records, vec![(7, b"intact".to_vec())]);
        assert_eq!(replay.dropped_bytes, 9);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_is_empty_log() {
        let path = tmp("missing");
        let replay = replay(&path.join("nope")).unwrap();
        assert!(replay.records.is_empty());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = tmp("reopen");
        Wal::open(&path).unwrap().append(1, b"a").unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert!(wal.bytes() > 0, "reopen sees prior bytes");
        wal.append(2, b"b").unwrap();
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
