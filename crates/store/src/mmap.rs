//! Read-only file mapping without a libc crate.
//!
//! The workspace admits no external dependencies, so on Unix `mmap(2)` /
//! `munmap(2)` are declared directly against the libc that `std` links
//! anyway (the same pattern the serve crate uses for `signal(2)`). On
//! non-Unix targets, and for empty files, the "mapping" is simply the
//! file read into an owned buffer — same API, no page-cache sharing.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only view of a whole file: mmap-backed on Unix, owned bytes
/// elsewhere.
pub enum FileMap {
    /// Owned fallback (non-Unix, or empty files — `mmap` rejects len 0).
    Owned(Vec<u8>),
    /// A live `mmap(2)` mapping, unmapped on drop.
    #[cfg(unix)]
    Mapped(imp::Mapping),
}

impl FileMap {
    /// Map `file` (its current full length) read-only.
    pub fn of(file: &File) -> io::Result<FileMap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(FileMap::Owned(Vec::new()));
        }
        #[cfg(unix)]
        {
            imp::map(file, len).map(FileMap::Mapped)
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut buf)?;
            Ok(FileMap::Owned(buf))
        }
    }
}

impl Deref for FileMap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            FileMap::Owned(v) => v,
            #[cfg(unix)]
            FileMap::Mapped(m) => m.as_slice(),
        }
    }
}

#[cfg(unix)]
pub(crate) mod imp {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        /// `mmap(2)` / `munmap(2)` from the platform libc std links anyway.
        fn mmap(
            addr: *mut std::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut std::ffi::c_void;
        fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
    }

    /// An owned mapping; `munmap` on drop.
    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only (PROT_READ) and private: sharing the
    // pointer across threads is safe, mutation is impossible through it.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn as_slice(&self) -> &[u8] {
            // Safety: ptr..ptr+len is a live PROT_READ mapping owned by
            // self; unmapped only on drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // Safety: exactly the (addr, len) pair mmap returned.
            unsafe {
                munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }

    pub(crate) fn map(file: &File, len: usize) -> io::Result<Mapping> {
        // Safety: fd is valid for the duration of the call; the kernel
        // keeps the mapping alive after the fd closes.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr: ptr as *const u8, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("obs-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = FileMap::of(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, &payload[..]);
        drop(map);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir().join(format!("obs-mmap0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let map = FileMap::of(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
