//! Property tests for the record codec: serialize → deserialize must be
//! a bitwise identity for every representable encoding — including NaN
//! and ±inf payloads (compared by bits, since NaN != NaN) and the 8-lane
//! SIMD tail sizes (dims 1..=9 around the lane width) — and framing must
//! reject any single-byte corruption and any truncation.

use observatory_linalg::Matrix;
use observatory_models::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use observatory_store::format::{
    crc32, decode_payload, encode_payload, frame_record, parse_record,
};
use proptest::prelude::*;

/// f64s spanning the full bit-pattern space: ordinary values, signed
/// zeros, subnormals, infinities, and NaNs with arbitrary payload bits.
fn any_f64_bits() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        Just(f64::NAN),
        Just(-f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0),
        Just(f64::MIN_POSITIVE / 2.0), // subnormal
        any::<u64>().prop_map(f64::from_bits),
    ]
}

fn any_opt_idx() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), (0usize..1024).prop_map(Some)]
}

fn any_readout() -> impl Strategy<Value = Readout> {
    prop_oneof![
        Just(Readout::MeanPool),
        Just(Readout::Cls),
        Just(Readout::HeaderMean),
        (0.0f64..1.0).prop_map(|header_weight| Readout::HeaderBiasedMean { header_weight }),
    ]
}

fn any_u128() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

fn any_encoding() -> impl Strategy<Value = ModelEncoding> {
    // Dims straddle the 8-lane SIMD width: 1..=9 covers a full lane plus
    // every tail remainder the kernel tests exercise.
    (1usize..6, 1usize..=9)
        .prop_flat_map(|(rows, cols)| {
            (
                Just((rows, cols)),
                proptest::collection::vec(any_f64_bits(), rows * cols),
                proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), rows),
                (any_opt_idx(), proptest::collection::vec(any_opt_idx(), 0..5)),
                (0usize..100, 0usize..100, any_readout(), any_readout()),
                (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
            )
        })
        .prop_map(|((rows, cols), data, prov, (table_cls, column_cls), meta, caps)| {
            let (rows_encoded, cols_encoded, column_readout, table_readout) = meta;
            ModelEncoding {
                embeddings: Matrix::from_vec(rows, cols, data),
                provenance: prov
                    .into_iter()
                    .map(|(row, col, special)| TokenProvenance { row, col, special })
                    .collect(),
                table_cls,
                column_cls,
                rows_encoded,
                cols_encoded,
                column_readout,
                table_readout,
                capabilities: Capabilities {
                    table: caps.0,
                    column: caps.1,
                    row: caps.2,
                    cell: caps.3,
                    entity: caps.4,
                },
            }
        })
}

fn matrix_bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Readout equality by bits (HeaderBiasedMean carries an f64 weight).
fn readout_bits(r: Readout) -> (u8, u64) {
    match r {
        Readout::MeanPool => (0, 0),
        Readout::Cls => (1, 0),
        Readout::HeaderMean => (2, 0),
        Readout::HeaderBiasedMean { header_weight } => (3, header_weight.to_bits()),
    }
}

proptest! {
    #[test]
    fn payload_roundtrip_is_bitwise_identity(enc in any_encoding()) {
        let payload = encode_payload(&enc);
        let back = decode_payload(&payload).expect("well-formed payload decodes");
        prop_assert_eq!(matrix_bits(&enc.embeddings), matrix_bits(&back.embeddings));
        prop_assert_eq!(enc.embeddings.rows(), back.embeddings.rows());
        prop_assert_eq!(enc.embeddings.cols(), back.embeddings.cols());
        prop_assert_eq!(enc.provenance, back.provenance);
        prop_assert_eq!(enc.table_cls, back.table_cls);
        prop_assert_eq!(enc.column_cls, back.column_cls);
        prop_assert_eq!(enc.rows_encoded, back.rows_encoded);
        prop_assert_eq!(enc.cols_encoded, back.cols_encoded);
        prop_assert_eq!(readout_bits(enc.column_readout), readout_bits(back.column_readout));
        prop_assert_eq!(readout_bits(enc.table_readout), readout_bits(back.table_readout));
        prop_assert_eq!(enc.capabilities, back.capabilities);
        // Re-encoding the decoded value reproduces the exact bytes: the
        // codec is canonical, so record CRCs stay stable across rewrite
        // cycles (WAL replay → rotation → compaction).
        prop_assert_eq!(payload, encode_payload(&back));
    }

    #[test]
    fn frame_roundtrip_any_fingerprint(fp in any_u128(), enc in any_encoding()) {
        let payload = encode_payload(&enc);
        let mut buf = Vec::new();
        frame_record(&mut buf, fp, &payload);
        let (got_fp, got_payload, next) = parse_record(&buf, 0).expect("frame parses");
        prop_assert_eq!(got_fp, fp);
        prop_assert_eq!(got_payload, &payload[..]);
        prop_assert_eq!(next, buf.len());
    }

    #[test]
    fn single_byte_payload_corruption_is_detected(
        enc in any_encoding(),
        pick in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let payload = encode_payload(&enc);
        let mut buf = Vec::new();
        frame_record(&mut buf, 42, &payload);
        let header = 16 + 4 + 4;
        // Corrupt one payload byte (the header's fp/len fields are
        // covered by structural checks, not the payload CRC).
        let idx = header + (pick as usize) % payload.len();
        buf[idx] ^= flip;
        prop_assert!(
            parse_record(&buf, 0).is_none(),
            "flipped byte {} must fail the CRC", idx
        );
    }

    #[test]
    fn truncation_is_detected(enc in any_encoding(), cut in any::<u64>()) {
        let payload = encode_payload(&enc);
        let mut buf = Vec::new();
        frame_record(&mut buf, 7, &payload);
        let keep = (cut as usize) % buf.len(); // strictly shorter
        prop_assert!(parse_record(&buf[..keep], 0).is_none());
        // Truncated *payloads* must fail decoding too, not just framing.
        let keep_payload = (cut as usize) % payload.len();
        prop_assert!(decode_payload(&payload[..keep_payload]).is_none());
    }

    #[test]
    fn crc32_distinguishes_single_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 1..200),
        pick in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut other = data.clone();
        let idx = (pick as usize) % other.len();
        other[idx] ^= flip;
        prop_assert_ne!(crc32(&data), crc32(&other));
    }
}
