//! In-process lifecycle tests for `MmapStore`: warm reopen, rotation,
//! compaction, overwrite semantics, and WAL-tail recovery — everything
//! short of killing a real process (that lives in the workspace-level
//! `tests/store_recovery.rs` against the installed binary).

use observatory_linalg::Matrix;
use observatory_models::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use observatory_runtime::{EmbeddingStore, Fingerprint};
use observatory_store::{MmapStore, StoreConfig};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obs-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic encoding whose every field depends on `tag`.
fn encoding(tag: u64) -> ModelEncoding {
    let rows = 2 + (tag as usize % 3);
    let dim = 4;
    let data: Vec<f64> = (0..rows * dim).map(|i| (tag as f64) * 1000.0 + i as f64 * 0.5).collect();
    ModelEncoding {
        embeddings: Matrix::from_vec(rows, dim, data),
        provenance: (0..rows)
            .map(|i| TokenProvenance { row: i as u32, col: (tag % 7) as u32, special: i == 0 })
            .collect(),
        table_cls: if tag % 2 == 0 { Some(0) } else { None },
        column_cls: vec![None, Some(1)],
        rows_encoded: rows,
        cols_encoded: 2,
        column_readout: Readout::MeanPool,
        table_readout: Readout::HeaderBiasedMean { header_weight: 0.25 + tag as f64 * 0.01 },
        capabilities: Capabilities::all(),
    }
}

fn config(dir: &PathBuf) -> StoreConfig {
    let mut c = StoreConfig::new(dir.clone());
    // Deterministic tests: ignore any env overrides.
    c.rotate_bytes = 64 << 20;
    c.compact_threshold = 4;
    c
}

fn assert_bits_equal(a: &ModelEncoding, b: &ModelEncoding) {
    let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.embeddings), bits(&b.embeddings));
    assert_eq!(a.provenance, b.provenance);
    assert_eq!(a.table_cls, b.table_cls);
    assert_eq!(a.rows_encoded, b.rows_encoded);
}

#[test]
fn save_load_and_warm_reopen() {
    let dir = tmp_dir("reopen");
    {
        let store = MmapStore::open(config(&dir)).unwrap();
        for tag in 0..32u64 {
            store.save(Fingerprint(tag as u128 + 1), &encoding(tag));
        }
        for tag in 0..32u64 {
            let got = store.load(Fingerprint(tag as u128 + 1)).expect("hot load");
            assert_bits_equal(&got, &encoding(tag));
        }
        assert_eq!(store.load(Fingerprint(999)), None);
        let stats = store.tier_stats();
        assert_eq!(stats.writes, 32);
        assert_eq!(stats.records, 32);
        store.flush().unwrap();
    } // drop: clean shutdown
      // A brand-new process-equivalent: everything must come back from
      // disk, bit-identical.
    let store = MmapStore::open(config(&dir)).unwrap();
    let stats = store.tier_stats();
    assert_eq!(stats.records, 32, "all records recovered");
    for tag in 0..32u64 {
        let got = store.load(Fingerprint(tag as u128 + 1)).expect("warm load");
        assert_bits_equal(&got, &encoding(tag));
    }
    assert_eq!(store.tier_stats().read_errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overwrite_newest_wins_across_reopen() {
    let dir = tmp_dir("overwrite");
    {
        let store = MmapStore::open(config(&dir)).unwrap();
        store.save(Fingerprint(5), &encoding(1));
        store.save(Fingerprint(5), &encoding(2)); // replaces
        assert_bits_equal(&store.load(Fingerprint(5)).unwrap(), &encoding(2));
    }
    let store = MmapStore::open(config(&dir)).unwrap();
    assert_bits_equal(&store.load(Fingerprint(5)).unwrap(), &encoding(2));
    assert_eq!(store.tier_stats().records, 1, "one live record after overwrite");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotation_moves_memtable_into_segments() {
    let dir = tmp_dir("rotate");
    let mut cfg = config(&dir);
    cfg.rotate_bytes = 4096; // force frequent rotations
    cfg.compact_threshold = 1000; // but no compaction
    let store = MmapStore::open(cfg).unwrap();
    for tag in 0..100u64 {
        store.save(Fingerprint(tag as u128 + 1), &encoding(tag));
    }
    store.quiesce();
    let stats = store.tier_stats();
    assert!(stats.rotations >= 1, "tiny threshold must rotate: {stats:?}");
    assert!(stats.segments >= 1);
    assert_eq!(stats.records, 100, "no records lost across rotation");
    assert!(!dir.join("wal-frozen.log").exists(), "frozen WAL retired after rotation");
    // Every record still loads, wherever it lives now.
    for tag in 0..100u64 {
        assert_bits_equal(&store.load(Fingerprint(tag as u128 + 1)).unwrap(), &encoding(tag));
    }
    drop(store);
    // And survives a reopen.
    let store = MmapStore::open(config(&dir)).unwrap();
    assert_eq!(store.tier_stats().records, 100);
    for tag in (0..100u64).rev() {
        assert_bits_equal(&store.load(Fingerprint(tag as u128 + 1)).unwrap(), &encoding(tag));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_merges_segments_newest_wins() {
    let dir = tmp_dir("compact");
    let mut cfg = config(&dir);
    cfg.rotate_bytes = 2048;
    cfg.compact_threshold = 2;
    cfg.jobs = 2;
    let store = MmapStore::open(cfg).unwrap();
    // Two generations of the same keys, each checkpointed into its own
    // segment: compaction must merge them keeping the newer.
    for round in 0..2u64 {
        for tag in 0..60u64 {
            store.save(Fingerprint(tag as u128 + 1), &encoding(tag + round * 100));
        }
        store.checkpoint();
    }
    let stats = store.tier_stats();
    assert!(stats.compactions >= 1, "threshold 2 must compact: {stats:?}");
    assert_eq!(stats.records, 60, "compaction deduplicates by fingerprint");
    assert!(stats.generation > 0);
    for tag in 0..60u64 {
        assert_bits_equal(&store.load(Fingerprint(tag as u128 + 1)).unwrap(), &encoding(tag + 100));
    }
    drop(store);
    let store = MmapStore::open(config(&dir)).unwrap();
    for tag in 0..60u64 {
        assert_bits_equal(&store.load(Fingerprint(tag as u128 + 1)).unwrap(), &encoding(tag + 100));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_loses_only_the_torn_record() {
    let dir = tmp_dir("torn");
    {
        let store = MmapStore::open(config(&dir)).unwrap();
        for tag in 0..10u64 {
            store.save(Fingerprint(tag as u128 + 1), &encoding(tag));
        }
    }
    // Tear the WAL mid-frame, as a crash during write(2) would.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 11]).unwrap();
    let store = MmapStore::open(config(&dir)).unwrap();
    let stats = store.tier_stats();
    assert_eq!(stats.records, 9, "only the torn record is gone");
    assert_eq!(stats.recovery_dropped, 1);
    for tag in 0..9u64 {
        assert_bits_equal(&store.load(Fingerprint(tag as u128 + 1)).unwrap(), &encoding(tag));
    }
    assert_eq!(store.load(Fingerprint(10)), None);
    // The rewrite compacted the garbage away: a further save + reopen
    // must not resurrect or corrupt anything.
    store.save(Fingerprint(10), &encoding(9));
    drop(store);
    let store = MmapStore::open(config(&dir)).unwrap();
    assert_eq!(store.tier_stats().records, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generation_is_monotone_across_restarts() {
    let dir = tmp_dir("gen");
    let mut cfg = config(&dir);
    cfg.rotate_bytes = 2048;
    let g1 = {
        let store = MmapStore::open(cfg.clone()).unwrap();
        for tag in 0..50u64 {
            store.save(Fingerprint(tag as u128 + 1), &encoding(tag));
        }
        store.quiesce();
        store.tier_stats().generation
    };
    let store = MmapStore::open(cfg).unwrap();
    assert!(
        store.tier_stats().generation >= g1,
        "generation must not regress across restart: {} < {g1}",
        store.tier_stats().generation
    );
    let _ = std::fs::remove_dir_all(&dir);
}
