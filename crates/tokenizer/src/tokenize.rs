//! The tokenizer proper.

use crate::special;

/// Characters per subword piece when splitting long words.
pub const PIECE_LEN: usize = 4;

/// A produced token: its id plus the normalized piece text (retained for
/// debugging and tests; model adapters only consume ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token id in `[0, vocab_size)`.
    pub id: u32,
    /// Normalized piece ("##"-prefixed for continuations).
    pub piece: String,
}

/// A deterministic hashing-trick subword tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab_size: u32,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new(8192)
    }
}

impl Tokenizer {
    /// Create a tokenizer with the given id-space size.
    ///
    /// # Panics
    /// Panics if `vocab_size` does not leave room for content pieces
    /// beyond the reserved special ids.
    pub fn new(vocab_size: u32) -> Self {
        assert!(
            vocab_size > special::FIRST_CONTENT_ID,
            "vocab_size must exceed the reserved special-token range"
        );
        Self { vocab_size }
    }

    /// The id-space size.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// Tokenize a text into subword tokens.
    ///
    /// Normalization: Unicode text is lowercased; runs of alphabetic
    /// characters become words, digits are emitted one per token (so
    /// `1997` and `1998` share three of four pieces), and any other
    /// non-whitespace character is its own single token. Words longer than
    /// [`PIECE_LEN`] are split into a stem piece and `##`-continuations.
    /// Empty/whitespace-only text yields a single `[UNK]`.
    pub fn tokenize(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        let lower = text.to_lowercase();
        let mut word = String::new();
        for c in lower.chars() {
            if c.is_alphabetic() {
                word.push(c);
                continue;
            }
            self.flush_word(&mut word, &mut out);
            // Digits and punctuation become single-character pieces;
            // whitespace only delimits.
            if !c.is_whitespace() {
                out.push(self.piece_token(&c.to_string(), false));
            }
        }
        self.flush_word(&mut word, &mut out);
        if out.is_empty() {
            out.push(Token { id: special::UNK, piece: "[UNK]".into() });
        }
        out
    }

    /// Token ids only (the common path for model adapters).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        self.tokenize(text).into_iter().map(|t| t.id).collect()
    }

    fn flush_word(&self, word: &mut String, out: &mut Vec<Token>) {
        if word.is_empty() {
            return;
        }
        let chars: Vec<char> = word.chars().collect();
        if chars.len() <= PIECE_LEN {
            out.push(self.piece_token(word, false));
        } else {
            let mut start = 0;
            while start < chars.len() {
                let end = (start + PIECE_LEN).min(chars.len());
                let piece: String = chars[start..end].iter().collect();
                out.push(self.piece_token(&piece, start > 0));
                start = end;
            }
        }
        word.clear();
    }

    fn piece_token(&self, piece: &str, continuation: bool) -> Token {
        let tagged = if continuation { format!("##{piece}") } else { piece.to_string() };
        let id = special::FIRST_CONTENT_ID
            + (fnv1a(tagged.as_bytes()) % u64::from(self.vocab_size - special::FIRST_CONTENT_ID))
                as u32;
        Token { id, piece: tagged }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pieces(text: &str) -> Vec<String> {
        Tokenizer::default().tokenize(text).into_iter().map(|t| t.piece).collect()
    }

    #[test]
    fn deterministic() {
        let t = Tokenizer::default();
        assert_eq!(t.encode("World Championships"), t.encode("World Championships"));
    }

    #[test]
    fn case_insensitive() {
        let t = Tokenizer::default();
        assert_eq!(t.encode("Netherlands"), t.encode("NETHERLANDS"));
    }

    #[test]
    fn short_word_single_piece() {
        assert_eq!(pieces("cat"), vec!["cat"]);
    }

    #[test]
    fn long_word_split_with_continuations() {
        assert_eq!(pieces("championships"), vec!["cham", "##pion", "##ship", "##s"]);
    }

    #[test]
    fn digits_split_per_character() {
        assert_eq!(pieces("1997"), vec!["1", "9", "9", "7"]);
        // 1997 and 1998 share three of four pieces.
        let a = Tokenizer::default().encode("1997");
        let b = Tokenizer::default().encode("1998");
        assert_eq!(a[..3], b[..3]);
        assert_ne!(a[3], b[3]);
    }

    #[test]
    fn punctuation_is_own_token() {
        assert_eq!(pieces("a-b"), vec!["a", "-", "b"]);
        assert_eq!(pieces("cntry_name"), vec!["cntr", "##y", "_", "name"]);
    }

    #[test]
    fn mixed_alnum_splits_at_boundaries() {
        assert_eq!(pieces("top10"), vec!["top", "1", "0"]);
    }

    #[test]
    fn empty_is_unk() {
        let t = Tokenizer::default();
        let toks = t.tokenize("   ");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].id, special::UNK);
    }

    #[test]
    fn ids_in_content_range() {
        let t = Tokenizer::default();
        for tok in t.tokenize("hello world 42 !") {
            assert!(tok.id >= special::FIRST_CONTENT_ID);
            assert!(tok.id < t.vocab_size());
        }
    }

    #[test]
    fn same_piece_same_id_across_contexts() {
        let t = Tokenizer::default();
        let a = t.encode("game play");
        let b = t.encode("play game");
        assert_eq!(a[0], b[1]);
        assert_eq!(a[1], b[0]);
    }

    #[test]
    fn continuation_distinct_from_stem() {
        // "##name" (inside a long word) must differ from standalone "name".
        let t = Tokenizer::default();
        let standalone = t.encode("name");
        let inside = t.tokenize("surnamename"); // sur|name… splits as surn ##amen ##ame
        assert!(inside.iter().all(|tok| tok.id != standalone[0] || !tok.piece.starts_with("##")));
    }

    #[test]
    fn unicode_words() {
        let p = pieces("café münchen");
        assert!(!p.is_empty());
        // Deterministic under repeated calls.
        assert_eq!(p, pieces("café münchen"));
    }

    #[test]
    #[should_panic(expected = "vocab_size")]
    fn tiny_vocab_panics() {
        Tokenizer::new(8);
    }
}
