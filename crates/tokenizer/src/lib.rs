//! # observatory-tokenizer
//!
//! A deterministic subword tokenizer, substituting for the WordPiece /
//! BPE vocabularies of the pretrained checkpoints (DESIGN.md §1).
//!
//! Requirements inherited from the paper's pipeline:
//!
//! 1. **Determinism** — the same text must always yield the same token ids
//!    (synthetic "pretrained" weights are keyed by token id).
//! 2. **Subword granularity** — cell boundaries must not coincide with
//!    token boundaries, so that embedding retrieval genuinely has to
//!    aggregate token spans into cells/columns/rows (paper §4.3).
//! 3. **Shared-prefix structure** — lexically similar strings
//!    (`"CountryName"` vs `"cntry_name"`, `"1997"` vs `"1998"`) must share
//!    pieces, so that semantics-preserving perturbations move embeddings
//!    *some* distance but not arbitrarily far.
//!
//! The implementation is the *hashing trick*: text is normalized and split
//! into words, words longer than [`PIECE_LEN`] are split into stem +
//! continuation pieces, digits are split per character, and each piece is
//! mapped into a fixed id space by FNV-1a. There is no learned vocabulary
//! file to ship, yet the id space behaves like one.

pub mod tokenize;

pub use tokenize::{Token, Tokenizer, PIECE_LEN};

/// Special token ids (shared by every model adapter).
pub mod special {
    /// Padding.
    pub const PAD: u32 = 0;
    /// Sequence-level classification token; also DODUO's per-column marker.
    pub const CLS: u32 = 1;
    /// Separator between segments / cells.
    pub const SEP: u32 = 2;
    /// Unknown (empty after normalization).
    pub const UNK: u32 = 3;
    /// Mask (reserved; pretraining-style objectives).
    pub const MASK: u32 = 4;
    /// Row boundary marker.
    pub const ROW: u32 = 5;
    /// Header/value boundary marker.
    pub const HEADER: u32 = 6;
    /// NULL cell marker.
    pub const NULL: u32 = 7;
    /// First id available to content pieces.
    pub const FIRST_CONTENT_ID: u32 = 16;
}
