//! Property-based tests for the deterministic subword tokenizer.

use observatory_tokenizer::{special, Tokenizer};
use proptest::prelude::*;

proptest! {
    /// Any unicode string tokenizes without panicking, never produces an
    /// empty output, and stays inside the vocabulary.
    #[test]
    fn total_function_with_bounded_ids(text in "\\PC{0,64}") {
        let tok = Tokenizer::default();
        let ids = tok.encode(&text);
        prop_assert!(!ids.is_empty());
        prop_assert!(ids.iter().all(|&id| id < tok.vocab_size()));
    }

    /// Tokenization is a pure function: same input, same ids.
    #[test]
    fn deterministic(text in "\\PC{0,64}") {
        let a = Tokenizer::default().encode(&text);
        let b = Tokenizer::default().encode(&text);
        prop_assert_eq!(a, b);
    }

    /// Case folding: mixed-case ASCII words produce the same ids as their
    /// lowercase forms.
    #[test]
    fn case_insensitive(word in "[a-zA-Z]{1,16}") {
        let tok = Tokenizer::default();
        prop_assert_eq!(tok.encode(&word), tok.encode(&word.to_lowercase()));
    }

    /// Concatenation with whitespace composes: tokens(a + " " + b) =
    /// tokens(a) ++ tokens(b) for word-shaped inputs.
    #[test]
    fn whitespace_composition(a in "[a-z]{1,12}", b in "[a-z0-9]{1,12}") {
        let tok = Tokenizer::default();
        let joined = tok.encode(&format!("{a} {b}"));
        let mut expected = tok.encode(&a);
        expected.extend(tok.encode(&b));
        prop_assert_eq!(joined, expected);
    }

    /// Digits tokenize one-per-character so numeric strings of length n
    /// yield exactly n tokens.
    #[test]
    fn digit_granularity(num in "[0-9]{1,18}") {
        let tok = Tokenizer::default();
        prop_assert_eq!(tok.encode(&num).len(), num.len());
    }

    /// Whitespace-only input maps to the single [UNK] token.
    #[test]
    fn blank_is_unk(ws in "[ \\t\\n]{0,8}") {
        let tok = Tokenizer::default();
        prop_assert_eq!(tok.encode(&ws), vec![special::UNK]);
    }

    /// Vocab size is honoured whatever (legal) size is chosen.
    #[test]
    fn custom_vocab_bounds(text in "[a-z ]{1,32}", extra in 1u32..4096) {
        let tok = Tokenizer::new(special::FIRST_CONTENT_ID + extra);
        prop_assert!(tok.encode(&text).iter().all(|&id| id < special::FIRST_CONTENT_ID + extra));
    }
}
