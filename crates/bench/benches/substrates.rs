//! Microbenchmarks of the substrate crates: tokenizer, statistics,
//! overlap measures, kNN search, and PCA — the per-call costs underneath
//! every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use observatory_data::nextiajd::NextiaJdConfig;
use observatory_linalg::pca::Pca;
use observatory_linalg::{Matrix, SplitMix64};
use observatory_search::knn::KnnIndex;
use observatory_search::overlap::{containment, jaccard, multiset_jaccard};
use observatory_stats::descriptive::five_number_summary;
use observatory_stats::mcv::albert_zhang_mcv;
use observatory_stats::spearman::spearman_rho;
use observatory_tokenizer::Tokenizer;
use std::hint::black_box;

fn bench_tokenizer(c: &mut Criterion) {
    let tok = Tokenizer::default();
    let text = "World Championships 1997 Asian Games 4x400 m relay Netherlands";
    c.bench_function("tokenize_sentence", |b| b.iter(|| black_box(tok.encode(black_box(text)))));
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    let sample = Matrix::from_rows(
        &(0..100).map(|_| (0..64).map(|_| 1.0 + rng.next_normal()).collect()).collect::<Vec<_>>(),
    );
    let xs: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
    let ys: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
    let mut group = c.benchmark_group("stats");
    group.bench_function("az_mcv_100x64", |b| {
        b.iter(|| black_box(albert_zhang_mcv(black_box(&sample))))
    });
    group.bench_function("spearman_1000", |b| {
        b.iter(|| black_box(spearman_rho(black_box(&xs), black_box(&ys))))
    });
    group.bench_function("five_number_summary_1000", |b| {
        b.iter(|| black_box(five_number_summary(black_box(&xs))))
    });
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let pairs = NextiaJdConfig { num_pairs: 1, ..Default::default() }.generate();
    let (q, cand) = (&pairs[0].query, &pairs[0].candidate);
    let mut group = c.benchmark_group("overlap");
    group.bench_function("containment", |b| b.iter(|| black_box(containment(q, cand))));
    group.bench_function("jaccard", |b| b.iter(|| black_box(jaccard(q, cand))));
    group.bench_function("multiset_jaccard", |b| b.iter(|| black_box(multiset_jaccard(q, cand))));
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut rng = SplitMix64::new(2);
    let mut group = c.benchmark_group("knn_query_k10");
    for n in [100usize, 1000] {
        let mut idx = KnnIndex::new(64);
        for i in 0..n {
            let v: Vec<f64> = (0..64).map(|_| rng.next_normal()).collect();
            idx.insert(format!("e{i}"), &v);
        }
        let q: Vec<f64> = (0..64).map(|_| rng.next_normal()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &idx, |b, idx| {
            b.iter(|| black_box(idx.query(black_box(&q), 10, None)))
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let sample = Matrix::from_rows(
        &(0..720).map(|_| (0..64).map(|_| rng.next_normal()).collect()).collect::<Vec<_>>(),
    );
    c.bench_function("pca_top2_720x64", |b| b.iter(|| black_box(Pca::fit(black_box(&sample), 2))));
}

criterion_group!(benches, bench_tokenizer, bench_stats, bench_overlap, bench_knn, bench_pca);
criterion_main!(benches);
