//! Embedding-engine benchmarks: cold vs warm cache, and `encode_batch`
//! throughput at 1/2/4 worker threads.
//!
//! The cache benchmark quantifies what the content-addressed LRU buys on
//! a repeated-encode workload (permutation sweeps revisit identical
//! fingerprints constantly): the warm path is a shard lookup plus an
//! `Arc` clone, so the cold/warm ratio is the effective amortization of
//! every re-encode the properties would otherwise pay for. The thread
//! sweep uses private engines with caching disabled so each iteration
//! measures real encoder work; observed speedup is bounded by the
//! machine's core count (single-core CI boxes report ~1×).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use observatory_data::wikitables::WikiTablesConfig;
use observatory_models::registry::model_by_name;
use observatory_runtime::{Engine, EngineConfig};
use observatory_table::Table;
use std::hint::black_box;

fn demo_corpus() -> Vec<Table> {
    WikiTablesConfig { num_tables: 8, min_rows: 5, max_rows: 8, seed: 42 }.generate()
}

fn bench_cache_cold_vs_warm(c: &mut Criterion) {
    let corpus = demo_corpus();
    let model = model_by_name("bert").unwrap();
    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    group.throughput(Throughput::Elements(corpus.len() as u64));

    // Cold: every iteration starts from an empty cache, so every table is
    // a miss and runs the full encoder.
    let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 256 << 20 });
    group.bench_function("cold", |b| {
        b.iter(|| {
            engine.clear_cache();
            black_box(engine.encode_batch(model.as_ref(), black_box(&corpus)))
        })
    });

    // Warm: the cache is pre-populated once; every iteration is all hits.
    let warm = Engine::new(EngineConfig { jobs: 1, cache_bytes: 256 << 20 });
    warm.encode_batch(model.as_ref(), &corpus);
    group.bench_function("warm", |b| {
        b.iter(|| black_box(warm.encode_batch(model.as_ref(), black_box(&corpus))))
    });
    group.finish();

    let stats = warm.cache_stats();
    println!(
        "# engine_cache: warm hit rate {:.1}% ({} hits / {} lookups), {} entries, {} bytes",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.hits + stats.misses,
        stats.entries,
        stats.bytes,
    );
}

fn bench_batch_jobs(c: &mut Criterion) {
    let corpus = demo_corpus();
    let model = model_by_name("bert").unwrap();
    let mut group = c.benchmark_group("encode_batch_jobs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(corpus.len() as u64));
    for jobs in [1usize, 2, 4] {
        // Caching disabled: each iteration must do the real encoder work,
        // otherwise everything after the first iteration is a hit.
        let engine = Engine::new(EngineConfig { jobs, cache_bytes: 0 });
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &corpus, |b, corpus| {
            b.iter(|| black_box(engine.encode_batch(model.as_ref(), black_box(corpus))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_cold_vs_warm, bench_batch_jobs);
criterion_main!(benches);
