//! `encoder_kernels`: the fused/tiled/row-parallel encoder kernels
//! against the pre-PR scalar reference, over a seq-len × dim grid.
//!
//! Three configurations per point:
//! - `reference` — the naive scalar path (strided slices, no repacking,
//!   no fusion): the shape of the implementation before the kernel layer.
//! - `serial`    — the fused kernels at `jobs = 1`.
//! - `parallel4` — the fused kernels at `jobs = 4`.
//!
//! Recorded numbers live in DESIGN.md §9: ~2× where libm transcendentals
//! dominated (dim-64 FFN), ~1.4–1.7× on GEMM-bound dim-128 shapes, where
//! the naive i-k-j loop already sits near the no-FMA f64 roofline.
//! A whole-encoder forward pass is benched last, toggling the
//! process-default job count the CLI's `--jobs` flag controls.
//!
//! Since the SIMD backend (DESIGN.md §11) the serial rows are additionally
//! swept across dispatch tiers via `simd::force_tier` — `scalar` vs
//! `sse2`/`avx2` rows on the same shapes, same process, same buffers, so
//! the tier delta is the only variable. `bench_simd` (a `src/bin` tool)
//! emits the machine-readable `BENCH_simd.json` counterpart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use observatory_linalg::kernels::{self, reference, AttentionSpec};
use observatory_linalg::simd;
use observatory_linalg::{parallel, Matrix, SplitMix64};
use observatory_transformer::config::TransformerConfig;
use observatory_transformer::encoder::{Encoder, TokenInput};
use std::hint::black_box;

const GRID: [(usize, usize); 4] = [(32, 64), (128, 64), (128, 128), (256, 128)];
const N_HEADS: usize = 4;

fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.next_normal_with(0.0, 0.5);
        }
    }
    m
}

fn tier_label(tier: simd::Tier) -> String {
    format!("{tier:?}").to_lowercase()
}

/// GEMM microkernel across SIMD tiers: `matmul` (seq×dim · dim×dim) with
/// each available tier forced, serial, same buffers — the per-tier rows
/// DESIGN.md §11's speedup table quotes.
fn bench_matmul_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_kernels/matmul");
    group.sample_size(10);
    for (seq, dim) in GRID {
        let mut rng = SplitMix64::new(16);
        let a = random_matrix(&mut rng, seq, dim);
        let b = random_matrix(&mut rng, dim, dim);
        let param = format!("seq{seq}_dim{dim}");
        for tier in simd::available_tiers() {
            group.bench_function(BenchmarkId::new(tier_label(tier), &param), |bch| {
                simd::force_tier(Some(tier));
                bch.iter(|| black_box(kernels::matmul(&a, &b, 1)));
                simd::force_tier(None);
            });
        }
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_kernels/attention");
    group.sample_size(10);
    for (seq, dim) in GRID {
        let mut rng = SplitMix64::new(17);
        let q = random_matrix(&mut rng, seq, dim);
        let k = random_matrix(&mut rng, seq, dim);
        let v = random_matrix(&mut rng, seq, dim);
        let spec = AttentionSpec {
            n_heads: N_HEADS,
            head_dim: dim / N_HEADS,
            scale: 1.0 / ((dim / N_HEADS) as f64).sqrt(),
            bias: None,
            mask: None,
        };
        let param = format!("seq{seq}_dim{dim}");
        group.bench_function(BenchmarkId::new("reference", &param), |b| {
            b.iter(|| black_box(reference::attention(&q, &k, &v, &spec)))
        });
        group.bench_function(BenchmarkId::new("serial", &param), |b| {
            b.iter(|| black_box(kernels::attention(&q, &k, &v, &spec, 1)))
        });
        group.bench_function(BenchmarkId::new("serial_scalar", &param), |b| {
            simd::force_tier(Some(simd::Tier::Scalar));
            b.iter(|| black_box(kernels::attention(&q, &k, &v, &spec, 1)));
            simd::force_tier(None);
        });
        group.bench_function(BenchmarkId::new("parallel4", &param), |b| {
            b.iter(|| black_box(kernels::attention(&q, &k, &v, &spec, 4)))
        });
    }
    group.finish();
}

fn bench_ffn(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_kernels/ffn");
    group.sample_size(10);
    for (seq, dim) in GRID {
        let ffn_dim = 2 * dim;
        let mut rng = SplitMix64::new(18);
        let x = random_matrix(&mut rng, seq, dim);
        let w1 = random_matrix(&mut rng, dim, ffn_dim);
        let b1: Vec<f64> = (0..ffn_dim).map(|_| rng.next_normal_with(0.0, 0.1)).collect();
        let w2 = random_matrix(&mut rng, ffn_dim, dim);
        let b2: Vec<f64> = (0..dim).map(|_| rng.next_normal_with(0.0, 0.1)).collect();
        let param = format!("seq{seq}_dim{dim}");
        group.bench_function(BenchmarkId::new("reference", &param), |b| {
            b.iter(|| {
                let h = reference::linear_bias_gelu(&x, &w1, &b1);
                black_box(reference::linear_bias(&h, &w2, &b2))
            })
        });
        for (name, jobs) in [("serial", 1), ("parallel4", 4)] {
            group.bench_function(BenchmarkId::new(name, &param), |b| {
                b.iter(|| {
                    let h = kernels::linear_bias_gelu(&x, &w1, &b1, jobs);
                    black_box(kernels::linear_bias(&h, &w2, &b2, jobs))
                })
            });
        }
        group.bench_function(BenchmarkId::new("serial_scalar", &param), |b| {
            simd::force_tier(Some(simd::Tier::Scalar));
            b.iter(|| {
                let h = kernels::linear_bias_gelu(&x, &w1, &b1, 1);
                black_box(kernels::linear_bias(&h, &w2, &b2, 1))
            });
            simd::force_tier(None);
        });
    }
    group.finish();
}

fn bench_full_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_kernels/encode");
    group.sample_size(10);
    for (seq, dim) in [(128usize, 64usize), (256, 64)] {
        let encoder = Encoder::new(TransformerConfig {
            dim,
            n_heads: N_HEADS,
            n_layers: 2,
            ffn_dim: 2 * dim,
            max_len: seq,
            vocab_size: 512,
            seed_label: "bench-kernels".into(),
            ..Default::default()
        });
        let tokens: Vec<TokenInput> =
            (0..seq).map(|i| TokenInput::plain((i % 512) as u32)).collect();
        let param = format!("seq{seq}_dim{dim}");
        for (name, jobs) in [("jobs1", 1usize), ("jobs4", 4)] {
            group.bench_function(BenchmarkId::new(name, &param), |b| {
                parallel::set_default_jobs(jobs);
                b.iter(|| black_box(encoder.encode(black_box(&tokens))));
            });
        }
        // Whole-encoder tier delta: serial, scalar tier forced vs the
        // auto-detected tier above ("jobs1").
        group.bench_function(BenchmarkId::new("jobs1_scalar", &param), |b| {
            parallel::set_default_jobs(1);
            simd::force_tier(Some(simd::Tier::Scalar));
            b.iter(|| black_box(encoder.encode(black_box(&tokens))));
            simd::force_tier(None);
        });
        parallel::set_default_jobs(0);
    }
    group.finish();
}

criterion_group!(benches, bench_matmul_tiers, bench_attention, bench_ffn, bench_full_encoder);
criterion_main!(benches);
