//! Ablation benches for the design choices called out in DESIGN.md §2:
//!
//! - **D1 aggregation**: [CLS] readout vs mean-pool vs header-mean column
//!   retrieval cost.
//! - **D2 row fitting**: binary-search row fitting vs linear scan.
//! - **D3 MCV estimator**: Albert–Zhang (inverse-free) vs Voinov–Nikulin
//!   (requires `Σ⁻¹`; fails when n ≤ d — the bench also counts successes).
//! - **D4 permutation budget**: sampled-k vs exhaustive enumeration.
//! - **D5 FD discovery**: stripped-partition refinement vs naive O(n²)
//!   verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use observatory_data::spider::SpiderConfig;
use observatory_data::wikitables::WikiTablesConfig;
use observatory_fd::discovery::{
    discover_unary_fds, holds_unary, holds_unary_naive, DiscoveryOptions,
};
use observatory_linalg::{Matrix, SplitMix64};
use observatory_models::registry::{model_by_name, MODEL_NAMES};
use observatory_models::serialize::{fit_rows, serialize_row_wise, RowWiseOptions};
use observatory_stats::mcv::{albert_zhang_mcv, voinov_nikulin_mcv};
use observatory_table::perm::sample_permutations;
use observatory_tokenizer::Tokenizer;
use std::hint::black_box;

/// D1 — column readout strategies (DODUO's CLS vs mean-pool vs TaBERT's
/// header anchor) on the same table.
fn d1_aggregation(c: &mut Criterion) {
    let table =
        WikiTablesConfig { num_tables: 1, min_rows: 8, max_rows: 8, seed: 1 }.generate().remove(0);
    let mut group = c.benchmark_group("d1_column_readout");
    for name in ["doduo", "bert", "tabert"] {
        let model = model_by_name(name).unwrap();
        let enc = model.encode_table(&table);
        let cols = enc.cols_encoded;
        group.bench_with_input(BenchmarkId::from_parameter(name), &enc, |b, enc| {
            b.iter(|| {
                for j in 0..cols {
                    black_box(enc.column(black_box(j)));
                }
            })
        });
    }
    group.finish();
}

/// D2 — row fitting: binary search (paper §4.3) vs linear scan.
fn d2_row_fitting(c: &mut Criterion) {
    let table = WikiTablesConfig { num_tables: 1, min_rows: 60, max_rows: 60, seed: 2 }
        .generate()
        .remove(0);
    let tok = Tokenizer::default();
    let opts = RowWiseOptions::default();
    let budget = 192usize;
    let mut group = c.benchmark_group("d2_row_fitting");
    group.sample_size(20);
    group.bench_function("binary_search", |b| {
        b.iter(|| {
            black_box(fit_rows(table.num_rows(), budget, |k| {
                serialize_row_wise(&table, &tok, k, &opts).len()
            }))
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut best = 0;
            for k in 0..=table.num_rows() {
                if serialize_row_wise(&table, &tok, k, &opts).len() <= budget {
                    best = k;
                } else {
                    break;
                }
            }
            black_box(best)
        })
    });
    group.finish();
}

/// D3 — MCV estimators on an n ≪ d sample (the Observatory regime): the
/// inverse-based estimator must detect singularity and bail; Albert–Zhang
/// just computes.
fn d3_mcv(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    // 24 observations in 64 dimensions: singular covariance by construction.
    let rows: Vec<Vec<f64>> =
        (0..24).map(|_| (0..64).map(|_| 1.0 + 0.05 * rng.next_normal()).collect()).collect();
    let sample = Matrix::from_rows(&rows);
    assert!(voinov_nikulin_mcv(&sample).is_none(), "n<=d must be singular");
    let mut group = c.benchmark_group("d3_mcv");
    group.bench_function("albert_zhang", |b| {
        b.iter(|| black_box(albert_zhang_mcv(black_box(&sample))))
    });
    group.bench_function("voinov_nikulin_singular_bailout", |b| {
        b.iter(|| black_box(voinov_nikulin_mcv(black_box(&sample))))
    });
    group.finish();
}

/// D4 — permutation budget: sampling k distinct permutations of a large
/// space vs exhaustively enumerating a small one.
fn d4_permutations(c: &mut Criterion) {
    let mut group = c.benchmark_group("d4_permutations");
    group.bench_function("sample_100_of_12_factorial", |b| {
        b.iter(|| black_box(sample_permutations(black_box(12), 100, 42)))
    });
    group.bench_function("exhaustive_6_factorial", |b| {
        b.iter(|| black_box(sample_permutations(black_box(6), 1000, 42)))
    });
    group.finish();
}

/// D5 — FD checking: partition refinement vs naive pairwise comparison,
/// plus full-table discovery.
fn d5_fd(c: &mut Criterion) {
    let table = SpiderConfig { num_tables: 1, rows: 200, seed: 7 }.generate().tables.remove(0);
    let mut group = c.benchmark_group("d5_fd");
    group.bench_function("refinement_check", |b| {
        b.iter(|| black_box(holds_unary(black_box(&table), 0, 1)))
    });
    group.bench_function("naive_check", |b| {
        b.iter(|| black_box(holds_unary_naive(black_box(&table), 0, 1)))
    });
    group.bench_function("discover_all_unary", |b| {
        b.iter(|| black_box(discover_unary_fds(black_box(&table), DiscoveryOptions::default())))
    });
    group.finish();
}

/// Model-construction cost (weight materialization from the seed stream) —
/// the "model download" of the synthetic world.
fn model_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_construction");
    group.sample_size(10);
    for name in MODEL_NAMES {
        group.bench_function(name, |b| b.iter(|| black_box(model_by_name(black_box(name)))));
    }
    group.finish();
}

criterion_group!(
    benches,
    d1_aggregation,
    d2_row_fitting,
    d3_mcv,
    d4_permutations,
    d5_fd,
    model_construction
);
criterion_main!(benches);
