//! End-to-end cost of each of the eight property evaluations at a small
//! fixed workload — one bench per experiment group of the paper
//! (Figures 5/7/9–13, Tables 3–5).

use criterion::{criterion_group, criterion_main, Criterion};
use observatory_core::framework::{EvalContext, Property};
use observatory_core::props::col_order::ColumnOrderInsignificance;
use observatory_core::props::entity_stability::EntityStability;
use observatory_core::props::fd::FunctionalDependencies;
use observatory_core::props::hetero_context::HeterogeneousContext;
use observatory_core::props::join_rel::{pairs_to_corpus, JoinRelationship};
use observatory_core::props::perturbation::PerturbationRobustness;
use observatory_core::props::row_order::RowOrderInsignificance;
use observatory_core::props::sample_fidelity::SampleFidelity;
use observatory_data::entities::entity_domains;
use observatory_data::nextiajd::NextiaJdConfig;
use observatory_data::sotab::SotabConfig;
use observatory_data::spider::SpiderConfig;
use observatory_data::wikitables::WikiTablesConfig;
use std::hint::black_box;

fn ctx() -> EvalContext {
    EvalContext::with_seed(42)
}

fn bench_props(c: &mut Criterion) {
    let model = observatory_models::registry::model_by_name("bert").unwrap();
    let wiki = WikiTablesConfig { num_tables: 2, min_rows: 4, max_rows: 5, seed: 1 }.generate();
    let spider = SpiderConfig { num_tables: 2, rows: 12, seed: 7 }.generate().tables;
    let joins = pairs_to_corpus(&NextiaJdConfig { num_pairs: 8, ..Default::default() }.generate());
    let sotab = SotabConfig { num_tables: 3, rows: 5, seed: 23 }.generate();

    let mut group = c.benchmark_group("properties");
    group.sample_size(10);
    group.bench_function("p1_row_order", |b| {
        let p = RowOrderInsignificance { max_permutations: 4 };
        b.iter(|| black_box(p.evaluate(model.as_ref(), black_box(&wiki), &ctx())))
    });
    group.bench_function("p2_col_order", |b| {
        let p = ColumnOrderInsignificance { max_permutations: 4 };
        b.iter(|| black_box(p.evaluate(model.as_ref(), black_box(&wiki), &ctx())))
    });
    group.bench_function("p3_join_relationship", |b| {
        b.iter(|| black_box(JoinRelationship.evaluate(model.as_ref(), black_box(&joins), &ctx())))
    });
    group.bench_function("p4_functional_dependencies", |b| {
        let p = FunctionalDependencies::default();
        b.iter(|| black_box(p.evaluate(model.as_ref(), black_box(&spider), &ctx())))
    });
    group.bench_function("p5_sample_fidelity", |b| {
        let p = SampleFidelity { samples_per_ratio: 1, ..Default::default() };
        b.iter(|| black_box(p.evaluate(model.as_ref(), black_box(&wiki), &ctx())))
    });
    group.bench_function("p7_perturbation_robustness", |b| {
        let p = PerturbationRobustness::default();
        b.iter(|| black_box(p.evaluate(model.as_ref(), black_box(&wiki), &ctx())))
    });
    group.bench_function("p8_heterogeneous_context", |b| {
        b.iter(|| {
            black_box(HeterogeneousContext.evaluate(model.as_ref(), black_box(&sotab), &ctx()))
        })
    });
    group.finish();

    // P6 has its own pairwise API.
    let domain = &entity_domains(1)[0];
    let other = observatory_models::registry::model_by_name("t5").unwrap();
    c.bench_function("p6_entity_stability", |b| {
        let p = EntityStability { k: 5, ..Default::default() };
        b.iter(|| {
            black_box(p.stability_between(
                model.as_ref(),
                other.as_ref(),
                black_box(&domain.corpus),
                &domain.queries,
                &ctx(),
            ))
        })
    });
}

criterion_group!(benches, bench_props);
criterion_main!(benches);
