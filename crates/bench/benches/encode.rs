//! Raw encoding throughput of the nine model adapters, plus the cost of
//! each embedding level's retrieval. This is the "how expensive is one
//! permutation variant" microbenchmark that everything in Figures 5–13
//! multiplies by.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use observatory_data::wikitables::WikiTablesConfig;
use observatory_models::registry::all_models;
use observatory_table::Table;
use std::hint::black_box;

fn reference_table() -> Table {
    WikiTablesConfig { num_tables: 1, min_rows: 8, max_rows: 8, seed: 42 }.generate().remove(0)
}

fn bench_encode_table(c: &mut Criterion) {
    let table = reference_table();
    let mut group = c.benchmark_group("encode_table");
    group.sample_size(20);
    for model in all_models() {
        group.bench_with_input(BenchmarkId::from_parameter(model.name()), &table, |b, table| {
            b.iter(|| black_box(model.encode_table(black_box(table))))
        });
    }
    group.finish();
}

fn bench_levels(c: &mut Criterion) {
    let table = reference_table();
    let model = observatory_models::registry::model_by_name("bert").unwrap();
    let enc = model.encode_table(&table);
    let mut group = c.benchmark_group("level_retrieval");
    group.bench_function("column", |b| b.iter(|| black_box(enc.column(black_box(1)))));
    group.bench_function("row", |b| b.iter(|| black_box(enc.row(black_box(1)))));
    group.bench_function("table", |b| b.iter(|| black_box(enc.table())));
    group.bench_function("cell", |b| b.iter(|| black_box(enc.cell(black_box(1), black_box(1)))));
    group.finish();
}

fn bench_encode_text(c: &mut Criterion) {
    let model = observatory_models::registry::model_by_name("bert").unwrap();
    c.bench_function("encode_text", |b| {
        b.iter(|| black_box(model.encode_text(black_box("what is the population of Amsterdam?"))))
    });
}

criterion_group!(benches, bench_encode_table, bench_levels, bench_encode_text);
criterion_main!(benches);
