//! Regenerates **Figure 7**: cosine similarity and MCV distributions of
//! column and row embeddings under column shuffling, per model.

use observatory_bench::harness::{banner, context, wiki_corpus, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::col_order::ColumnOrderInsignificance;
use observatory_core::report::render_report;
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Figure 7: column order insignificance (P2)",
        "paper §5.2, Figure 7 — WikiTables, ≤1000 column permutations",
    );
    let scale = Scale::from_env();
    let corpus = wiki_corpus(scale);
    let property = ColumnOrderInsignificance { max_permutations: scale.permutations() };
    let models = all_models();
    for report in run_property(&property, &models, &corpus, &context()) {
        print!("{}", render_report(&report));
    }
}
