//! Regenerates **Figure 12**: pairwise top-K entity stability heatmaps
//! with query entities from the paper's domains (Tennis Players, Movies,
//! Biochemistry shown in the paper; all five printed here).

use observatory_bench::harness::{banner, context};
use observatory_core::props::entity_stability::EntityStability;
use observatory_core::report::render_table;
use observatory_core::scope::in_scope;
use observatory_data::entities::entity_domains;
use observatory_models::registry::{all_models, MODEL_NAMES};
use observatory_models::TableEncoder;

fn main() {
    banner(
        "Figure 12: pairwise top-10 entity stability per query domain",
        "paper §5.6, Figure 12 — K = 10, five entity domains",
    );
    let property = EntityStability { k: 10, ..Default::default() };
    let ctx = context();
    let models: Vec<Box<dyn TableEncoder>> = all_models()
        .into_iter()
        .filter(|m| in_scope("P6", m.name()) && m.capabilities().entity)
        .collect();
    let names: Vec<&str> =
        MODEL_NAMES.iter().copied().filter(|n| models.iter().any(|m| m.name() == *n)).collect();
    for domain in entity_domains(ctx.seed) {
        println!("## {}", domain.name);
        let matrix = property.stability_matrix(&models, &domain.corpus, &domain.queries, &ctx);
        let mut headers = vec![""];
        headers.extend(names.iter().copied());
        let rows: Vec<Vec<String>> = matrix
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut cells = vec![names[i].to_string()];
                cells.extend(row.iter().map(|v| {
                    if v.is_nan() {
                        "-".to_string()
                    } else {
                        format!("{v:.2}")
                    }
                }));
                cells
            })
            .collect();
        print!("{}", render_table(&headers, &rows));
        // The paper's reading: which off-diagonal pair agrees most?
        let mut best = (0, 1, f64::MIN);
        for (i, row) in matrix.iter().enumerate() {
            for (j, &v) in row.iter().enumerate().skip(i + 1) {
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        if best.2 > f64::MIN {
            println!(
                "highest-stability pair: {} / {} ({:.2})\n",
                names[best.0], names[best.1], best.2
            );
        }
    }
    println!("expected shape: different model pairs agree most in different domains —");
    println!("domain is a key factor in entity stability.");
}
