//! Machine-readable tier-2 store benchmark: emits `BENCH_store.json`.
//!
//! Quantifies what the persistent embedding store buys a restarted
//! process:
//!
//! 1. **Cold**: a fresh engine + empty store encodes a corpus through
//!    the full model (every table is a tier-2 miss + write-through).
//! 2. **Warm**: a second engine — a restart stand-in — reopens the same
//!    store directory and encodes the identical corpus; every table must
//!    come back from disk (tier-2 hit), bit-identical, with the model
//!    never running.
//! 3. **Hit latency**: per-record `load()` timings (mmap read + CRC +
//!    decode) reported as p50/p95.
//!
//! Output is one JSON document (path in `argv[1]`, default
//! `BENCH_store.json`) with both phase throughputs, the warm/cold
//! speedup (the acceptance gate wants ≥ 5×), and the latency quantiles;
//! DESIGN.md §12 quotes it directly.

use observatory_bench::harness::banner;
use observatory_data::wikitables::WikiTablesConfig;
use observatory_models::registry::model_by_name;
use observatory_models::ModelEncoding;
use observatory_runtime::{fingerprint_table, EmbeddingStore, Engine, EngineConfig};
use observatory_store::{MmapStore, StoreConfig};
use observatory_table::Table;
use std::sync::Arc;
use std::time::Instant;

const NUM_TABLES: usize = 24;
const LATENCY_ROUNDS: usize = 50;

fn bits(enc: &ModelEncoding) -> Vec<u64> {
    enc.embeddings.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_store.json".into());
    banner("bench_store: persistent store cold vs warm", "DESIGN.md §12");

    let dir = std::env::temp_dir().join(format!("obs-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus: Vec<Table> =
        WikiTablesConfig { num_tables: NUM_TABLES, min_rows: 5, max_rows: 8, seed: 97 }.generate();
    let model = model_by_name("bert").expect("bert in the registry");

    // ---- Phase 1: cold — model encodes, store write-through ----------
    let cold_encodings: Vec<Arc<ModelEncoding>>;
    let cold_s: f64;
    {
        let engine = Engine::new(EngineConfig::from_env());
        let store =
            Arc::new(MmapStore::open(StoreConfig::new(dir.clone())).expect("open empty store"));
        engine.attach_store(store.clone());
        let t = Instant::now();
        cold_encodings =
            corpus.iter().map(|table| engine.encode_table(model.as_ref(), table)).collect();
        cold_s = t.elapsed().as_secs_f64();
        store.flush().expect("flush WAL");
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.encodes as usize, NUM_TABLES, "cold phase must run the model");
        assert_eq!(snap.tier2_writes as usize, NUM_TABLES, "every encode written through");
        println!(
            "cold:  {NUM_TABLES} tables in {cold_s:.3}s ({:.1} tables/s), {} records on disk",
            NUM_TABLES as f64 / cold_s,
            store.tier_stats().records
        );
    } // engine + store drop: clean shutdown, WAL durable

    // ---- Phase 2: warm — a "restarted process" reopens the store -----
    let store = Arc::new(MmapStore::open(StoreConfig::new(dir.clone())).expect("reopen store"));
    let warm_s: f64;
    {
        let engine = Engine::new(EngineConfig::from_env());
        engine.attach_store(store.clone());
        let t = Instant::now();
        let warm_encodings: Vec<Arc<ModelEncoding>> =
            corpus.iter().map(|table| engine.encode_table(model.as_ref(), table)).collect();
        warm_s = t.elapsed().as_secs_f64();
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.encodes, 0, "warm phase must never run the model");
        assert_eq!(snap.tier2_hits as usize, NUM_TABLES, "every table a tier-2 hit");
        for (cold, warm) in cold_encodings.iter().zip(&warm_encodings) {
            assert_eq!(bits(cold), bits(warm), "warm restart must be bit-identical");
        }
        println!(
            "warm:  {NUM_TABLES} tables in {warm_s:.3}s ({:.1} tables/s), bit-identical",
            NUM_TABLES as f64 / warm_s
        );
    }

    // ---- Phase 3: raw hit latency (mmap read + CRC + decode) ---------
    let fps: Vec<_> = corpus.iter().map(|table| fingerprint_table(model.name(), table)).collect();
    let mut lat_us: Vec<f64> = Vec::with_capacity(LATENCY_ROUNDS * fps.len());
    for _ in 0..LATENCY_ROUNDS {
        for &fp in &fps {
            let t = Instant::now();
            let enc = store.load(fp);
            lat_us.push(t.elapsed().as_nanos() as f64 / 1000.0);
            assert!(enc.is_some(), "benchmarked fingerprints must all hit");
        }
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p95) = (quantile(&lat_us, 0.50), quantile(&lat_us, 0.95));
    println!("hit latency: p50 {p50:.1}us, p95 {p95:.1}us ({} samples)", lat_us.len());

    let tier = store.tier_stats();
    let speedup = cold_s / warm_s;
    println!("speedup: warm {speedup:.1}x over cold (gate: >= 5x)");

    let json = format!(
        concat!(
            "{{\n",
            "  \"tables\": {},\n",
            "  \"cold_seconds\": {:.4},\n",
            "  \"warm_seconds\": {:.4},\n",
            "  \"cold_tables_per_s\": {:.2},\n",
            "  \"warm_tables_per_s\": {:.2},\n",
            "  \"warm_over_cold_speedup\": {:.2},\n",
            "  \"hit_latency_us\": {{\"p50\": {:.2}, \"p95\": {:.2}, \"samples\": {}}},\n",
            "  \"store\": {{\"records\": {}, \"segments\": {}, \"segment_bytes\": {}, ",
            "\"wal_bytes\": {}, \"generation\": {}}}\n",
            "}}\n"
        ),
        NUM_TABLES,
        cold_s,
        warm_s,
        NUM_TABLES as f64 / cold_s,
        NUM_TABLES as f64 / warm_s,
        speedup,
        p50,
        p95,
        lat_us.len(),
        tier.records,
        tier.segments,
        tier.segment_bytes,
        tier.wal_bytes,
        tier.generation,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_store.json");
    println!("wrote -> {out_path}");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
