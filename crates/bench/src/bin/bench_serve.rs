//! Machine-readable serving-path benchmark: emits `BENCH_serve.json`.
//!
//! Measures the same cache-hot `/v1/embed` workload against the two
//! connection-serving strategies of `observatory serve`:
//!
//! - **thread**: the legacy thread-per-connection path — one request
//!   per connection, a fresh TCP connect and a fresh OS thread each
//!   time;
//! - **epoll**: the thread-per-core reactor — `CONNS` keep-alive
//!   connections multiplexed over a handful of core-pinned shards.
//!
//! Both servers run in-process on ephemeral ports with the same engine
//! configuration and a pre-warmed encoding cache, so the measured gap
//! is the connection plane, not the model. Clients are closed-loop
//! keep-alive workers (the thread server answers `Connection: close`,
//! so its clients transparently reconnect — exactly the per-request
//! connection cost the reactor removes).
//!
//! The binary itself asserts the PR gate so CI fails loudly:
//! reactor throughput >= 3x the thread baseline at >= 1k keep-alive
//! connections, with reactor p99 under the SLO.

use observatory_bench::httpc;
use observatory_runtime::metrics::Histogram;
use observatory_runtime::{Engine, EngineConfig};
use observatory_serve::{NetMode, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent keep-alive connections (the gate requires >= 1k).
const CONNS: usize = 1024;
/// Distinct tables in the workload; all are pre-warmed into the cache.
const DISTINCT: usize = 16;
/// Measurement window per mode.
const WINDOW: Duration = Duration::from_secs(4);
/// Settling time before the window: connection setup, client-thread
/// spawn, and first-touch costs stay out of the measured tail.
const RAMP: Duration = Duration::from_secs(1);
/// The reactor's p99 must land under this. The bench drives the server
/// to saturation, so queueing delay is set by Little's law (in-flight /
/// throughput, ~160 ms mean at depth 4 over 1k connections on one
/// core); 500 ms p99 is comfortable steady-state headroom over that
/// while still catching stalled shards, lost wakeups, or timeout bugs.
const SLO: Duration = Duration::from_millis(500);
/// Throughput gate: reactor over thread baseline.
const GATE: f64 = 3.0;
/// Pipeline depth on reactor connections. The thread path closes after
/// every response, so its depth is structurally 1 — pipelining (like
/// keep-alive) is part of what the reactor buys and what this measures.
const PIPELINE: usize = 4;

fn embed_body(tag: usize) -> String {
    // Table-level readout of a tiny table: the response carries one
    // vector, so the wire and render cost stays small and the measured
    // gap is the connection plane rather than JSON shoveling.
    format!(
        r#"{{"model":"bert","level":"table","id":"bench-{tag}","table":{{"name":"bench{tag}","columns":[{{"header":"id","values":[{},{}]}}]}}}}"#,
        tag,
        tag + 1,
    )
}

struct ModeReport {
    ok: u64,
    shed: u64,
    errors: u64,
    reconnects: u64,
    wall: Duration,
    latency: observatory_runtime::metrics::HistogramSnapshot,
}

impl ModeReport {
    fn rps(&self) -> f64 {
        self.ok as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Run phases, driven by the coordinator thread.
const PHASE_RAMP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_STOP: u8 = 2;

/// Closed-loop keep-alive worker: hammer `/v1/embed` until told to
/// stop; only requests issued inside the measurement window count.
fn worker(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    offset: usize,
    depth: usize,
    phase: Arc<AtomicU8>,
) -> ModeReport {
    let mut client = httpc::Client::new(addr, Duration::from_secs(30));
    let latency = Histogram::default();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    let mut i = offset;
    loop {
        let p = phase.load(Ordering::Relaxed);
        if p == PHASE_STOP {
            break;
        }
        let measuring = p == PHASE_MEASURE;
        let batch: Vec<&str> =
            (0..depth).map(|d| bodies[(i + d) % bodies.len()].as_str()).collect();
        i += depth;
        let start = Instant::now();
        let resps = if depth == 1 {
            client.post("/v1/embed", batch[0]).map(|r| vec![r])
        } else {
            client.post_pipelined("/v1/embed", &batch)
        };
        match resps {
            Ok(resps) => {
                // Latency is batch-start -> each response: a request's
                // clock starts when it was pipelined, not when the
                // server got around to it.
                let elapsed = start.elapsed();
                for r in resps {
                    match r.status {
                        200 => {
                            if measuring {
                                latency.record(elapsed);
                                ok += 1;
                            }
                        }
                        429 => shed += 1,
                        other => {
                            if errors == 0 {
                                eprintln!("bench_serve: unexpected status {other}: {}", r.body);
                            }
                            errors += 1;
                        }
                    }
                }
            }
            Err(e) => {
                if errors == 0 {
                    eprintln!("bench_serve: {e}");
                }
                errors += 1;
            }
        }
    }
    ModeReport {
        ok,
        shed,
        errors,
        reconnects: client.reconnects,
        wall: Duration::ZERO,
        latency: latency.snapshot(),
    }
}

/// Bind, warm, measure, and drain one server in the given net mode.
fn run_mode(net: NetMode, depth: usize, bodies: &Arc<Vec<String>>) -> ModeReport {
    run_mode_n(net, depth, CONNS, bodies)
}

fn run_mode_n(net: NetMode, depth: usize, conns: usize, bodies: &Arc<Vec<String>>) -> ModeReport {
    let engine = Arc::new(Engine::new(EngineConfig::from_env()));
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        // No straggler window: with a hot cache the batcher would
        // otherwise pace *both* modes to the same 2ms heartbeat and the
        // comparison would measure the timer, not the connection plane.
        batch_delay: Duration::ZERO,
        // Deep enough that admission never sheds: this run measures the
        // connection plane, not the overload policy.
        queue_depth: 16 * conns.max(CONNS),
        net,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, engine).expect("bind benchmark server");
    let addr = server.local_addr().expect("server addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Pre-warm: every distinct table through the model once, so the
    // measured window is pure cache hits on both sides.
    let mut warm = httpc::Client::new(addr, Duration::from_secs(60));
    for body in bodies.iter() {
        let r = warm.post("/v1/embed", body).expect("warmup request");
        assert_eq!(r.status, 200, "warmup answered {}: {}", r.status, r.body);
    }
    drop(warm);

    let phase = Arc::new(AtomicU8::new(PHASE_RAMP));
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let (bodies, phase) = (Arc::clone(bodies), Arc::clone(&phase));
            std::thread::spawn(move || worker(addr, bodies, c * 7, depth, phase))
        })
        .collect();
    std::thread::sleep(RAMP);
    phase.store(PHASE_MEASURE, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(WINDOW);
    phase.store(PHASE_STOP, Ordering::Relaxed);
    let window = started.elapsed();
    let mut report = ModeReport {
        ok: 0,
        shed: 0,
        errors: 0,
        reconnects: 0,
        wall: Duration::ZERO,
        latency: Histogram::default().snapshot(),
    };
    for w in workers {
        let r = w.join().expect("worker thread");
        report.ok += r.ok;
        report.shed += r.shed;
        report.errors += r.errors;
        report.reconnects += r.reconnects;
        report.latency.merge(&r.latency);
    }
    report.wall = window;

    handle.shutdown();
    let stats = server_thread.join().expect("server thread");
    assert_eq!(stats.jobs.outstanding(), 0, "drain left jobs outstanding in {} mode", net.as_str());
    report
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".into());
    println!("# Observatory — bench_serve: thread-per-connection vs epoll reactor");
    println!("# {CONNS} keep-alive connections, pipeline depth {PIPELINE}, {DISTINCT} cache-hot tables, {WINDOW:?} per mode");
    println!();

    let bodies: Arc<Vec<String>> = Arc::new((0..DISTINCT).map(embed_body).collect());

    let baseline_conns: usize =
        std::env::var("BENCH_THREAD_CONNS").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let thread = run_mode_n(NetMode::Thread, 1, baseline_conns, &bodies);
    println!(
        "thread: {} ok, {} shed, {} errors in {:.2}s -> {:.0} req/s (p50 {:.2} ms, p99 {:.2} ms)",
        thread.ok,
        thread.shed,
        thread.errors,
        thread.wall.as_secs_f64(),
        thread.rps(),
        thread.latency.p50_ns() / 1e6,
        thread.latency.p99_ns() / 1e6,
    );

    let epoll = run_mode(NetMode::Epoll, PIPELINE, &bodies);
    println!(
        "epoll:  {} ok, {} shed, {} errors in {:.2}s -> {:.0} req/s (p50 {:.2} ms, p99 {:.2} ms, {} reconnects)",
        epoll.ok,
        epoll.shed,
        epoll.errors,
        epoll.wall.as_secs_f64(),
        epoll.rps(),
        epoll.latency.p50_ns() / 1e6,
        epoll.latency.p99_ns() / 1e6,
        epoll.reconnects,
    );

    let speedup = epoll.rps() / thread.rps().max(1e-9);
    let epoll_p99_ms = epoll.latency.p99_ns() / 1e6;
    println!();
    println!(
        "speedup: {speedup:.2}x (gate: >= {GATE}x at {CONNS} conns); epoll p99 {epoll_p99_ms:.2} ms (slo {} ms)",
        SLO.as_millis(),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"conns\": {},\n",
            "  \"pipeline_depth\": {},\n",
            "  \"distinct_tables\": {},\n",
            "  \"window_seconds\": {:.2},\n",
            "  \"slo_ms\": {},\n",
            "  \"thread\": {{\"req_per_s\": {:.1}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n",
            "  \"epoll\": {{\"req_per_s\": {:.1}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"reconnects\": {}}},\n",
            "  \"speedup\": {:.2},\n",
            "  \"gate\": {:.1}\n",
            "}}\n"
        ),
        CONNS,
        PIPELINE,
        DISTINCT,
        WINDOW.as_secs_f64(),
        SLO.as_millis(),
        thread.rps(),
        thread.ok,
        thread.shed,
        thread.errors,
        thread.latency.p50_ns() / 1e6,
        thread.latency.p99_ns() / 1e6,
        epoll.rps(),
        epoll.ok,
        epoll.shed,
        epoll.errors,
        epoll.latency.p50_ns() / 1e6,
        epoll.latency.p99_ns() / 1e6,
        epoll.reconnects,
        speedup,
        GATE,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote -> {out_path}");

    assert_eq!(epoll.errors, 0, "reactor run must be error-free");
    assert!(
        speedup >= GATE,
        "epoll reactor must serve >= {GATE}x the thread baseline at {CONNS} keep-alive \
         connections (got {speedup:.2}x) — keep-alive or the reactor hot path regressed"
    );
    assert!(
        epoll_p99_ms <= SLO.as_millis() as f64,
        "reactor p99 {epoll_p99_ms:.2} ms exceeds the {} ms SLO under {CONNS} connections",
        SLO.as_millis(),
    );
}
