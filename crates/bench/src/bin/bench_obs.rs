//! `bench_obs` — observability overhead gate: emits `BENCH_obs.json`.
//!
//! ```text
//! bench_obs [out.json] [--concurrency N] [--requests N] [--rounds N]
//! ```
//!
//! Measures closed-loop `POST /v1/embed` throughput against two
//! in-process servers that differ only in observability posture:
//!
//! - **baseline**: profiler off, no flight-dump anomalies — the flight
//!   *ring* still records (it is always on by design), but nothing is
//!   sampled or written;
//! - **observed**: the span profiler sampling at 10 ms plus
//!   `OBSERVATORY_FLIGHT_DIR` armed, i.e. the full PR-gate posture.
//!
//! The profiler is process-global, so the postures run **sequentially**
//! (baseline first — its rounds must not be sampled); each posture gets
//! its own engine, a cache-filling warmup, then `--rounds` timed rounds
//! with the **best** kept — the standard noise-floor estimator under
//! external preemption. The gate is `observed >= 97%` of baseline; the
//! ratio is written to the JSON for the driver, and the run exits 1
//! only when requests fail outright (CI evaluates the ratio from the
//! artifact, where a rerun can distinguish noise from regression).

use observatory_bench::httpc;
use observatory_runtime::{Engine, EngineConfig};
use observatory_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISTINCT: usize = 32;
const ROWS: usize = 3;
const PROFILE_INTERVAL: Duration = Duration::from_millis(10);

fn embed_body(tag: usize) -> String {
    let ints: Vec<String> = (0..ROWS).map(|r| (tag * 31 + r).to_string()).collect();
    let texts: Vec<String> = (0..ROWS).map(|r| format!("\"item-{tag}-{r}\"")).collect();
    format!(
        r#"{{"model":"bert","level":"column","id":"obs-{tag}","table":{{"name":"obs{tag}","columns":[{{"header":"id","values":[{}]}},{{"header":"name","values":[{}]}}]}}}}"#,
        ints.join(","),
        texts.join(","),
    )
}

/// One closed-loop round: `concurrency` threads x `requests` each.
/// Returns (req/s, errors).
fn round(addr: SocketAddr, concurrency: usize, requests: usize) -> (f64, u64) {
    let bodies: Arc<Vec<String>> = Arc::new((0..DISTINCT).map(embed_body).collect());
    let started = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut errors = 0u64;
                for i in 0..requests {
                    let body = &bodies[(c * 17 + i) % bodies.len()];
                    match httpc::post(addr, "/v1/embed", body, Duration::from_secs(60)) {
                        Ok(r) if r.status == 200 => ok += 1,
                        Ok(r) => {
                            eprintln!("bench_obs: status {}: {}", r.status, r.body);
                            errors += 1;
                        }
                        Err(e) => {
                            eprintln!("bench_obs: {e}");
                            errors += 1;
                        }
                    }
                }
                (ok, errors)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for w in workers {
        let (o, e) = w.join().expect("worker thread");
        ok += o;
        errors += e;
    }
    (ok as f64 / started.elapsed().as_secs_f64().max(1e-9), errors)
}

struct PostureResult {
    best: f64,
    errors: u64,
    profiler_samples: u64,
}

/// Bind, warm up, run `rounds` timed rounds, drain. The observed
/// posture starts the 10 ms profiler inside `Server::run` and reports
/// its sample count back through the drain stats.
fn run_posture(
    label: &str,
    profile: bool,
    concurrency: usize,
    requests: usize,
    rounds: usize,
) -> PostureResult {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_batch: 8,
        batch_delay: Duration::from_micros(500),
        queue_depth: 4096,
        deadline: Duration::from_secs(120),
        handle_signals: false,
        profile,
        profile_interval: PROFILE_INTERVAL,
        ..ServeConfig::default()
    };
    let engine = Arc::new(Engine::new(EngineConfig::from_env()));
    let server = Server::bind(config, engine).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    httpc::await_healthy(addr, Duration::from_secs(20)).expect("server healthy");

    // Cache-filling warmup so timed rounds compare steady-state serving,
    // not first-touch encodes.
    let _ = round(addr, concurrency, requests.min(20));

    let mut best = 0.0f64;
    let mut errors = 0u64;
    for i in 0..rounds {
        let (tp, err) = round(addr, concurrency, requests);
        errors += err;
        best = best.max(tp);
        println!("{label} round {i}: {tp:.1} req/s");
    }
    handle.shutdown();
    let stats = thread.join().expect("server drains");
    let profiler_samples = stats.profile.as_ref().map_or(0, |p| p.samples);
    PostureResult { best, errors, profiler_samples }
}

fn flag_num(args: &[String], name: &str, default: usize) -> usize {
    args.windows(2).find(|w| w[0] == name).and_then(|w| w[1].parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".into());
    let concurrency = flag_num(&args, "--concurrency", 8);
    let requests = flag_num(&args, "--requests", 60);
    let rounds = flag_num(&args, "--rounds", 3);
    println!(
        "bench_obs: {concurrency} clients x {requests} requests x {rounds} rounds per posture"
    );

    // Baseline first: the profiler raises the obs level process-wide
    // when it starts, and that must not leak into the unobserved rounds.
    let baseline = run_posture("baseline", false, concurrency, requests, rounds);

    // The observed posture also arms flight dumps. A clean run produces
    // no anomalies, so the cost measured is the arming itself.
    let scratch =
        std::env::temp_dir().join(format!("observatory-bench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    std::env::set_var(observatory_obs::FLIGHT_DIR_ENV, &scratch);
    let observed = run_posture("observed", true, concurrency, requests, rounds);
    std::env::remove_var(observatory_obs::FLIGHT_DIR_ENV);
    let _ = std::fs::remove_dir_all(&scratch);

    let ratio = if baseline.best > 0.0 { observed.best / baseline.best } else { 0.0 };
    let pass = ratio >= 0.97;
    println!(
        "bench_obs: baseline {:.1} req/s, observed {:.1} req/s -> ratio {ratio:.3} \
         ({}, {} profiler samples)",
        baseline.best,
        observed.best,
        if pass { "pass >= 0.97" } else { "BELOW 0.97" },
        observed.profiler_samples,
    );

    let errors = baseline.errors + observed.errors;
    let json = format!(
        "{{\n  \"concurrency\": {concurrency},\n  \"requests_per_client\": {requests},\n  \
         \"rounds\": {rounds},\n  \"profile_interval_ms\": {},\n  \
         \"baseline_req_per_s\": {:.1},\n  \"observed_req_per_s\": {:.1},\n  \
         \"ratio\": {ratio:.4},\n  \"gate\": 0.97,\n  \"pass\": {pass},\n  \
         \"profiler_samples\": {},\n  \"errors\": {errors}\n}}\n",
        PROFILE_INTERVAL.as_millis(),
        baseline.best,
        observed.best,
        observed.profiler_samples,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
    if errors > 0 {
        std::process::exit(1);
    }
}
