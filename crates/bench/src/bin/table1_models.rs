//! Regenerates **Table 1**: overview of the table-embedding models and
//! their design specifications.

use observatory_bench::harness::banner;
use observatory_core::report::render_table;
use observatory_models::registry::specs;

fn main() {
    banner("Table 1: model design specifications", "paper §4.1, Table 1");
    let rows: Vec<Vec<String>> = specs()
        .into_iter()
        .map(|s| {
            vec![
                s.display.to_string(),
                if s.vanilla_lm { "LM" } else { "Table model" }.to_string(),
                s.input.to_string(),
                s.output_embedding.to_string(),
                s.downstream_task.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["Model", "Family", "Input", "Output Embedding", "Downstream Task"], &rows)
    );
}
