//! Regenerates the **§6 column-type prediction** experiment: fraction of
//! row-permuted tables whose semantic type predictions change (the paper
//! reports 34.0% ≥1, 12.8% ≥2, 5.4% ≥3 for DODUO over WikiTables).

use observatory_bench::harness::{banner, context, wiki_corpus, Scale};
use observatory_core::downstream::column_type::{prediction_flip_experiment, ColumnTypeClassifier};
use observatory_core::report::render_table;
use observatory_models::registry::model_by_name;

fn main() {
    banner(
        "Downstream: column-type prediction stability under row permutation",
        "paper §6 (P1/P2 connection) — DODUO flip rates, plus comparison models",
    );
    let scale = Scale::from_env();
    let corpus = wiki_corpus(scale);
    let ctx = context();
    let mut rows = Vec::new();
    for name in ["doduo", "bert", "roberta", "t5", "tapas"] {
        let model = model_by_name(name).unwrap();
        let clf = ColumnTypeClassifier::train(model.as_ref(), 3, ctx.seed);
        let stats =
            prediction_flip_experiment(model.as_ref(), &clf, &corpus, scale.permutations(), &ctx);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", stats.at_least_1 * 100.0),
            format!("{:.1}%", stats.at_least_2 * 100.0),
            format!("{:.1}%", stats.at_least_3 * 100.0),
            format!("{:.1}", stats.mean_columns),
            stats.permutations.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["model", "≥1 change", "≥2 changes", "≥3 changes", "cols/table", "permutations"],
            &rows
        )
    );
    println!("\npaper reference (DODUO, 1000 WikiTables, ≤1000 perms): 34.0% / 12.8% / 5.4%");
    println!("expected shape: row-order-sensitive models flip; the ≥1/≥2/≥3 fractions decay.");
}
