//! Regenerates **Table 3**: Spearman coefficients between the three value
//! overlap measures (containment, Jaccard, multiset Jaccard) and embedding
//! cosine similarity over joinable column pairs (NextiaJD-XS-like).

use observatory_bench::harness::{banner, context, join_pairs, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::join_rel::{pairs_to_corpus, JoinRelationship};
use observatory_core::report::{fmt, render_table};
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Table 3: Spearman ρ between overlap measures and embedding cosine",
        "paper §5.3, Table 3 — NextiaJD-XS, p-value < 0.01 flagged",
    );
    let corpus = pairs_to_corpus(&join_pairs(Scale::from_env()));
    let models = all_models();
    let reports = run_property(&JoinRelationship, &models, &corpus, &context());
    let measures = ["containment", "jaccard", "multiset_jaccard"];
    let mut headers = vec!["Measure"];
    let evaluated: Vec<_> = reports.iter().filter(|r| !r.scalars.is_empty()).collect();
    let display: Vec<String> = evaluated.iter().map(|r| r.model.clone()).collect();
    headers.extend(display.iter().map(String::as_str));
    let mut rows = Vec::new();
    for m in measures {
        let mut row = vec![m.replace('_', " ")];
        for r in &evaluated {
            let rho = r.scalar(&format!("spearman/{m}")).unwrap_or(f64::NAN);
            let p = r.scalar(&format!("p_value/{m}")).unwrap_or(f64::NAN);
            let sig = if p < 0.01 { "" } else { " (ns)" };
            row.push(format!("{}{}", fmt(rho), sig));
        }
        rows.push(row);
    }
    print!("{}", render_table(&headers, &rows));
    println!("\n(ns = not significant at p < 0.01; all paper coefficients were significant)");
    println!("expected shape: multiset Jaccard most positively correlated across models,");
    println!("because duplicates enter the embedding input but not the set-based measures.");
}
