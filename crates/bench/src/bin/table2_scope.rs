//! Regenerates **Table 2**: overview of datasets and models per property.

use observatory_bench::harness::banner;
use observatory_core::report::render_table;
use observatory_core::scope::{dataset_for, in_scope, PROPERTY_IDS};
use observatory_models::registry::MODEL_NAMES;

fn main() {
    banner("Table 2: dataset and model scope per property", "paper §4.2, Table 2");
    let names = [
        ("P1", "Row order insignificance"),
        ("P2", "Column order insignificance"),
        ("P3", "Join relationship"),
        ("P4", "Functional dependencies"),
        ("P5", "Sample fidelity"),
        ("P6", "Entity stability"),
        ("P7", "Perturbation robustness"),
        ("P8", "Heterogeneous context"),
    ];
    let rows: Vec<Vec<String>> = PROPERTY_IDS
        .iter()
        .map(|&p| {
            let excluded: Vec<&str> =
                MODEL_NAMES.iter().copied().filter(|m| !in_scope(p, m)).collect();
            let scope = if excluded.is_empty() {
                "All".to_string()
            } else {
                format!("Except {}", excluded.join(", "))
            };
            let full_name = names.iter().find(|(id, _)| *id == p).map(|(_, n)| *n).unwrap();
            vec![format!("{p} {full_name}"), dataset_for(p).to_string(), scope]
        })
        .collect();
    print!("{}", render_table(&["Property", "Dataset", "Models in Scope"], &rows));
}
