//! Regenerates the **§6 join discovery** experiment: T5 with sampled vs
//! full-value embeddings on a NextiaJD-like testbed. The paper reports
//! < ±3% precision/recall difference with > 7× faster indexing and > 2×
//! faster lookup at a ~5% sample.

use observatory_bench::harness::{banner, context, join_pairs, Scale};
use observatory_core::downstream::join_discovery::{run_join_discovery, JoinDiscoveryConfig};
use observatory_core::report::render_table;
use observatory_models::registry::model_by_name;

fn main() {
    banner(
        "Downstream: join discovery with sampled vs full-value embeddings",
        "paper §6 (P5 connection) — T5 over NextiaJD, sample ≈ 5% of rows",
    );
    let pairs = join_pairs(Scale::from_env());
    let model = model_by_name("t5").unwrap();
    let config = JoinDiscoveryConfig::default();
    let result = run_join_discovery(model.as_ref(), &pairs, &config, &context())
        .expect("T5 exposes column embeddings");
    let speedup = |full: u128, sampled: u128| {
        if sampled == 0 {
            "-".to_string()
        } else {
            format!("{:.1}x", full as f64 / sampled as f64)
        }
    };
    let rows = vec![
        vec![
            "full values".to_string(),
            format!("{:.3}", result.full.eval.mean_precision),
            format!("{:.3}", result.full.eval.mean_recall),
            format!("{}", result.full.index_micros),
            format!("{}", result.full.lookup_micros),
            String::new(),
        ],
        vec![
            format!("sample ({} values)", config.sample_size),
            format!("{:.3}", result.sampled.eval.mean_precision),
            format!("{:.3}", result.sampled.eval.mean_recall),
            format!("{}", result.sampled.index_micros),
            format!("{}", result.sampled.lookup_micros),
            format!(
                "index {} / lookup {}",
                speedup(result.full.index_micros, result.sampled.index_micros),
                speedup(result.full.lookup_micros, result.sampled.lookup_micros)
            ),
        ],
    ];
    print!(
        "{}",
        render_table(
            &["embedding", "precision", "recall", "index µs", "lookup µs", "speedup"],
            &rows
        )
    );
    println!(
        "\nΔprecision = {:+.3}, Δrecall = {:+.3} (paper: within ±3%)",
        result.sampled.eval.mean_precision - result.full.eval.mean_precision,
        result.sampled.eval.mean_recall - result.full.eval.mean_recall,
    );
}
