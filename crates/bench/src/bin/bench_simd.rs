//! Machine-readable SIMD-tier microbenchmark: emits `BENCH_simd.json`.
//!
//! Measures ns/op for the tier-dispatched kernels — `dot`, `softmax`
//! (the fastmath exp pass), `gemm` (`matmul`, serial) and a whole
//! 2-layer encoder forward — at the same seq×dim grid as the
//! `encoder_kernels` criterion bench, with every available tier forced
//! in turn (`scalar`, `sse2`, `avx2` where the CPU supports them).
//!
//! Same process, same buffers, tier forced via `simd::force_tier`: the
//! dispatch tier is the only variable between rows. Output is one JSON
//! document (written to the path in `argv[1]`, default
//! `BENCH_simd.json`) with per-row `ns_per_op` and per-kernel speedup
//! summaries; DESIGN.md §11's table quotes it directly.
//!
//! Methodology: per row, warm up, then repeat timed batches (each sized
//! to ≥ ~20 ms) and keep the **minimum** ns/op across batches — the
//! standard noise floor estimator for a single-core container where the
//! only perturbation is external preemption (which only ever slows a
//! batch down).

use observatory_bench::harness::banner;
use observatory_linalg::kernels;
use observatory_linalg::simd::{self, Tier};
use observatory_linalg::{parallel, reduce, Matrix, SplitMix64};
use observatory_transformer::config::TransformerConfig;
use observatory_transformer::encoder::{Encoder, TokenInput};
use std::hint::black_box;
use std::time::Instant;

const GRID: [(usize, usize); 4] = [(32, 64), (128, 64), (128, 128), (256, 128)];
const BATCH_TARGET_NS: u128 = 20_000_000; // ≥ 20 ms per timed batch
const BATCHES: usize = 5;

fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.next_normal_with(0.0, 0.5);
        }
    }
    m
}

/// Minimum ns/op over `BATCHES` auto-sized batches of `f`.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warmup + batch sizing: grow the iteration count until one batch
    // costs at least BATCH_TARGET_NS.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t.elapsed().as_nanos();
        if ns >= BATCH_TARGET_NS {
            break;
        }
        iters = (iters * 2).max((iters as u128 * BATCH_TARGET_NS / ns.max(1)) as u64 + 1);
    }
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn tier_label(tier: Tier) -> String {
    format!("{tier:?}").to_lowercase()
}

struct Row {
    kernel: &'static str,
    shape: String,
    tier: String,
    ns_per_op: f64,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_simd.json".into());
    banner("bench_simd: SIMD tier microbenchmarks", "DESIGN.md §11");
    parallel::set_default_jobs(1);
    let tiers = simd::available_tiers();
    let mut rows: Vec<Row> = Vec::new();

    for (seq, dim) in GRID {
        let shape = format!("seq{seq}_dim{dim}");
        let mut rng = SplitMix64::new(42);

        // dot: the reduction every kNN/LSH/stats scan is built from.
        let a: Vec<f64> = (0..dim).map(|_| rng.next_normal_with(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.next_normal_with(0.0, 1.0)).collect();
        for &tier in &tiers {
            let ns = time_ns(|| {
                black_box(reduce::dot_with_tier(black_box(&a), black_box(&b), tier));
            });
            rows.push(Row {
                kernel: "dot",
                shape: shape.clone(),
                tier: tier_label(tier),
                ns_per_op: ns,
            });
        }

        // softmax: one length-`seq` fastmath exp row, the attention inner pass.
        let logits: Vec<f64> = (0..seq).map(|_| rng.next_normal_with(0.0, 2.0)).collect();
        for &tier in &tiers {
            simd::force_tier(Some(tier));
            let ns = time_ns(|| {
                let mut xs = black_box(logits.clone());
                kernels::softmax_fast_inplace(&mut xs);
                black_box(xs);
            });
            // Subtract the clone cost so the row isolates the softmax pass.
            let clone_ns = time_ns(|| {
                black_box(black_box(logits.clone()));
            });
            simd::force_tier(None);
            rows.push(Row {
                kernel: "softmax",
                shape: shape.clone(),
                tier: tier_label(tier),
                ns_per_op: (ns - clone_ns).max(0.0),
            });
        }

        // gemm: seq×dim · dim×dim serial matmul (the encoder's QKV shape).
        let x = random_matrix(&mut rng, seq, dim);
        let w = random_matrix(&mut rng, dim, dim);
        for &tier in &tiers {
            simd::force_tier(Some(tier));
            let ns = time_ns(|| {
                black_box(kernels::matmul(black_box(&x), black_box(&w), 1));
            });
            simd::force_tier(None);
            rows.push(Row {
                kernel: "gemm",
                shape: shape.clone(),
                tier: tier_label(tier),
                ns_per_op: ns,
            });
        }
    }

    // Whole-encoder forward: 2 layers at the two encode-bench shapes.
    for (seq, dim) in [(128usize, 64usize), (256, 64)] {
        let shape = format!("seq{seq}_dim{dim}");
        let encoder = Encoder::new(TransformerConfig {
            dim,
            n_heads: 4,
            n_layers: 2,
            ffn_dim: 2 * dim,
            max_len: seq,
            vocab_size: 512,
            seed_label: "bench-simd".into(),
            ..Default::default()
        });
        let tokens: Vec<TokenInput> =
            (0..seq).map(|i| TokenInput::plain((i % 512) as u32)).collect();
        for &tier in &tiers {
            simd::force_tier(Some(tier));
            let ns = time_ns(|| {
                black_box(encoder.encode(black_box(&tokens)));
            });
            simd::force_tier(None);
            rows.push(Row {
                kernel: "encode",
                shape: shape.clone(),
                tier: tier_label(tier),
                ns_per_op: ns,
            });
        }
    }
    parallel::set_default_jobs(0);

    // Per-kernel speedup of the widest tier over scalar (min/max across shapes).
    let widest = tier_label(*tiers.last().expect("at least the scalar tier"));
    let mut speedups = String::new();
    for kernel in ["dot", "softmax", "gemm", "encode"] {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for r in rows.iter().filter(|r| r.kernel == kernel && r.tier == widest) {
            if let Some(s) =
                rows.iter().find(|p| p.kernel == kernel && p.shape == r.shape && p.tier == "scalar")
            {
                if r.ns_per_op > 0.0 {
                    let f = s.ns_per_op / r.ns_per_op;
                    lo = lo.min(f);
                    hi = hi.max(f);
                }
            }
        }
        if hi > 0.0 {
            if !speedups.is_empty() {
                speedups.push(',');
            }
            speedups.push_str(&format!(
                "\"{kernel}\":{{\"tier\":\"{widest}\",\"min\":{lo:.2},\"max\":{hi:.2}}}"
            ));
            println!("{kernel:8} {widest} over scalar: {lo:.2}x – {hi:.2}x");
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"simd\": \"{}\",\n", simd::decision().describe()));
    json.push_str(&format!(
        "  \"tiers\": [{}],\n",
        tiers.iter().map(|&t| format!("\"{}\"", tier_label(t))).collect::<Vec<_>>().join(",")
    ));
    json.push_str("  \"unit\": \"ns_per_op\",\n");
    json.push_str(&format!("  \"speedups\": {{{speedups}}},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\":\"{}\",\"shape\":\"{}\",\"tier\":\"{}\",\"ns_per_op\":{:.1}}}{}\n",
            r.kernel,
            r.shape,
            r.tier,
            r.ns_per_op,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_simd.json");
    println!("wrote {} rows -> {out_path}", rows.len());
}
