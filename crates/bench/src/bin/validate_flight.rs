//! `validate_flight` — CI gate for the request-tracing / flight-recorder
//! / profiler surface of `observatory serve`.
//!
//! ```text
//! validate_flight <path-to-observatory-binary>
//! ```
//!
//! Spawns the real binary with a zero deadline (so every embed expires
//! deterministically) and `OBSERVATORY_FLIGHT_DIR` pointing at a scratch
//! directory, then checks the whole observability loop end to end:
//!
//! 1. a client-supplied `x-request-id` comes back on the 408, with an
//!    `x-stage-us` breakdown naming all five tiers;
//! 2. the induced deadline violation makes the flight recorder dump a
//!    `flight-deadline-*.json` that parses as a Chrome trace and carries
//!    an `expired` event with that exact request id and all five stage
//!    timing keys;
//! 3. `GET /debug/flight` serves the same window on demand;
//! 4. `GET /debug/profile` serves parseable folded stacks and
//!    `/debug/profile/top` a self-time table (profiler enabled via
//!    `--profile-out`);
//! 5. SIGTERM drains cleanly (exit 0) and the folded profile lands at
//!    the `--profile-out` path.
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure.

use observatory_bench::httpc;
use observatory_obs::json::{parse, Json};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);
const RID: &str = "flight-proof-1";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(bin) = args.first() else {
        eprintln!("usage: validate_flight <path-to-observatory-binary>");
        std::process::exit(2);
    };
    let scratch =
        std::env::temp_dir().join(format!("observatory-flight-gate-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("validate_flight: cannot create {}: {e}", scratch.display());
        std::process::exit(1);
    }
    let result = run(bin, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    if let Err(e) = result {
        eprintln!("validate_flight: {e}");
        std::process::exit(1);
    }
    println!("validate_flight: ok");
}

fn embed_body() -> String {
    r#"{"model":"bert","level":"column","id":"fl-1",
      "table":{"name":"flight","columns":[
        {"header":"id","values":[1,2,3]},
        {"header":"name","values":["a","b","c"]}]}}"#
        .to_string()
}

fn run(bin: &str, scratch: &Path) -> Result<(), String> {
    let profile_out = scratch.join("profile.folded");
    let (mut child, addr) = spawn_serve(bin, scratch, &profile_out)?;
    let result = drive(addr, scratch);
    let shutdown = stop(&mut child);
    result?;
    shutdown?;
    if !profile_out.is_file() {
        return Err(format!("--profile-out was not written to {}", profile_out.display()));
    }
    println!("profile-out: ok ({})", profile_out.display());
    Ok(())
}

fn drive(addr: SocketAddr, scratch: &Path) -> Result<(), String> {
    httpc::await_healthy(addr, Duration::from_secs(30))?;

    // 1. Induce the deadline violation; the 408 must still carry the
    // request identity and the measured queue time.
    let r = httpc::request_with_headers(
        addr,
        "POST",
        "/v1/embed",
        &[("x-request-id", RID)],
        &embed_body(),
        TIMEOUT,
    )?;
    if r.status != 408 {
        return Err(format!("zero deadline answered {} (wanted 408): {}", r.status, r.body));
    }
    if r.header("x-request-id") != Some(RID) {
        return Err(format!("408 did not echo the request id: {}", r.head));
    }
    let stages =
        r.header("x-stage-us").ok_or_else(|| format!("408 missing x-stage-us: {}", r.head))?;
    for tier in ["queue=", "batch_wait=", "encode=", "store=", "write="] {
        if !stages.contains(tier) {
            return Err(format!("x-stage-us missing '{tier}': {stages}"));
        }
    }
    println!("deadline 408: ok (id echoed, stages: {stages})");

    // 2. The anomaly dump: a flight-deadline-*.json carrying the slow
    // request's id with all five stage timings.
    let dump = await_dump(scratch, "flight-deadline-")?;
    let text =
        std::fs::read_to_string(&dump).map_err(|e| format!("read {}: {e}", dump.display()))?;
    check_flight_doc(&text, true).map_err(|e| format!("{}: {e}", dump.display()))?;
    println!("flight dump: ok ({})", dump.display());

    // 3. The same window on demand.
    let r = httpc::get(addr, "/debug/flight", TIMEOUT)?;
    if r.status != 200 {
        return Err(format!("/debug/flight answered {}", r.status));
    }
    check_flight_doc(&r.body, true).map_err(|e| format!("/debug/flight: {e}"))?;
    println!("/debug/flight: ok");

    // 4. Profiler surface: folded stacks parse line by line, and the
    // top table answers. Spin a few cache-hit embeds first so the
    // sampler has live spans to catch, then poll briefly — sampling is
    // statistical.
    let deadline = Instant::now() + Duration::from_secs(10);
    let folded = loop {
        let _ = httpc::post(addr, "/v1/embed", &embed_body(), TIMEOUT);
        let r = httpc::get(addr, "/debug/profile", TIMEOUT)?;
        if r.status != 200 {
            return Err(format!("/debug/profile answered {}: {}", r.status, r.body));
        }
        if !r.body.trim().is_empty() || Instant::now() >= deadline {
            break r.body;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    for line in folded.lines().filter(|l| !l.trim().is_empty()) {
        let (stack, count) =
            line.rsplit_once(' ').ok_or_else(|| format!("bad folded line '{line}'"))?;
        count.parse::<u64>().map_err(|_| format!("bad folded count in '{line}'"))?;
        if stack.is_empty() {
            return Err(format!("empty stack in folded line '{line}'"));
        }
    }
    let r = httpc::get(addr, "/debug/profile/top", TIMEOUT)?;
    if r.status != 200 {
        return Err(format!("/debug/profile/top answered {}", r.status));
    }
    println!("/debug/profile: ok ({} folded lines)", folded.lines().count());
    Ok(())
}

/// Parse a flight document and check the expired event for `RID` with
/// all five stage keys as numbers.
fn check_flight_doc(text: &str, want_expired: bool) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc.get("traceEvents").and_then(Json::as_array).ok_or("no traceEvents array")?;
    if !want_expired {
        return Ok(());
    }
    let expired = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("expired")
                && e.get("args").and_then(|a| a.get("request_id")).and_then(Json::as_str)
                    == Some(RID)
        })
        .ok_or(format!("no expired event for request id '{RID}'"))?;
    let args = expired.get("args").ok_or("expired event has no args")?;
    for key in observatory_obs::STAGE_NAMES {
        if args.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("expired event missing stage '{key}'"));
        }
    }
    Ok(())
}

/// Poll the scratch dir for the first dump file with the given prefix.
fn await_dump(dir: &Path, prefix: &str) -> Result<PathBuf, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let found = std::fs::read_dir(dir)
            .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".json"))
            });
        if let Some(p) = found {
            return Ok(p);
        }
        if Instant::now() >= deadline {
            return Err(format!("no {prefix}*.json appeared in {}", dir.display()));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Spawn `observatory serve` with a zero deadline, flight dumps into
/// `scratch` and the profiler on; scrape the banner for the ephemeral
/// address.
fn spawn_serve(
    bin: &str,
    scratch: &Path,
    profile_out: &Path,
) -> Result<(Child, SocketAddr), String> {
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(bin)
        .args(["serve", "--addr", "127.0.0.1:0", "--deadline-ms", "0"])
        .arg("--profile-out")
        .arg(profile_out)
        .args(["--profile-interval-ms", "5"])
        .env(observatory_obs::FLIGHT_DIR_ENV, scratch)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {bin}: {e}"))?;
    let stdout = child.stdout.take().ok_or("stdout not piped")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read banner: {e}"))?;
    let addr_raw = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| format!("no address in banner: {line:?}"))?
        .to_string();
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut sink);
    });
    let addr = httpc::resolve(&addr_raw)?;
    Ok((child, addr))
}

/// SIGTERM the server and require a clean drain (exit 0).
fn stop(child: &mut Child) -> Result<(), String> {
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .map_err(|e| format!("kill: {e}"))?;
    if !term.success() {
        let _ = child.kill();
        return Err("kill -TERM failed".into());
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().map_err(|e| format!("try_wait: {e}"))? {
            if status.code() != Some(0) {
                return Err(format!("server exited {status:?} (wanted 0)"));
            }
            println!("drain: ok (exit 0)");
            return Ok(());
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            return Err("server did not exit within 30s of SIGTERM".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
