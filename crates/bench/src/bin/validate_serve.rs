//! `validate_serve` — CI gate for the embedding service.
//!
//! ```text
//! validate_serve <host:port>
//! ```
//!
//! Runs a pure-Rust conformance pass against a live `observatory serve`
//! process (no curl/jq in the loop — responses are parsed with the
//! workspace's own JSON parser and Prometheus validator):
//!
//! 1. `GET /healthz` answers 200 with `status: "ok"` (polled, so the
//!    harness can start the server as a sibling process);
//! 2. `POST /v1/embed` round-trips a small table: 200, echoed `id`,
//!    correct `count`, non-empty finite vectors, and a repeat request is
//!    bit-identical (the engine cache and the encode path are
//!    deterministic end to end);
//! 3. `POST /v1/knn` ranks an obvious nearest neighbour first;
//! 4. malformed JSON answers 400, an unknown model answers 400, an
//!    unknown route answers 404 — errors are *answered*, never dropped;
//! 5. `GET /metrics` parses as a valid Prometheus exposition carrying
//!    both the engine families and the server families.
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure.

use observatory_bench::httpc;
use observatory_obs::json::{parse, Json};
use std::net::SocketAddr;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr_raw) = args.first() else {
        eprintln!("usage: validate_serve <host:port>");
        std::process::exit(2);
    };
    let addr = match httpc::resolve(addr_raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("validate_serve: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(addr) {
        eprintln!("validate_serve: {e}");
        std::process::exit(1);
    }
    println!("validate_serve: ok");
}

const EMBED: &str = r#"{"model":"bert","level":"column","id":"smoke-1",
  "table":{"name":"smoke","columns":[
    {"header":"id","values":[1,2,3]},
    {"header":"name","values":["alpha","beta","gamma"]}]}}"#;

fn run(addr: SocketAddr) -> Result<(), String> {
    // 1. Liveness.
    let health = httpc::await_healthy(addr, Duration::from_secs(30))?;
    let h = parse(&health.body).map_err(|e| format!("healthz body invalid: {e}"))?;
    if h.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("healthz status not ok: {}", health.body));
    }
    println!("healthz: ok ({})", health.body.trim());

    // 2. Embed round trip + determinism.
    let first = embed_ok(addr)?;
    let second = embed_ok(addr)?;
    if first != second {
        return Err("repeated /v1/embed responses differ byte-for-byte".into());
    }
    println!("embed: ok (deterministic, {} bytes)", first.len());

    // 3. kNN sanity.
    let knn = httpc::post(
        addr,
        "/v1/knn",
        r#"{"k":1,"items":[{"key":"x","vector":[1,0]},{"key":"y","vector":[0,1]}],"queries":[[0.95,0.05]]}"#,
        TIMEOUT,
    )?;
    if knn.status != 200 {
        return Err(format!("knn answered {}: {}", knn.status, knn.body));
    }
    let v = parse(&knn.body).map_err(|e| format!("knn body invalid: {e}"))?;
    let top = v
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r.first())
        .and_then(Json::as_array)
        .and_then(|hits| hits.first())
        .and_then(|hit| hit.get("key"))
        .and_then(Json::as_str);
    if top != Some("x") {
        return Err(format!("knn ranked {top:?} first, expected 'x': {}", knn.body));
    }
    println!("knn: ok");

    // 4. Error paths are answered.
    for (path, body, want) in [
        ("/v1/embed", "{broken", 400u16),
        (
            "/v1/embed",
            r#"{"model":"no-such-model","table":{"columns":[{"header":"c","values":[1]}]}}"#,
            400,
        ),
        ("/v1/nope", "{}", 404),
    ] {
        let r = httpc::post(addr, path, body, TIMEOUT)?;
        if r.status != want {
            return Err(format!("POST {path} answered {} (wanted {want}): {}", r.status, r.body));
        }
    }
    println!("error paths: ok (400/400/404)");

    // 5. Metrics exposition.
    let metrics = httpc::get(addr, "/metrics", TIMEOUT)?;
    if metrics.status != 200 {
        return Err(format!("metrics answered {}", metrics.status));
    }
    let summary = observatory_obs::prom::validate(&metrics.body)
        .map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    for family in [
        "observatory_run_info",
        "observatory_encodes_total",
        "observatory_cache_lookups_total",
        "observatory_server_requests_total",
        "observatory_server_queue_depth",
        "observatory_server_shed_total",
        "observatory_server_batches_total",
        "observatory_server_request_latency_seconds_bucket",
    ] {
        if !summary.has(family) {
            return Err(format!("/metrics missing family {family}"));
        }
    }
    println!("metrics: ok ({} families, {} samples)", summary.metrics.len(), summary.samples);
    Ok(())
}

/// POST the fixed embed request; verify the schema; return the raw body.
fn embed_ok(addr: SocketAddr) -> Result<String, String> {
    let r = httpc::post(addr, "/v1/embed", EMBED, TIMEOUT)?;
    if r.status != 200 {
        return Err(format!("embed answered {}: {}", r.status, r.body));
    }
    let v = parse(&r.body).map_err(|e| format!("embed body invalid: {e}"))?;
    if v.get("id").and_then(Json::as_str) != Some("smoke-1") {
        return Err(format!("embed did not echo the id: {}", r.body));
    }
    if v.get("count").and_then(Json::as_f64) != Some(2.0) {
        return Err(format!("embed count != 2: {}", r.body));
    }
    let embeddings = v
        .get("embeddings")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("embed has no embeddings array: {}", r.body))?;
    if embeddings.len() != 2 {
        return Err(format!("expected 2 column vectors, got {}", embeddings.len()));
    }
    for (i, vec) in embeddings.iter().enumerate() {
        let arr = vec
            .as_array()
            .ok_or_else(|| format!("embeddings[{i}] is not an array (null readout?)"))?;
        if arr.is_empty() {
            return Err(format!("embeddings[{i}] is empty"));
        }
        for x in arr {
            let f = x.as_f64().ok_or_else(|| format!("embeddings[{i}] holds a non-number"))?;
            if !f.is_finite() {
                return Err(format!("embeddings[{i}] holds a non-finite value"));
            }
        }
    }
    Ok(r.body)
}
