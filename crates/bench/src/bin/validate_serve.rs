//! `validate_serve` — CI gate for the embedding service.
//!
//! ```text
//! validate_serve <host:port>
//! ```
//!
//! Runs a pure-Rust conformance pass against a live `observatory serve`
//! process (no curl/jq in the loop — responses are parsed with the
//! workspace's own JSON parser and Prometheus validator):
//!
//! 1. `GET /healthz` answers 200 with `status: "ok"` (polled, so the
//!    harness can start the server as a sibling process);
//! 2. `POST /v1/embed` round-trips a small table: 200, echoed `id`,
//!    correct `count`, non-empty finite vectors, and a repeat request is
//!    bit-identical (the engine cache and the encode path are
//!    deterministic end to end);
//! 3. `POST /v1/knn` ranks an obvious nearest neighbour first;
//! 4. malformed JSON answers 400, an unknown model answers 400, an
//!    unknown route answers 404 — errors are *answered*, never dropped;
//! 5. `GET /metrics` parses as a valid Prometheus exposition carrying
//!    both the engine families and the server families (including the
//!    connection gauges/counters);
//! 6. keep-alive conformance: a `Connection: keep-alive` client rides
//!    one TCP connection across many requests, pipelined requests come
//!    back in order, a request without the keep-alive token is answered
//!    `Connection: close` and the socket actually closes, and an
//!    HTTP/1.0 request defaults to close.
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure.

use observatory_bench::httpc;
use observatory_obs::json::{parse, Json};
use std::net::SocketAddr;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr_raw) = args.first() else {
        eprintln!("usage: validate_serve <host:port>");
        std::process::exit(2);
    };
    let addr = match httpc::resolve(addr_raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("validate_serve: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(addr) {
        eprintln!("validate_serve: {e}");
        std::process::exit(1);
    }
    println!("validate_serve: ok");
}

const EMBED: &str = r#"{"model":"bert","level":"column","id":"smoke-1",
  "table":{"name":"smoke","columns":[
    {"header":"id","values":[1,2,3]},
    {"header":"name","values":["alpha","beta","gamma"]}]}}"#;

fn run(addr: SocketAddr) -> Result<(), String> {
    // 1. Liveness.
    let health = httpc::await_healthy(addr, Duration::from_secs(30))?;
    let h = parse(&health.body).map_err(|e| format!("healthz body invalid: {e}"))?;
    if h.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("healthz status not ok: {}", health.body));
    }
    println!("healthz: ok ({})", health.body.trim());

    // 2. Embed round trip + determinism.
    let first = embed_ok(addr)?;
    let second = embed_ok(addr)?;
    if first != second {
        return Err("repeated /v1/embed responses differ byte-for-byte".into());
    }
    println!("embed: ok (deterministic, {} bytes)", first.len());

    // 3. kNN sanity.
    let knn = httpc::post(
        addr,
        "/v1/knn",
        r#"{"k":1,"items":[{"key":"x","vector":[1,0]},{"key":"y","vector":[0,1]}],"queries":[[0.95,0.05]]}"#,
        TIMEOUT,
    )?;
    if knn.status != 200 {
        return Err(format!("knn answered {}: {}", knn.status, knn.body));
    }
    let v = parse(&knn.body).map_err(|e| format!("knn body invalid: {e}"))?;
    let top = v
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r.first())
        .and_then(Json::as_array)
        .and_then(|hits| hits.first())
        .and_then(|hit| hit.get("key"))
        .and_then(Json::as_str);
    if top != Some("x") {
        return Err(format!("knn ranked {top:?} first, expected 'x': {}", knn.body));
    }
    println!("knn: ok");

    // 4. Error paths are answered.
    for (path, body, want) in [
        ("/v1/embed", "{broken", 400u16),
        (
            "/v1/embed",
            r#"{"model":"no-such-model","table":{"columns":[{"header":"c","values":[1]}]}}"#,
            400,
        ),
        ("/v1/nope", "{}", 404),
    ] {
        let r = httpc::post(addr, path, body, TIMEOUT)?;
        if r.status != want {
            return Err(format!("POST {path} answered {} (wanted {want}): {}", r.status, r.body));
        }
    }
    println!("error paths: ok (400/400/404)");

    // 5. Metrics exposition.
    let metrics = httpc::get(addr, "/metrics", TIMEOUT)?;
    if metrics.status != 200 {
        return Err(format!("metrics answered {}", metrics.status));
    }
    let summary = observatory_obs::prom::validate(&metrics.body)
        .map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    for family in [
        "observatory_run_info",
        "observatory_encodes_total",
        "observatory_cache_lookups_total",
        "observatory_server_requests_total",
        "observatory_server_queue_depth",
        "observatory_server_shed_total",
        "observatory_server_batches_total",
        "observatory_server_request_latency_seconds_bucket",
    ] {
        if !summary.has(family) {
            return Err(format!("/metrics missing family {family}"));
        }
    }
    for family in ["observatory_server_connections", "observatory_server_accepted_total"] {
        if !summary.has(family) {
            return Err(format!("/metrics missing connection family {family}"));
        }
    }
    println!("metrics: ok ({} families, {} samples)", summary.metrics.len(), summary.samples);

    // 6. Keep-alive, pipelining, and Connection-header conformance.
    keep_alive_conformance(addr)?;
    Ok(())
}

/// Over-the-wire checks for the HTTP/1.1 connection-management rules
/// both net modes must follow (the thread path answers every request
/// with `Connection: close`; the epoll path honours keep-alive — either
/// way the advertised header must match what the socket does).
fn keep_alive_conformance(addr: SocketAddr) -> Result<(), String> {
    // A keep-alive client: every response must echo its connection
    // decision, and when it says keep-alive the next request must reuse
    // the socket (Client counts reuse vs reconnect).
    let mut client = httpc::Client::new(addr, TIMEOUT);
    let mut kept = 0u32;
    for i in 0..5 {
        let r = client.get("/healthz")?;
        if r.status != 200 {
            return Err(format!("keep-alive healthz #{i} answered {}", r.status));
        }
        match r.header("connection") {
            Some("keep-alive") => kept += 1,
            Some("close") => {}
            other => return Err(format!("healthz #{i} connection header: {other:?}")),
        }
    }
    if kept > 0 && client.reused < u64::from(kept.saturating_sub(1)) {
        return Err(format!(
            "server advertised keep-alive {kept} times but only {} requests reused the \
             connection ({} reconnects)",
            client.reused, client.reconnects
        ));
    }
    println!(
        "keep-alive: ok ({kept}/5 kept, {} reused, {} reconnects)",
        client.reused, client.reconnects
    );

    // Pipelined embeds on one socket must come back in request order
    // (each response echoes the id its request carried). Only expected
    // when the server advertises keep-alive — the thread path closes
    // after every response, so there is no socket to pipeline on.
    if kept == 0 {
        client.close();
        println!("pipelining: skipped (server closes after every response)");
        expect_close_checks(addr)?;
        return Ok(());
    }
    let bodies: Vec<String> = (0..4)
        .map(|i| {
            format!(
                r#"{{"model":"bert","level":"table","id":"pipe-{i}","table":{{"name":"p{i}","columns":[{{"header":"c","values":[{i},{}]}}]}}}}"#,
                i + 1
            )
        })
        .collect();
    let refs: Vec<&str> = bodies.iter().map(String::as_str).collect();
    let responses = client.post_pipelined("/v1/embed", &refs)?;
    if responses.len() != refs.len() {
        return Err(format!("pipelined: {} responses to {} requests", responses.len(), refs.len()));
    }
    for (i, r) in responses.iter().enumerate() {
        if r.status != 200 {
            return Err(format!("pipelined #{i} answered {}: {}", r.status, r.body));
        }
        let v = parse(&r.body).map_err(|e| format!("pipelined #{i} body invalid: {e}"))?;
        let id = v.get("id").and_then(Json::as_str);
        if id != Some(format!("pipe-{i}").as_str()) {
            return Err(format!("pipelined response #{i} carries id {id:?} (out of order?)"));
        }
    }
    client.close();
    println!("pipelining: ok ({} in-order responses)", responses.len());
    expect_close_checks(addr)?;
    Ok(())
}

/// Both net modes: a request without the keep-alive token (or HTTP/1.0)
/// must be answered `Connection: close` and the socket must close.
fn expect_close_checks(addr: SocketAddr) -> Result<(), String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    s.set_read_timeout(Some(TIMEOUT)).map_err(|e| e.to_string())?;
    s.write_all(b"GET /healthz HTTP/1.1\r\nHost: v\r\n\r\n").map_err(|e| e.to_string())?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).map_err(|e| format!("socket left open after close: {e}"))?;
    expect_close_header(&raw, "HTTP/1.1 without keep-alive")?;

    // HTTP/1.0 defaults to close even when nothing is specified.
    let mut s = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    s.set_read_timeout(Some(TIMEOUT)).map_err(|e| e.to_string())?;
    s.write_all(b"GET /healthz HTTP/1.0\r\nHost: v\r\n\r\n").map_err(|e| e.to_string())?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).map_err(|e| format!("socket left open after close: {e}"))?;
    expect_close_header(&raw, "HTTP/1.0")?;
    println!("connection header: ok (close honoured on 1.1-no-token and 1.0)");
    Ok(())
}

fn expect_close_header(raw: &str, what: &str) -> Result<(), String> {
    if !raw.starts_with("HTTP/1.1 200") {
        let line = raw.lines().next().unwrap_or("");
        return Err(format!("{what}: status line {line:?}"));
    }
    let head = raw.split("\r\n\r\n").next().unwrap_or("");
    let conn = head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim().eq_ignore_ascii_case("connection").then(|| v.trim().to_string())
    });
    if conn.as_deref() != Some("close") {
        return Err(format!("{what}: connection header {conn:?}, wanted close"));
    }
    Ok(())
}

/// POST the fixed embed request; verify the schema; return the raw body.
fn embed_ok(addr: SocketAddr) -> Result<String, String> {
    let r = httpc::post(addr, "/v1/embed", EMBED, TIMEOUT)?;
    if r.status != 200 {
        return Err(format!("embed answered {}: {}", r.status, r.body));
    }
    let v = parse(&r.body).map_err(|e| format!("embed body invalid: {e}"))?;
    if v.get("id").and_then(Json::as_str) != Some("smoke-1") {
        return Err(format!("embed did not echo the id: {}", r.body));
    }
    if v.get("count").and_then(Json::as_f64) != Some(2.0) {
        return Err(format!("embed count != 2: {}", r.body));
    }
    let embeddings = v
        .get("embeddings")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("embed has no embeddings array: {}", r.body))?;
    if embeddings.len() != 2 {
        return Err(format!("expected 2 column vectors, got {}", embeddings.len()));
    }
    for (i, vec) in embeddings.iter().enumerate() {
        let arr = vec
            .as_array()
            .ok_or_else(|| format!("embeddings[{i}] is not an array (null readout?)"))?;
        if arr.is_empty() {
            return Err(format!("embeddings[{i}] is empty"));
        }
        for x in arr {
            let f = x.as_f64().ok_or_else(|| format!("embeddings[{i}] holds a non-number"))?;
            if !f.is_finite() {
                return Err(format!("embeddings[{i}] holds a non-finite value"));
            }
        }
    }
    Ok(r.body)
}
