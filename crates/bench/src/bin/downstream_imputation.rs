//! Regenerates the **§6 P4 connection**: "Not preserving functional
//! dependencies → imputed values may not maintain functional dependencies
//! between attributes" — as an executable imputation experiment with a
//! random-donor baseline.

use observatory_bench::harness::{banner, context, spider_corpus, Scale};
use observatory_core::downstream::imputation::{impute_randomly, impute_with_embeddings};
use observatory_core::report::render_table;
use observatory_models::registry::model_by_name;

fn main() {
    banner(
        "Downstream: FD-aware imputation audit",
        "paper §6 (P4 connection) — nearest-determinant imputation over mined FDs",
    );
    let corpus = spider_corpus(Scale::from_env());
    let ctx = context();
    let mask = 0.4;
    let mut rows = Vec::new();
    for name in ["bert", "roberta", "t5", "tapas", "doduo"] {
        let model = model_by_name(name).unwrap();
        if let Some(r) = impute_with_embeddings(model.as_ref(), &corpus, mask, &ctx) {
            rows.push(vec![
                name.to_string(),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.1}%", r.fd_violation_rate * 100.0),
                r.imputed.to_string(),
            ]);
        }
    }
    if let Some(r) = impute_randomly(&corpus, mask, &ctx) {
        rows.push(vec![
            "random-donor baseline".to_string(),
            format!("{:.1}%", r.accuracy * 100.0),
            format!("{:.1}%", r.fd_violation_rate * 100.0),
            r.imputed.to_string(),
        ]);
    }
    print!("{}", render_table(&["imputer", "accuracy", "FD violations", "cells imputed"], &rows));
    println!("\nexpected shape: embedding imputers beat the random baseline on accuracy,");
    println!("but their violation rates are NOT zero — embeddings do not encode the");
    println!("dependency (Property 4), so imputation can break it. The baseline shows");
    println!("how bad it gets with no signal at all.");
}
