//! Regenerates **Figure 8**: PCA projections of column embeddings across
//! column permutations of the same table as Figure 6 — the paper finds
//! larger spread (across *all* columns) than under row shuffling.

use observatory_bench::harness::banner;
use observatory_core::props::common::invert_permutation;
use observatory_linalg::pca::Pca;
use observatory_linalg::Matrix;
use observatory_models::registry::model_by_name;
use observatory_table::perm::{permute_columns, sample_permutations};

fn main() {
    banner(
        "Figure 8: PCA of column embeddings under column shuffling",
        "paper §5.2, Figure 8 — 6-column table, all 720 column permutations",
    );
    let table = observatory_data::wikitables::pca_demo_table();
    let perms = sample_permutations(table.num_cols(), 1000, 42);
    println!("table: {} ({} permutations)\n", table.name, perms.len());
    let mut summary = Vec::new();
    for name in ["bert", "t5"] {
        let model = model_by_name(name).unwrap();
        println!("## {}", model.display_name());
        let encodings: Vec<_> =
            perms.iter().map(|p| model.encode_table(&permute_columns(&table, p))).collect();
        let inverses: Vec<Vec<usize>> = perms.iter().map(|p| invert_permutation(p)).collect();
        let mut anisotropies = Vec::new();
        let mut pc1_vars = Vec::new();
        for j in 0..table.num_cols() {
            let embs: Vec<Vec<f64>> =
                encodings.iter().zip(&inverses).filter_map(|(e, inv)| e.column(inv[j])).collect();
            if embs.len() < 2 {
                continue;
            }
            let pca = Pca::fit(&Matrix::from_rows(&embs), 2);
            let anis = if pca.explained_variance[1] > 1e-12 {
                pca.explained_variance[0] / pca.explained_variance[1]
            } else {
                f64::INFINITY
            };
            println!(
                "column '{}': pc1 var {:.4}, pc2 var {:.4}, anisotropy = {:.1}",
                table.columns[j].header, pca.explained_variance[0], pca.explained_variance[1], anis
            );
            anisotropies.push(anis);
            pc1_vars.push(pca.explained_variance[0]);
        }
        summary.push((name, mean(&pc1_vars)));
        println!();
    }
    println!("mean PC1 variance per model (compare against Figure 6's row-shuffle runs —");
    println!("the paper reports larger spread under column shuffling):");
    for (name, v) in summary {
        println!("  {name}: {v:.4}");
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}
