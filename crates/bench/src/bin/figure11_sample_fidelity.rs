//! Regenerates **Figure 11**: sample-fidelity distributions of column
//! embeddings at sampling ratios 0.25 / 0.5 / 0.75, per model.

use observatory_bench::harness::{banner, context, wiki_corpus, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::sample_fidelity::SampleFidelity;
use observatory_core::report::render_report;
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Figure 11: sample fidelity at ratios 0.25 / 0.5 / 0.75",
        "paper §5.5, Figure 11 — WikiTables columns, uniform sampling",
    );
    let corpus = wiki_corpus(Scale::from_env());
    let models = all_models();
    let property = SampleFidelity::default();
    for report in run_property(&property, &models, &corpus, &context()) {
        if report.records.is_empty() {
            continue;
        }
        print!("{}", render_report(&report));
    }
    println!("expected shape: fidelity rises with the sampling ratio for every model;");
    println!("vanilla LMs sit higher than table models; TaBERT is near-perfect (its");
    println!("first-3-rows input makes sampled and full inputs largely coincide).");
}
