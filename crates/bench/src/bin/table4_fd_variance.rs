//! Regenerates **Table 4**: average group-wise variances of embedding
//! translations over columns with and without functional dependencies.

use observatory_bench::harness::{banner, context, spider_corpus, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::fd::FunctionalDependencies;
use observatory_core::report::{fmt, render_table};
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Table 4: S̄² of FD translations, columns with vs without FDs",
        "paper §5.4, Table 4 — Spider + mined unary FDs (determinant size 1)",
    );
    let corpus = spider_corpus(Scale::from_env());
    let models = all_models();
    let reports = run_property(&FunctionalDependencies::default(), &models, &corpus, &context());
    let evaluated: Vec<_> = reports.iter().filter(|r| !r.records.is_empty()).collect();
    let mut headers = vec![""];
    let names: Vec<String> = evaluated.iter().map(|r| r.model.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut fd_row = vec!["Columns w/ FD".to_string()];
    let mut nonfd_row = vec!["Columns w/o FD".to_string()];
    for r in &evaluated {
        fd_row.push(fmt(r.scalar("mean_s2/fd").unwrap_or(f64::NAN)));
        nonfd_row.push(fmt(r.scalar("mean_s2/nonfd").unwrap_or(f64::NAN)));
    }
    print!("{}", render_table(&headers, &[fd_row, nonfd_row]));
    println!("\nexpected shape: S̄² for FD columns is NOT systematically near 0 nor clearly");
    println!("below the non-FD values — models do not preserve functional dependencies.");
}
