//! Regenerates **Figure 13**: distributions of embedding cosine similarity
//! between original and schema-perturbed columns (synonym and
//! abbreviation), per model.

use observatory_bench::harness::{banner, context, wiki_corpus, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::perturbation::PerturbationRobustness;
use observatory_core::report::render_report;
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Figure 13: perturbation robustness (schema synonym / abbreviation)",
        "paper §5.7, Figure 13 — Dr.Spider-style database perturbations",
    );
    let corpus = wiki_corpus(Scale::from_env());
    let models = all_models();
    for report in run_property(&PerturbationRobustness::default(), &models, &corpus, &context()) {
        if report.records.is_empty() {
            continue;
        }
        print!("{}", render_report(&report));
    }
    println!("expected shape: DODUO shows zero variance (schema-blind); vanilla LMs are");
    println!("most robust; table models that explicitly model headers move more.");
}
