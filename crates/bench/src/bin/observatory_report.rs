//! Run the complete Observatory characterization — all eight properties
//! for every in-scope model — and print one consolidated summary, the
//! closest thing to "the whole paper in one command":
//!
//! ```sh
//! cargo run --release -p observatory-bench --bin observatory_report
//! ```
//!
//! Thin shell over [`observatory_core::summary`]; individual tables and
//! figures have dedicated binaries (DESIGN.md §5).

use observatory_bench::harness::{banner, context, runtime_report, Scale};
use observatory_core::summary::{characterize_all, render_summary, SummaryConfig};
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Full characterization summary (all properties × all models)",
        "paper §5 — one headline number per property per model",
    );
    let scale = Scale::from_env();
    let config = SummaryConfig {
        wiki_tables: scale.wiki_tables(),
        permutations: scale.permutations().min(20),
        join_pairs: scale.join_pairs(),
        spider_tables: scale.spider_tables(),
        sotab_tables: scale.sotab_tables(),
        k: 10,
    };
    let models = all_models();
    let ctx = context();
    let summary = characterize_all(&models, &config, &ctx);
    print!("{}", render_summary(&summary));
    println!("\nlegend: · = out of scope (paper Table 2); NaN/- = level unavailable");
    println!("rows: P1/P2 mean cosine under shuffling (higher = more order-robust);");
    println!("P3 Spearman ρ vs multiset Jaccard; P4 S̄²_FD/S̄²_¬FD (≈1 = FDs invisible);");
    println!("P5 mean fidelity at 25% samples; P6 K-NN overlap vs the anchor model;");
    println!("P7 mean cosine under synonym renames (1.0 = schema-blind);");
    println!("P8 mean cosine single-column vs entire-table context.");
    runtime_report(&ctx);
}
