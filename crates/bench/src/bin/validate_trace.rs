//! `validate_trace` — CI gate for the observability exporters.
//!
//! ```text
//! validate_trace <trace.json> [metrics.prom]
//! ```
//!
//! Parses the Chrome trace-event JSON back through the workspace's own
//! zero-dependency parser (no jq, no serde) and checks that:
//!
//! - the document is well-formed JSON with a `traceEvents` array;
//! - the provenance manifest is embedded (`otherData.version` and
//!   `otherData.seed`-style pairs are present and non-empty);
//! - every complete (`"ph":"X"`) span has a numeric `args.id`, a parent
//!   that is either `null` or the id of another span in the document, and
//!   `parent < id` (ids are allocation-ordered, so a child can never
//!   predate its parent);
//! - parented spans nest: the child interval lies inside the parent's
//!   (with a small slack for clock granularity);
//! - at least one `props` span and one `encode_batch` span exist, and
//!   every `encode_batch` span's parent chain reaches a `props` span.
//!
//! With a second argument the Prometheus text is run through
//! [`observatory_obs::prom::validate`] and probed for the metric families
//! the exposition schema promises.
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure.

use observatory_obs::json::{parse, Json};
use std::collections::HashMap;

/// Nesting slack: span close timestamps are micro-rounded by the export.
const SLACK_US: f64 = 10.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: validate_trace <trace.json> [metrics.prom]");
        std::process::exit(2);
    }
    if let Err(e) = run(&args[0], args.get(1).map(String::as_str)) {
        eprintln!("validate_trace: {e}");
        std::process::exit(1);
    }
    println!("validate_trace: ok");
}

fn run(trace_path: &str, metrics_path: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let spans = validate_trace_doc(&text)?;
    println!("{trace_path}: {} spans, nesting ok, provenance ok", spans);
    if let Some(path) = metrics_path {
        let prom = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let summary = observatory_obs::prom::validate(&prom)
            .map_err(|e| format!("{path}: exposition invalid: {e}"))?;
        for family in [
            "observatory_run_info",
            "observatory_encodes_total",
            "observatory_cache_lookups_total",
            "observatory_cache_shard_entries",
            "observatory_cache_high_water_bytes",
            "observatory_encode_latency_seconds_bucket",
            "observatory_encode_latency_quantile_seconds",
            "observatory_span_total",
        ] {
            if !summary.has(family) {
                return Err(format!("{path}: missing metric family {family}"));
            }
        }
        println!(
            "{path}: {} metrics / {} samples, schema ok",
            summary.metrics.len(),
            summary.samples
        );
    }
    Ok(())
}

/// A complete-event span as reconstructed from the export.
struct SpanEvt {
    name: String,
    target: String,
    parent: Option<u64>,
    ts: f64,
    dur: f64,
}

/// Validate the trace document; returns the number of spans.
fn validate_trace_doc(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("trace JSON malformed: {e}"))?;
    let other = doc.get("otherData").ok_or("missing otherData (provenance manifest)")?;
    let manifest = other.as_object().ok_or("otherData is not an object")?;
    for key in ["version", "dropped_records"] {
        let v = other.get(key).and_then(Json::as_str).unwrap_or("");
        if v.is_empty() {
            return Err(format!("provenance manifest missing '{key}'"));
        }
    }
    if manifest.len() < 4 {
        return Err(format!("provenance manifest suspiciously small ({} pairs)", manifest.len()));
    }
    let events =
        doc.get("traceEvents").and_then(Json::as_array).ok_or("missing traceEvents array")?;

    let mut spans: HashMap<u64, SpanEvt> = HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = ev.get("args").ok_or("X event without args")?;
        let id =
            args.get("id").and_then(Json::as_f64).ok_or("span without numeric args.id")? as u64;
        let parent = match args.get("parent") {
            None | Some(Json::Null) => None,
            Some(p) => Some(p.as_f64().ok_or("args.parent is neither null nor a number")? as u64),
        };
        let span = SpanEvt {
            name: ev.get("name").and_then(Json::as_str).unwrap_or_default().to_string(),
            target: ev.get("cat").and_then(Json::as_str).unwrap_or_default().to_string(),
            parent,
            ts: ev.get("ts").and_then(Json::as_f64).ok_or("span without ts")?,
            dur: ev.get("dur").and_then(Json::as_f64).ok_or("span without dur")?,
        };
        if spans.insert(id, span).is_some() {
            return Err(format!("duplicate span id {id}"));
        }
    }
    if spans.is_empty() {
        return Err("trace contains no spans — was OBSERVATORY_LOG raised?".into());
    }

    // Structural checks: parent exists, allocation order, interval nesting.
    for (id, s) in &spans {
        if let Some(pid) = s.parent {
            let p = spans
                .get(&pid)
                .ok_or_else(|| format!("span {id} ({}) has unknown parent {pid}", s.name))?;
            if pid >= *id {
                return Err(format!("span {id} has parent {pid} >= its own id"));
            }
            if s.ts + SLACK_US < p.ts || s.ts + s.dur > p.ts + p.dur + SLACK_US {
                return Err(format!(
                    "span {id} ({}) [{:.1}, {:.1}] escapes parent {pid} ({}) [{:.1}, {:.1}]",
                    s.name,
                    s.ts,
                    s.ts + s.dur,
                    p.name,
                    p.ts,
                    p.ts + p.dur,
                ));
            }
        }
    }

    // Semantic checks: the pipeline spans the issue promises must exist
    // and encode batches must hang off a property (or downstream) span.
    if !spans.values().any(|s| s.target == "props" || s.target == "downstream") {
        return Err("no props/downstream span in trace".into());
    }
    let batches: Vec<(&u64, &SpanEvt)> =
        spans.iter().filter(|(_, s)| s.name == "encode_batch").collect();
    if batches.is_empty() {
        return Err("no encode_batch span in trace".into());
    }
    for (id, batch) in batches {
        let mut cursor = batch.parent;
        let mut hops = 0usize;
        let rooted = loop {
            match cursor {
                None => break false,
                Some(pid) => {
                    let p = &spans[&pid];
                    if p.target == "props" || p.target == "downstream" {
                        break true;
                    }
                    cursor = p.parent;
                    hops += 1;
                    if hops > spans.len() {
                        return Err(format!("parent cycle above encode_batch span {id}"));
                    }
                }
            }
        };
        if !rooted {
            return Err(format!("encode_batch span {id} has no property span ancestor"));
        }
    }
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evt(name: &str, target: &str, id: u64, parent: Option<u64>, ts: f64, dur: f64) -> String {
        let parent = parent.map_or("null".to_string(), |p| p.to_string());
        format!(
            "{{\"ph\": \"X\", \"name\": \"{name}\", \"cat\": \"{target}\", \"pid\": 1, \
             \"tid\": 0, \"ts\": {ts}, \"dur\": {dur}, \
             \"args\": {{\"id\": {id}, \"parent\": {parent}}}}}"
        )
    }

    fn doc(events: &[String]) -> String {
        format!(
            "{{\"otherData\": {{\"version\": \"0.1.0\", \"models\": \"bert\", \
             \"seed\": \"42\", \"dropped_records\": \"0\"}}, \
             \"traceEvents\": [{}]}}",
            events.join(", ")
        )
    }

    #[test]
    fn well_formed_trace_passes() {
        let text = doc(&[
            evt("P1", "props", 1, None, 0.0, 1000.0),
            evt("encode_batch", "runtime", 2, Some(1), 10.0, 500.0),
            evt("encode", "runtime", 3, Some(2), 20.0, 100.0),
        ]);
        assert_eq!(validate_trace_doc(&text).unwrap(), 3);
    }

    #[test]
    fn orphan_encode_batch_fails() {
        let text = doc(&[
            evt("P1", "props", 1, None, 0.0, 1000.0),
            evt("encode_batch", "runtime", 2, None, 10.0, 500.0),
        ]);
        assert!(validate_trace_doc(&text).unwrap_err().contains("no property span ancestor"));
    }

    #[test]
    fn escaping_interval_fails() {
        let text = doc(&[
            evt("P1", "props", 1, None, 0.0, 100.0),
            evt("encode_batch", "runtime", 2, Some(1), 50.0, 5000.0),
        ]);
        assert!(validate_trace_doc(&text).unwrap_err().contains("escapes parent"));
    }

    #[test]
    fn unknown_parent_fails() {
        let text = doc(&[evt("P1", "props", 1, Some(99), 0.0, 100.0)]);
        assert!(validate_trace_doc(&text).unwrap_err().contains("unknown parent"));
    }

    #[test]
    fn missing_manifest_fails() {
        let text = "{\"otherData\": {}, \"traceEvents\": []}";
        assert!(validate_trace_doc(text).is_err());
    }
}
