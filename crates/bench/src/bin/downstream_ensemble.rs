//! Regenerates the **§6 P3 connection**: a low Spearman correlation
//! between containment and embedding cosine means the two rankers
//! complement each other — the ensemble finds join candidates either
//! alone misses.

use observatory_bench::harness::{banner, context, join_pairs, Scale};
use observatory_core::downstream::ensemble::run_ensemble_discovery;
use observatory_core::framework::Property;
use observatory_core::props::join_rel::{pairs_to_corpus, JoinRelationship};
use observatory_core::report::render_table;
use observatory_models::registry::model_by_name;

fn main() {
    banner(
        "Downstream: syntactic + semantic ensemble join discovery",
        "paper §6 (P3 connection) — recall@5 of containment vs embedding vs ensemble",
    );
    let pairs = join_pairs(Scale::from_env());
    let corpus = pairs_to_corpus(&pairs);
    let ctx = context();
    let mut rows = Vec::new();
    for name in ["bert", "t5", "tapas", "doduo"] {
        let model = model_by_name(name).unwrap();
        let rho = JoinRelationship
            .evaluate(model.as_ref(), &corpus, &ctx)
            .scalar("spearman/containment")
            .unwrap_or(f64::NAN);
        if let Some(r) = run_ensemble_discovery(model.as_ref(), &pairs, 5, 0.2, &ctx) {
            rows.push(vec![
                name.to_string(),
                format!("{rho:.3}"),
                format!("{:.3}", r.recall_containment),
                format!("{:.3}", r.recall_embedding),
                format!("{:.3}", r.recall_ensemble),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "model",
                "ρ(containment, cosine)",
                "recall@5 containment",
                "recall@5 embedding",
                "recall@5 ensemble"
            ],
            &rows
        )
    );
    println!("\nexpected shape: the lower the correlation between the two rankers, the");
    println!("more the ensemble gains over the embedding ranker alone.");
}
