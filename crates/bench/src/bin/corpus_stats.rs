//! Profile the five dataset suites: the structural statistics behind the
//! corpora every experiment runs on (the reproduction's analogue of the
//! paper's §4.2 dataset descriptions).

use observatory_bench::harness::{
    banner, join_pairs, sotab_corpus, spider_corpus, wiki_corpus, Scale,
};
use observatory_core::report::render_table;
use observatory_table::profile::profile_table;
use observatory_table::Table;

fn summarize(name: &str, corpus: &[Table]) -> Vec<String> {
    let tables = corpus.len();
    let rows: usize = corpus.iter().map(Table::num_rows).sum();
    let cols: usize = corpus.iter().map(Table::num_cols).sum();
    let mut nulls = 0usize;
    let mut cells = 0usize;
    let mut textual_cols = 0usize;
    let mut keyish_cols = 0usize;
    for t in corpus {
        for p in profile_table(t) {
            nulls += p.nulls;
            cells += p.rows;
            if p.dominant_kind() == Some(observatory_table::value::ValueKind::Text) {
                textual_cols += 1;
            }
            if p.uniqueness() >= 1.0 && p.rows > 1 {
                keyish_cols += 1;
            }
        }
    }
    vec![
        name.to_string(),
        tables.to_string(),
        format!("{:.1}", rows as f64 / tables.max(1) as f64),
        format!("{:.1}", cols as f64 / tables.max(1) as f64),
        format!("{:.1}%", 100.0 * textual_cols as f64 / cols.max(1) as f64),
        keyish_cols.to_string(),
        format!("{:.2}%", 100.0 * nulls as f64 / cells.max(1) as f64),
    ]
}

fn main() {
    banner("Corpus statistics for the five dataset suites", "paper §4.2 dataset descriptions");
    let scale = Scale::from_env();
    let wiki = wiki_corpus(scale);
    let spider = spider_corpus(scale);
    let sotab = sotab_corpus(scale);
    let joins: Vec<Table> = join_pairs(scale)
        .into_iter()
        .enumerate()
        .flat_map(|(i, p)| {
            vec![
                Table::new(format!("q{i}"), vec![p.query]),
                Table::new(format!("c{i}"), vec![p.candidate]),
            ]
        })
        .collect();
    let rows = vec![
        summarize("WikiTables-like", &wiki),
        summarize("Spider-like", &spider),
        summarize("NextiaJD-like (columns)", &joins),
        summarize("SOTAB-like", &sotab),
    ];
    print!(
        "{}",
        render_table(
            &["suite", "tables", "rows/table", "cols/table", "textual cols", "key cols", "nulls"],
            &rows
        )
    );
    println!("\n(Dr.Spider perturbations operate on the WikiTables-like suite in place;");
    println!("the Figure 12 entity domains are fixed 10-query sets, see `data::entities`.)");
}
