//! Regenerates the **§7 Discussion** experiment: "Impact of Tables with
//! Large Dimensionality" — row-/column-order insignificance on large
//! (NextiaJD-S-shaped) tables handled via partitioning, compared with the
//! small-table (WikiTables) findings. The paper "observe\[s\] no significant
//! differences".

use observatory_bench::harness::banner;
use observatory_data::wikitables::WikiTablesConfig;
use observatory_linalg::vector::cosine;
use observatory_models::partitioned::encode_partitioned;
use observatory_models::registry::model_by_name;
use observatory_stats::descriptive::five_number_summary;
use observatory_table::perm::{permute_rows, sample_permutations};
use observatory_table::{Column, Table, Value};

/// A "large" table: hundreds of rows, many columns (scaled-down S-testbed
/// proportions; paper S averages 209k × 56).
fn large_table(rows: usize, cols: usize) -> Table {
    let base =
        WikiTablesConfig { num_tables: 1, min_rows: 8, max_rows: 8, seed: 9 }.generate().remove(0);
    let mut columns = Vec::with_capacity(cols);
    for j in 0..cols {
        let donor = &base.columns[j % base.num_cols()];
        let values: Vec<Value> =
            (0..rows).map(|i| donor.values[(i * 7 + j * 13) % donor.len()].clone()).collect();
        columns.push(Column::new(format!("{}_{j}", donor.header), values));
    }
    Table::new("large", columns)
}

fn main() {
    banner(
        "Discussion: order insignificance on large tables via partitioning",
        "paper §7 — BERT and TAPAS, large vs small tables, row shuffles",
    );
    let small =
        WikiTablesConfig { num_tables: 1, min_rows: 8, max_rows: 8, seed: 9 }.generate().remove(0);
    let large = large_table(240, 12);
    println!(
        "small table: {}×{}; large table: {}×{} (encoded in 8-row blocks)\n",
        small.num_rows(),
        small.num_cols(),
        large.num_rows(),
        large.num_cols()
    );
    for name in ["bert", "tapas"] {
        let model = model_by_name(name).unwrap();
        for (label, table, block) in [("small", &small, usize::MAX), ("large", &large, 8usize)] {
            let perms = sample_permutations(table.num_rows(), 6, 42);
            let mut cosines = Vec::new();
            // Reference and variants through the same (partitioned) path.
            let encode = |t: &Table| {
                if block == usize::MAX {
                    let enc = model.encode_table(t);
                    (0..t.num_cols()).map(|j| enc.column(j)).collect::<Vec<_>>()
                } else {
                    let enc = encode_partitioned(model.as_ref(), t, block);
                    (0..t.num_cols()).map(|j| enc.column(j)).collect::<Vec<_>>()
                }
            };
            let reference = encode(table);
            for p in perms.iter().skip(1) {
                let shuffled = encode(&permute_rows(table, p));
                for (a, b) in reference.iter().zip(&shuffled) {
                    if let (Some(a), Some(b)) = (a, b) {
                        cosines.push(cosine(a, b));
                    }
                }
            }
            let s = five_number_summary(&cosines);
            println!("{name:6} {label:6} column-cosine under row shuffles: {s}",);
        }
        println!();
    }
    println!("expected shape: the large-table numbers track the small-table numbers —");
    println!("partitioning reduces the large case to the small one, as the paper argues.");
}
