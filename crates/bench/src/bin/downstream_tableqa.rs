//! Regenerates the **§6 TableQA** experiment: accuracy under schema
//! perturbations. The paper observes TAPAS dropping 6.2/8.3 points
//! (WikiTableQuestions) and 19.0/22.2 points (WikiSQL) under synonym /
//! abbreviation perturbations.

use observatory_bench::harness::{banner, context, wiki_corpus, Scale};
use observatory_core::downstream::tableqa::qa_under_perturbation;
use observatory_core::report::render_table;
use observatory_data::perturb::Perturbation;
use observatory_models::registry::model_by_name;

fn main() {
    banner(
        "Downstream: TableQA accuracy under schema perturbation",
        "paper §6 (P7 connection) — TAPAS, synonym and abbreviation perturbations",
    );
    let corpus = wiki_corpus(Scale::from_env());
    let _ = context();
    let mut rows = Vec::new();
    for name in ["tapas", "bert", "t5", "doduo"] {
        let model = model_by_name(name).unwrap();
        for kind in [Perturbation::SchemaSynonym, Perturbation::SchemaAbbreviation] {
            if let Some(r) = qa_under_perturbation(model.as_ref(), &corpus, kind, 10) {
                rows.push(vec![
                    name.to_string(),
                    kind.label().to_string(),
                    format!("{:.1}%", r.original_accuracy * 100.0),
                    format!("{:.1}%", r.perturbed_accuracy * 100.0),
                    format!("{:+.1} pts", -r.drop() * 100.0),
                    r.questions.to_string(),
                ]);
            }
        }
    }
    print!(
        "{}",
        render_table(&["model", "perturbation", "orig acc", "pert acc", "Δ", "questions"], &rows)
    );
    println!("\npaper reference (TAPAS fine-tuned): −6.2/−8.3 pts on WikiTableQuestions,");
    println!("−19.0/−22.2 pts on WikiSQL. expected shape: schema-reading models drop;");
    println!("schema-blind DODUO is untouched (its P7 invariance carried downstream).");
}
