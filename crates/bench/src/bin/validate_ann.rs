//! `validate_ann` — CI gate for the warm-started corpus ANN index.
//!
//! ```text
//! validate_ann seed <store-dir> [n]
//! validate_ann check <host:port> [n]
//! ```
//!
//! The ann smoke job runs this around a server boot:
//!
//! 1. **seed** (no server): write a deterministic clustered corpus of
//!    `n` table-level encodings (default 5000, dim 32) into a fresh
//!    store directory and checkpoint it.
//! 2. **check** (server started with `--store-dir … --ann-warm`):
//!    regenerate the identical corpus in memory, build a flat
//!    [`KnnIndex`] oracle, then require that
//!    - `/healthz` advertises the hnsw index with the right item count
//!      and dimension;
//!    - full-beam corpus queries are **bit-identical** to the oracle
//!      (keys, scores, order — the exact-re-rank guarantee across the
//!      store, the index build, and the wire);
//!    - default-beam recall@10 over a spread of held-out queries is
//!      ≥ 0.95.
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure;
//! 2 on usage errors. Both halves derive the corpus from the same seed,
//! so nothing is passed between them but the store directory.

use observatory_bench::httpc;
use observatory_linalg::{Matrix, SplitMix64};
use observatory_models::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use observatory_obs::json::{parse, Json};
use observatory_runtime::{EmbeddingStore, Fingerprint};
use observatory_search::KnnIndex;
use observatory_store::{MmapStore, StoreConfig};
use std::net::SocketAddr;
use std::time::Duration;

const DIM: usize = 32;
const DEFAULT_N: usize = 5000;
const K: usize = 10;
const RECALL_QUERIES: usize = 40;
const EXACT_QUERIES: usize = 5;
const TIMEOUT: Duration = Duration::from_secs(60);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, target) = match (args.first(), args.get(1)) {
        (Some(m), Some(t)) if m == "seed" || m == "check" => (m.as_str(), t.clone()),
        _ => {
            eprintln!("usage: validate_ann seed <store-dir> [n] | check <host:port> [n]");
            std::process::exit(2);
        }
    };
    let n = match args.get(2) {
        None => DEFAULT_N,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("validate_ann: corpus size must be a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        },
    };
    let run = if mode == "seed" { seed(&target, n) } else { check(&target, n) };
    if let Err(e) = run {
        eprintln!("validate_ann: {e}");
        std::process::exit(1);
    }
    println!("validate_ann {mode}: ok ({n} vectors)");
}

/// A single-token table-level encoding whose `table()` readout is
/// exactly `vector` (mean pool over one non-special token).
fn table_encoding(vector: &[f64]) -> ModelEncoding {
    ModelEncoding {
        embeddings: Matrix::from_vec(1, vector.len(), vector.to_vec()),
        provenance: vec![TokenProvenance { row: 1, col: 1, special: false }],
        table_cls: None,
        column_cls: vec![],
        rows_encoded: 1,
        cols_encoded: 1,
        column_readout: Readout::MeanPool,
        table_readout: Readout::MeanPool,
        capabilities: Capabilities::all(),
    }
}

/// The deterministic clustered corpus both subcommands agree on.
/// Fingerprints ascend with the item index, which is also the order the
/// server enumerates them in — so a flat oracle built in this order has
/// the same tie-break order as the served index.
fn corpus(n: usize) -> Vec<(Fingerprint, Vec<f64>)> {
    let mut rng = SplitMix64::new(0xA22_5EED);
    let n_centers = (n / 50).max(1);
    let centers: Vec<Vec<f64>> =
        (0..n_centers).map(|_| (0..DIM).map(|_| rng.next_normal()).collect()).collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_centers];
            let v: Vec<f64> = c.iter().map(|x| x + 0.1 * rng.next_normal()).collect();
            (Fingerprint(i as u128 + 1), v)
        })
        .collect()
}

fn seed(dir: &str, n: usize) -> Result<(), String> {
    let path = std::path::PathBuf::from(dir);
    if path.exists() {
        return Err(format!("refusing to seed into existing path {dir}"));
    }
    let store = MmapStore::open(StoreConfig::new(path)).map_err(|e| format!("open store: {e}"))?;
    for (fp, v) in &corpus(n) {
        store.save(*fp, &table_encoding(v));
    }
    store.checkpoint();
    Ok(())
}

fn check(addr_raw: &str, n: usize) -> Result<(), String> {
    let addr = httpc::resolve(addr_raw).map_err(|e| format!("resolve: {e}"))?;
    httpc::await_healthy(addr, TIMEOUT)?;

    let health = httpc::get(addr, "/healthz", TIMEOUT)?;
    let hj = parse(&health.body).map_err(|e| format!("healthz parse: {e}"))?;
    let ann = hj.get("ann").ok_or("healthz has no ann field")?;
    if ann.get("kind").and_then(Json::as_str) != Some("hnsw") {
        return Err(format!("healthz ann is not a warm hnsw index: {}", health.body));
    }
    if ann.get("items").and_then(Json::as_f64) != Some(n as f64) {
        return Err(format!("healthz ann.items != {n}: {}", health.body));
    }
    if ann.get("dim").and_then(Json::as_f64) != Some(DIM as f64) {
        return Err(format!("healthz ann.dim != {DIM}: {}", health.body));
    }

    let data = corpus(n);
    let mut oracle = KnnIndex::new(DIM);
    for (fp, v) in &data {
        oracle.insert(fp.to_hex(), v);
    }

    // Full beam: the served answer must be bit-identical to the oracle.
    let exact: Vec<&[f64]> =
        data.iter().step_by((n / EXACT_QUERIES).max(1)).map(|(_, v)| v.as_slice()).collect();
    let served = corpus_query(addr, &exact, Some(n))?;
    for (qi, q) in exact.iter().enumerate() {
        let expect: Vec<(String, f64)> =
            oracle.query(q, K, None).into_iter().map(|h| (h.key, h.score)).collect();
        if served[qi].len() != expect.len() {
            return Err(format!(
                "full-beam query {qi}: {} hits, want {}",
                served[qi].len(),
                expect.len()
            ));
        }
        for (s, e) in served[qi].iter().zip(&expect) {
            if s.0 != e.0 {
                return Err(format!("full-beam query {qi}: key {} != oracle {}", s.0, e.0));
            }
            if s.1.to_bits() != e.1.to_bits() {
                return Err(format!(
                    "full-beam query {qi}: score {} not bit-exact vs {}",
                    s.1, e.1
                ));
            }
        }
    }

    // Default beam: held-out perturbed queries must keep recall@10 high.
    let mut rng = SplitMix64::new(0xC11EC);
    let held_out: Vec<Vec<f64>> = (0..RECALL_QUERIES)
        .map(|_| {
            let base = &data[rng.next_below(data.len())].1;
            base.iter().map(|x| x + 0.05 * rng.next_normal()).collect()
        })
        .collect();
    let refs: Vec<&[f64]> = held_out.iter().map(Vec::as_slice).collect();
    let served = corpus_query(addr, &refs, None)?;
    let mut recall = 0.0;
    for (qi, q) in refs.iter().enumerate() {
        let truth: std::collections::HashSet<String> =
            oracle.neighbor_keys(q, K, None).into_iter().collect();
        recall += served[qi].iter().filter(|(k, _)| truth.contains(k)).count() as f64
            / truth.len() as f64;
    }
    recall /= RECALL_QUERIES as f64;
    println!("validate_ann check: default-beam recall@{K} = {recall:.4}");
    if recall < 0.95 {
        return Err(format!("recall gate failed: {recall:.4} < 0.95"));
    }
    Ok(())
}

/// POST one corpus-mode `/v1/knn` request; returns per-query (key, score)
/// hit lists.
fn corpus_query(
    addr: SocketAddr,
    queries: &[&[f64]],
    ef: Option<usize>,
) -> Result<Vec<Vec<(String, f64)>>, String> {
    let ef_field = ef.map(|e| format!("\"ef\":{e},")).unwrap_or_default();
    let body = format!(
        "{{\"k\":{K},\"corpus\":true,\"mode\":\"ann\",{ef_field}\"queries\":[{}]}}",
        queries
            .iter()
            .map(|q| format!("[{}]", q.iter().map(f64::to_string).collect::<Vec<_>>().join(",")))
            .collect::<Vec<_>>()
            .join(",")
    );
    let resp = httpc::post(addr, "/v1/knn", &body, TIMEOUT)?;
    if resp.status != 200 {
        return Err(format!("knn status {}: {}", resp.status, resp.body));
    }
    let v = parse(&resp.body).map_err(|e| format!("knn parse: {e}"))?;
    let results = v.get("results").and_then(Json::as_array).ok_or("knn response has no results")?;
    results
        .iter()
        .map(|hits| {
            hits.as_array()
                .ok_or_else(|| "hit list is not an array".to_string())?
                .iter()
                .map(|h| {
                    let key =
                        h.get("key").and_then(Json::as_str).ok_or("hit without key")?.to_string();
                    let score = h.get("score").and_then(Json::as_f64).ok_or("hit without score")?;
                    Ok((key, score))
                })
                .collect()
        })
        .collect()
}
