//! Regenerates **Figure 6**: PCA projections of column embeddings across
//! all 6! = 720 row permutations of a fixed six-column table, for BERT and
//! T5 — the visualization behind the paper's "T5 embeddings stretch along
//! a dominant direction" observation.
//!
//! Output: one block per (model, column) with the 2-D projection extents,
//! the explained-variance anisotropy (λ₁/λ₂), and a density grid of the
//! projected cloud.

use observatory_bench::harness::banner;
use observatory_linalg::pca::Pca;
use observatory_linalg::Matrix;
use observatory_models::registry::model_by_name;
use observatory_table::perm::{permute_rows, sample_permutations};

fn main() {
    banner(
        "Figure 6: PCA of column embeddings under row shuffling",
        "paper §5.1, Figure 6 — 6-column table, all 720 row permutations",
    );
    let table = observatory_data::wikitables::pca_demo_table();
    let perms = sample_permutations(table.num_rows(), 1000, 42);
    println!("table: {} ({} permutations)\n", table.name, perms.len());
    for name in ["bert", "t5"] {
        let model = model_by_name(name).unwrap();
        println!("## {}", model.display_name());
        let encodings: Vec<_> =
            perms.iter().map(|p| model.encode_table(&permute_rows(&table, p))).collect();
        for j in 0..table.num_cols() {
            let embs: Vec<Vec<f64>> = encodings.iter().filter_map(|e| e.column(j)).collect();
            if embs.len() < 2 {
                continue;
            }
            let sample = Matrix::from_rows(&embs);
            let pca = Pca::fit(&sample, 2);
            let proj = pca.project_all(&sample);
            let (xs, ys): (Vec<f64>, Vec<f64>) = (proj.col(0), proj.col(1));
            let anisotropy = if pca.explained_variance[1] > 1e-12 {
                pca.explained_variance[0] / pca.explained_variance[1]
            } else {
                f64::INFINITY
            };
            println!(
                "column '{}': pc1 var {:.4}, pc2 var {:.4}, anisotropy λ1/λ2 = {:.1}",
                table.columns[j].header,
                pca.explained_variance[0],
                pca.explained_variance[1],
                anisotropy
            );
            println!("{}", density_grid(&xs, &ys, 48, 12));
        }
        println!();
    }
    println!("reading: higher anisotropy = the cloud stretches along one direction,");
    println!("which co-occurs with high cosine similarity but high MCV (the T5 pattern).");
}

/// ASCII density grid of a 2-D point cloud.
fn density_grid(xs: &[f64], ys: &[f64], w: usize, h: usize) -> String {
    let (x_lo, x_hi) = bounds(xs);
    let (y_lo, y_hi) = bounds(ys);
    let mut grid = vec![vec![0usize; w]; h];
    for (&x, &y) in xs.iter().zip(ys) {
        let cx = (((x - x_lo) / (x_hi - x_lo)) * (w - 1) as f64).round() as usize;
        let cy = (((y - y_lo) / (y_hi - y_lo)) * (h - 1) as f64).round() as usize;
        grid[h - 1 - cy][cx] += 1;
    }
    let glyph = |c: usize| match c {
        0 => ' ',
        1 => '·',
        2..=4 => 'o',
        5..=9 => 'O',
        _ => '@',
    };
    grid.into_iter()
        .map(|row| row.into_iter().map(glyph).collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn bounds(xs: &[f64]) -> (f64, f64) {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}
