//! Regenerates **Figure 9**: scatter plots of embedding cosine similarity
//! vs multiset Jaccard over joinable column pairs, per model.

use observatory_bench::harness::{banner, context, join_pairs, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::join_rel::{pairs_to_corpus, JoinRelationship};
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Figure 9: cosine vs multiset Jaccard scatter",
        "paper §5.3, Figure 9 — NextiaJD-XS joinable pairs (x max = 0.5)",
    );
    let corpus = pairs_to_corpus(&join_pairs(Scale::from_env()));
    let models = all_models();
    for report in run_property(&JoinRelationship, &models, &corpus, &context()) {
        let Some(scatter) = report.scatters.first() else { continue };
        println!("## {} ({} pairs)", report.model, scatter.points.len());
        println!("{}", ascii_scatter(&scatter.points, 50, 14));
        println!(
            "   x: multiset Jaccard [0, 0.5]   y: cosine   ρ = {}\n",
            report
                .scalar("spearman/multiset_jaccard")
                .map_or("-".to_string(), |v| format!("{v:.3}"))
        );
    }
}

/// ASCII scatter with fixed x-range [0, 0.5] and y-range fitted to data.
fn ascii_scatter(points: &[(f64, f64)], w: usize, h: usize) -> String {
    let y_lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let y_span = if (y_hi - y_lo).abs() < 1e-12 { 1.0 } else { y_hi - y_lo };
    let mut grid = vec![vec![' '; w]; h];
    for &(x, y) in points {
        let cx = ((x / 0.5).clamp(0.0, 1.0) * (w - 1) as f64).round() as usize;
        let cy = (((y - y_lo) / y_span).clamp(0.0, 1.0) * (h - 1) as f64).round() as usize;
        let cell = &mut grid[h - 1 - cy][cx];
        *cell = match *cell {
            ' ' => '·',
            '·' => 'o',
            'o' => 'O',
            _ => '@',
        };
    }
    let mut out = String::new();
    for (i, row) in grid.into_iter().enumerate() {
        let y_val = y_hi - y_span * i as f64 / (h - 1) as f64;
        out.push_str(&format!("{y_val:6.2} |"));
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("        0.0{}0.5\n", "-".repeat(w.saturating_sub(6))));
    out
}
