//! `validate_jobs` — CI gate for characterization-as-a-service.
//!
//! ```text
//! validate_jobs check <host:port>   full conformance pass
//! validate_jobs drain <host:port>   submit a long job, leave it running
//! ```
//!
//! `check` runs a pure-Rust conformance pass against a live
//! `observatory serve` process:
//!
//! 1. `GET /healthz` answers 200 and carries the `jobs` gauge object;
//! 2. `POST /v1/tables` ingests a CSV table (201) and re-ingesting the
//!    same bytes is idempotent (200, same content-addressed id);
//! 3. `POST /v1/analyze` → 202 with a job id; polling
//!    `GET /v1/jobs/<id>` reaches `done` with progress 1; the result
//!    carries one report per requested property with non-empty measures;
//! 4. resubmitting the identical spec yields a byte-identical `result`
//!    object (the pipeline is deterministic end to end);
//! 5. flooding the queue past `--max-jobs` answers 429 + `Retry-After`
//!    (admission is bounded, not backlogged);
//! 6. `DELETE /v1/jobs/<id>` cancels queued work immediately and running
//!    work at the next checkpoint — every flooded job ends terminal;
//! 7. unknown routes answer JSON 404, wrong methods answer 405 with an
//!    `Allow` header, bad analyze specs answer 400/404.
//!
//! `drain` submits one long-running job and exits, leaving it in flight —
//! the harness then SIGTERMs the server and asserts the drain report
//! accounts for every admitted job (`0 lost`).
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure.

use observatory_bench::httpc;
use observatory_obs::json::{parse, Json};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(mode), Some(addr_raw)) = (args.first(), args.get(1)) else {
        eprintln!("usage: validate_jobs <check|drain> <host:port>");
        std::process::exit(2);
    };
    let addr = match httpc::resolve(addr_raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("validate_jobs: {e}");
            std::process::exit(2);
        }
    };
    let result = match mode.as_str() {
        "check" => check(addr),
        "drain" => drain(addr),
        other => {
            eprintln!("validate_jobs: unknown mode '{other}' (check|drain)");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("validate_jobs: {e}");
        std::process::exit(1);
    }
    println!("validate_jobs: ok");
}

/// Ingest a CSV body, returning the content-addressed table id.
fn ingest_csv(addr: SocketAddr, name: &str, csv: &str) -> Result<(String, u16), String> {
    let r = httpc::request_with_headers(
        addr,
        "POST",
        "/v1/tables",
        &[("Content-Type", "text/csv"), ("x-table-name", name)],
        csv,
        TIMEOUT,
    )?;
    if r.status != 201 && r.status != 200 {
        return Err(format!("ingest '{name}' answered {}: {}", r.status, r.body));
    }
    let v = parse(&r.body).map_err(|e| format!("ingest body invalid: {e}"))?;
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("ingest body missing id: {}", r.body))?;
    Ok((id.to_string(), r.status))
}

/// Poll one job until terminal; returns the final status document.
fn poll_terminal(addr: SocketAddr, job: &str, budget: Duration) -> Result<Json, String> {
    let start = Instant::now();
    loop {
        let r = httpc::get(addr, &format!("/v1/jobs/{job}"), TIMEOUT)?;
        if r.status != 200 {
            return Err(format!("status of {job} answered {}: {}", r.status, r.body));
        }
        let v = parse(&r.body).map_err(|e| format!("status body invalid: {e}"))?;
        let state = v.get("state").and_then(Json::as_str).unwrap_or("?").to_string();
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return Ok(v);
        }
        if start.elapsed() > budget {
            return Err(format!("job {job} stuck in '{state}' after {budget:?}"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The `result` object of a done job's record, as raw JSON text — the
/// determinism comparison is byte-level, so no parsing.
fn result_suffix(body: &str) -> Result<&str, String> {
    body.find("\"result\":")
        .map(|i| &body[i..])
        .ok_or_else(|| format!("record has no result field: {body}"))
}

fn check(addr: SocketAddr) -> Result<(), String> {
    // 1. Liveness + jobs gauges.
    let health = httpc::await_healthy(addr, Duration::from_secs(30))?;
    let h = parse(&health.body).map_err(|e| format!("healthz body invalid: {e}"))?;
    let jobs =
        h.get("jobs").ok_or_else(|| format!("healthz has no jobs object: {}", health.body))?;
    let capacity = jobs
        .get("capacity")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("jobs object has no capacity: {}", health.body))?
        as usize;
    println!("healthz: ok (job capacity {capacity})");

    // 2. Idempotent CSV ingest.
    let csv = "city,pop,area\nparis,2100000,105.4\nlyon,520000,47.9\nnice,340000,71.9\nlille,233000,34.5\n";
    let (table, first) = ingest_csv(addr, "validate-jobs", csv)?;
    if first != 201 {
        return Err(format!("first ingest should be 201, got {first}"));
    }
    let (again, second) = ingest_csv(addr, "validate-jobs", csv)?;
    if second != 200 || again != table {
        return Err(format!(
            "re-ingest should be 200 with the same id: {second} {again} vs {table}"
        ));
    }
    println!("ingest: ok ({table})");

    // 3. Submit → poll → result.
    let spec =
        format!(r#"{{"table":"{table}","properties":["P1","P2"],"seed":7,"permutations":6}}"#);
    let r = httpc::post(addr, "/v1/analyze", &spec, TIMEOUT)?;
    if r.status != 202 {
        return Err(format!("analyze answered {}: {}", r.status, r.body));
    }
    let v = parse(&r.body).map_err(|e| e.to_string())?;
    let job = v.get("job").and_then(Json::as_str).unwrap_or_default().to_string();
    let status = poll_terminal(addr, &job, Duration::from_secs(120))?;
    if status.get("state").and_then(Json::as_str) != Some("done") {
        return Err(format!("job {job} did not finish done: {status:?}"));
    }
    if status.get("progress").and_then(Json::as_f64) != Some(1.0) {
        return Err(format!("done job must report progress 1: {status:?}"));
    }
    let record = httpc::get(addr, &format!("/v1/jobs/{job}/result"), TIMEOUT)?;
    if record.status != 200 {
        return Err(format!("result answered {}: {}", record.status, record.body));
    }
    let doc = parse(&record.body).map_err(|e| format!("record invalid: {e}"))?;
    let reports = doc
        .get("result")
        .and_then(|r| r.get("reports"))
        .and_then(Json::as_array)
        .ok_or_else(|| format!("record has no reports: {}", record.body))?;
    if reports.len() != 2 {
        return Err(format!("expected 2 property reports, got {}", reports.len()));
    }
    for rep in reports {
        let measures = rep.get("measures").and_then(Json::as_array);
        if measures.is_none_or(|m| m.is_empty()) {
            return Err(format!("report without measures: {rep:?}"));
        }
    }
    println!("analyze: ok ({job} done, 2 reports)");

    // 4. Determinism: identical spec → byte-identical result object.
    let r = httpc::post(addr, "/v1/analyze", &spec, TIMEOUT)?;
    if r.status != 202 {
        return Err(format!("second analyze answered {}: {}", r.status, r.body));
    }
    let v = parse(&r.body).map_err(|e| e.to_string())?;
    let job2 = v.get("job").and_then(Json::as_str).unwrap_or_default().to_string();
    poll_terminal(addr, &job2, Duration::from_secs(120))?;
    let record2 = httpc::get(addr, &format!("/v1/jobs/{job2}/result"), TIMEOUT)?;
    if result_suffix(&record.body)? != result_suffix(&record2.body)? {
        return Err("identical specs produced different result bytes".into());
    }
    println!("determinism: ok (result bytes identical across jobs)");

    // 5. Queue bound: flood with slow jobs; some must shed with 429.
    let big_csv = {
        let mut s = String::from("a,b,c,d,e,f\n");
        for r in 0..40 {
            for c in 0..6 {
                if c > 0 {
                    s.push(',');
                }
                s.push_str(&format!("cell-{r}-{c}"));
            }
            s.push('\n');
        }
        s
    };
    let (big, _) = ingest_csv(addr, "validate-jobs-big", &big_csv)?;
    let slow =
        format!(r#"{{"table":"{big}","properties":["P1","P2"],"seed":3,"permutations":24}}"#);
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for _ in 0..capacity + 3 {
        let r = httpc::post(addr, "/v1/analyze", &slow, TIMEOUT)?;
        match r.status {
            202 => {
                let v = parse(&r.body).map_err(|e| e.to_string())?;
                admitted.push(v.get("job").and_then(Json::as_str).unwrap_or_default().to_string());
            }
            429 => {
                if r.header("retry-after").is_none() {
                    return Err("429 without Retry-After".into());
                }
                shed += 1;
            }
            other => return Err(format!("flood answered {other}: {}", r.body)),
        }
    }
    if shed == 0 {
        return Err(format!("flooding {} jobs past capacity {capacity} never shed", capacity + 3));
    }
    println!("queue bound: ok ({} admitted, {shed} shed with 429)", admitted.len());

    // 6. Cancel everything admitted; each must reach a terminal state.
    for job in &admitted {
        let r = httpc::request(addr, "DELETE", &format!("/v1/jobs/{job}"), "", TIMEOUT)?;
        if !matches!(r.status, 200 | 202 | 409) {
            return Err(format!("cancel {job} answered {}: {}", r.status, r.body));
        }
    }
    let mut cancelled = 0usize;
    for job in &admitted {
        let s = poll_terminal(addr, job, Duration::from_secs(120))?;
        if s.get("state").and_then(Json::as_str) == Some("cancelled") {
            cancelled += 1;
        }
    }
    if cancelled == 0 {
        return Err("cancelling a flooded queue must cancel at least one job".into());
    }
    println!("cancel: ok ({cancelled}/{} cancelled, rest finished)", admitted.len());

    // 7. Error envelope conformance.
    let r = httpc::get(addr, "/v1/nope", TIMEOUT)?;
    if r.status != 404 || parse(&r.body).map_err(|e| e.to_string())?.get("error").is_none() {
        return Err(format!("unknown route must be JSON 404: {} {}", r.status, r.body));
    }
    let r = httpc::get(addr, "/v1/tables", TIMEOUT)?;
    if r.status != 405 || r.header("allow") != Some("POST") {
        return Err(format!("GET /v1/tables must be 405 + Allow: POST, got {}", r.status));
    }
    let r = httpc::post(
        addr,
        "/v1/analyze",
        &format!(r#"{{"table":"{table}","properties":["P3"]}}"#),
        TIMEOUT,
    )?;
    if r.status != 400 {
        return Err(format!("P3 must be rejected with 400, got {}", r.status));
    }
    let r = httpc::post(
        addr,
        "/v1/analyze",
        r#"{"table":"tbl-missing","properties":["P1"]}"#,
        TIMEOUT,
    )?;
    if r.status != 404 {
        return Err(format!("unknown table must be 404, got {}", r.status));
    }
    println!("errors: ok (404 JSON, 405 + Allow, 400 on P3)");
    Ok(())
}

fn drain(addr: SocketAddr) -> Result<(), String> {
    httpc::await_healthy(addr, Duration::from_secs(30))?;
    let csv = {
        let mut s = String::from("w,x,y,z\n");
        for r in 0..60 {
            s.push_str(&format!("w{r},x{r},y{r},z{r}\n"));
        }
        s
    };
    let (table, _) = ingest_csv(addr, "drain-long", &csv)?;
    let spec = format!(
        r#"{{"table":"{table}","properties":["P1","P2","P4"],"seed":11,"permutations":48,"deadline_ms":600000}}"#
    );
    let r = httpc::post(addr, "/v1/analyze", &spec, TIMEOUT)?;
    if r.status != 202 {
        return Err(format!("analyze answered {}: {}", r.status, r.body));
    }
    let v = parse(&r.body).map_err(|e| e.to_string())?;
    let job = v.get("job").and_then(Json::as_str).unwrap_or_default().to_string();
    let status = httpc::get(addr, &format!("/v1/jobs/{job}"), TIMEOUT)?;
    println!("drain: submitted long job {job} ({})", status.body.trim());
    Ok(())
}
