//! Machine-readable analysis-job benchmark: emits `BENCH_jobs.json`.
//!
//! Drives the `observatory-jobs` scheduler in-process (no HTTP in the
//! measured path — the wire adds microseconds, the jobs take
//! milliseconds to seconds) over the two workload shapes the service
//! sees in practice:
//!
//! - **small-hot**: repeated analyses of one small table. After the
//!   first job, every permutation variant is already in the engine's
//!   content-addressed cache, so reruns skip the model entirely.
//! - **large-cold**: each job analyzes a distinct larger table — every
//!   encode is a cache miss and runs the model.
//!
//! Reported: end-to-end jobs/s over the mixed run, p95 time-to-result
//! per class, and the warm-over-cold speedup for the *same* spec
//! (first run vs rerun). The speedup is the whole point of running jobs
//! behind the shared engine cache; the binary itself asserts the >= 5x
//! gate so CI fails loudly rather than silently regressing.

use observatory_bench::harness::banner;
use observatory_jobs::{AnalyzeSpec, JobConfig, JobScheduler, JobState, Submit, TableStore};
use observatory_runtime::{Engine, EngineConfig};
use observatory_table::{Column, Table, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Jobs per class in the mixed run.
const JOBS_PER_CLASS: usize = 6;
/// Distinct tables used to measure the cold->warm transition.
const SPEEDUP_TABLES: usize = 3;

fn table(name: &str, cols: usize, rows: usize, salt: u64) -> Table {
    let columns = (0..cols)
        .map(|c| {
            let values = (0..rows)
                .map(|r| {
                    if c == 0 {
                        Value::Int((salt as i64) * 1000 + r as i64)
                    } else {
                        Value::text(format!("cell-{salt}-{c}-{r}"))
                    }
                })
                .collect();
            Column::new(format!("c{c}"), values)
        })
        .collect();
    Table::new(name, columns)
}

/// Submit one spec and block until it is done; returns time-to-result.
fn run_job(sched: &JobScheduler, spec: AnalyzeSpec) -> Duration {
    let start = Instant::now();
    let id = match sched.submit(spec) {
        Submit::Queued { id, .. } => id,
        other => panic!("submit rejected: {other:?}"),
    };
    let status = sched
        .wait_terminal(&id, Duration::from_secs(600))
        .unwrap_or_else(|| panic!("job {id} never finished"));
    assert_eq!(
        status.state,
        JobState::Done,
        "job {id} ended {:?}: {:?}",
        status.state,
        status.error
    );
    start.elapsed()
}

fn p95_ms(samples: &[Duration]) -> f64 {
    let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ms[((ms.len() - 1) as f64 * 0.95).round() as usize]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_jobs.json".into());
    banner("bench_jobs: analysis jobs small-hot vs large-cold", "DESIGN.md §15");

    let engine = Arc::new(Engine::new(EngineConfig::from_env()));
    let tables = Arc::new(TableStore::open(None).expect("in-memory table store"));
    let sched = JobScheduler::start(
        JobConfig { max_jobs: 256, ..JobConfig::default() },
        Arc::clone(&engine),
        Arc::clone(&tables),
    )
    .expect("start scheduler");

    let spec = |table: String, permutations: usize| AnalyzeSpec {
        table,
        properties: vec!["P1".to_string(), "P2".to_string()],
        seed: 7,
        permutations,
        ..AnalyzeSpec::default()
    };

    // ---- Warm-over-cold: same spec, first run vs rerun ----------------
    let mut cold_s = 0.0f64;
    let mut warm_s = 0.0f64;
    for i in 0..SPEEDUP_TABLES {
        let (id, _) = tables.add(table(&format!("speedup-{i}"), 5, 40, 900 + i as u64)).unwrap();
        cold_s += run_job(&sched, spec(id.clone(), 16)).as_secs_f64();
        warm_s += run_job(&sched, spec(id, 16)).as_secs_f64();
    }
    let speedup = cold_s / warm_s.max(1e-9);
    println!(
        "speedup: cold {cold_s:.3}s vs warm {warm_s:.3}s over {SPEEDUP_TABLES} tables -> {speedup:.1}x (gate: >= 5x)"
    );

    // ---- Mixed run: small-hot + large-cold, interleaved ----------------
    let (hot_id, _) = tables.add(table("hot", 3, 12, 7)).unwrap();
    // Pre-warm the hot table once so "small-hot" measures the steady
    // state, the way a dashboard re-analyzing one table would see it.
    run_job(&sched, spec(hot_id.clone(), 8));
    let cold_ids: Vec<String> = (0..JOBS_PER_CLASS)
        .map(|i| tables.add(table(&format!("cold-{i}"), 6, 60, i as u64)).unwrap().0)
        .collect();

    let mixed_start = Instant::now();
    let mut hot_times = Vec::with_capacity(JOBS_PER_CLASS);
    let mut cold_times = Vec::with_capacity(JOBS_PER_CLASS);
    for id in &cold_ids {
        hot_times.push(run_job(&sched, spec(hot_id.clone(), 8)));
        cold_times.push(run_job(&sched, spec(id.clone(), 8)));
    }
    let mixed_s = mixed_start.elapsed().as_secs_f64();
    let total_jobs = 2 * JOBS_PER_CLASS;
    let jobs_per_s = total_jobs as f64 / mixed_s.max(1e-9);
    let (hot_p95, cold_p95) = (p95_ms(&hot_times), p95_ms(&cold_times));
    println!(
        "mixed: {total_jobs} jobs in {mixed_s:.3}s -> {jobs_per_s:.2} jobs/s \
         (p95 small-hot {hot_p95:.1}ms, large-cold {cold_p95:.1}ms)"
    );

    let totals = sched.drain();
    assert_eq!(totals.outstanding(), 0, "drain must account for every job");

    let json = format!(
        concat!(
            "{{\n",
            "  \"jobs\": {},\n",
            "  \"mixed_seconds\": {:.4},\n",
            "  \"jobs_per_s\": {:.2},\n",
            "  \"small_hot\": {{\"jobs\": {}, \"p95_ms\": {:.2}}},\n",
            "  \"large_cold\": {{\"jobs\": {}, \"p95_ms\": {:.2}}},\n",
            "  \"cold_seconds\": {:.4},\n",
            "  \"warm_seconds\": {:.4},\n",
            "  \"warm_over_cold_speedup\": {:.2}\n",
            "}}\n"
        ),
        total_jobs,
        mixed_s,
        jobs_per_s,
        JOBS_PER_CLASS,
        hot_p95,
        JOBS_PER_CLASS,
        cold_p95,
        cold_s,
        warm_s,
        speedup,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_jobs.json");
    println!("wrote -> {out_path}");
    assert!(
        speedup >= 5.0,
        "warm jobs must be >= 5x faster than cold (got {speedup:.2}x) — \
         the scheduler is not hitting the shared encoding cache"
    );
}
