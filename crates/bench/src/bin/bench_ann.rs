//! Machine-readable ANN benchmark: emits `BENCH_ann.json`.
//!
//! Quantifies what the sharded HNSW index buys over the exact flat scan
//! on a clustered synthetic corpus (the regime of real table-embedding
//! collections):
//!
//! 1. **Ground truth**: a flat [`KnnIndex`] answers every query exactly,
//!    timed — this is both the recall reference and the QPS baseline.
//! 2. **Build**: a [`ShardedHnsw`] over the same vectors (parallel
//!    per-shard construction), timed.
//! 3. **Sweep**: recall@10 and QPS at several `ef_search` beam widths,
//!    bracketing the default.
//!
//! Output is one JSON document (path in `argv[1]`, default
//! `BENCH_ann.json`). The acceptance gates — recall@10 ≥ 0.95 AND QPS ≥
//! 5× flat at the default beam width on the 100k corpus — are asserted
//! here, so a regression fails the process, not just a dashboard.
//! `--full` adds a 1M-vector scale (several minutes; not run in CI).
//! DESIGN.md §14 quotes the output directly.

use observatory_bench::harness::banner;
use observatory_linalg::SplitMix64;
use observatory_search::{AnnIndex, HnswConfig, KnnIndex, SearchParams, ShardedHnsw};
use std::time::Instant;

const DIM: usize = 64;
const QUERIES: usize = 200;
const K: usize = 10;
const SHARDS: usize = 4;
const EF_SWEEP: [usize; 3] = [32, 64, 128];

/// Clustered corpus: `n` points spread over `n/100` Gaussian clusters.
fn corpus(n: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
    let mut rng = SplitMix64::new(seed);
    let n_centers = (n / 100).max(1);
    let centers: Vec<Vec<f64>> =
        (0..n_centers).map(|_| (0..DIM).map(|_| rng.next_normal()).collect()).collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_centers];
            let v: Vec<f64> = c.iter().map(|x| x + 0.1 * rng.next_normal()).collect();
            (format!("v{i}"), v)
        })
        .collect()
}

/// Held-out queries: perturbations of corpus points (not the points
/// themselves, so recall is not just self-retrieval).
fn make_queries(data: &[(String, Vec<f64>)], seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..QUERIES)
        .map(|_| {
            let base = &data[rng.next_below(data.len())].1;
            base.iter().map(|x| x + 0.05 * rng.next_normal()).collect()
        })
        .collect()
}

struct SweepPoint {
    ef: usize,
    recall: f64,
    qps: f64,
}

struct ScaleResult {
    n: usize,
    build_s: f64,
    flat_qps: f64,
    points: Vec<SweepPoint>,
}

fn run_scale(n: usize, jobs: usize) -> ScaleResult {
    let data = corpus(n, 0xBE2C + n as u64);
    let queries = make_queries(&data, 0x5EED);

    let mut flat = KnnIndex::new(DIM);
    for (key, v) in &data {
        flat.insert(key.clone(), v);
    }
    let t = Instant::now();
    let truth: Vec<Vec<String>> = queries.iter().map(|q| flat.neighbor_keys(q, K, None)).collect();
    let flat_s = t.elapsed().as_secs_f64();
    let flat_qps = QUERIES as f64 / flat_s;
    println!("  flat:  {QUERIES} queries in {flat_s:.3}s ({flat_qps:.0} qps)");

    let t = Instant::now();
    let ann = ShardedHnsw::build(DIM, SHARDS, HnswConfig::default(), &data, jobs);
    let build_s = t.elapsed().as_secs_f64();
    println!("  build: {n} vectors x {SHARDS} shards in {build_s:.2}s ({jobs} jobs)");

    let mut points = Vec::new();
    for ef in EF_SWEEP {
        let params = SearchParams { ef_search: Some(ef) };
        let t = Instant::now();
        let hits: Vec<Vec<String>> = queries
            .iter()
            .map(|q| ann.search(q, K, None, params).into_iter().map(|h| h.key).collect())
            .collect();
        let ann_s = t.elapsed().as_secs_f64();
        let qps = QUERIES as f64 / ann_s;
        let mut recall = 0.0;
        for (approx, exact) in hits.iter().zip(&truth) {
            let t: std::collections::HashSet<&String> = exact.iter().collect();
            recall += approx.iter().filter(|k| t.contains(k)).count() as f64 / exact.len() as f64;
        }
        recall /= QUERIES as f64;
        println!("  ef={ef:<4} recall@{K} {recall:.4}, {qps:.0} qps ({:.1}x flat)", qps / flat_qps);
        points.push(SweepPoint { ef, recall, qps });
    }
    ScaleResult { n, build_s, flat_qps, points }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_ann.json".into());
    let full = args.iter().any(|a| a == "--full");
    banner("bench_ann: sharded HNSW vs exact flat scan", "DESIGN.md §14");
    let jobs = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut scales = vec![100_000usize];
    if full {
        scales.push(1_000_000);
    }
    let mut results = Vec::new();
    for n in scales {
        println!("scale {n}:");
        results.push(run_scale(n, jobs));
    }

    // Acceptance gates at the default beam width on the 100k corpus.
    let base = &results[0];
    let default_ef = HnswConfig::default().ef_search;
    let at_default =
        base.points.iter().find(|p| p.ef == default_ef).expect("sweep covers the default ef");
    println!(
        "gates: recall@{K} {:.4} (>= 0.95), qps {:.0} vs flat {:.0} ({:.1}x, >= 5x)",
        at_default.recall,
        at_default.qps,
        base.flat_qps,
        at_default.qps / base.flat_qps,
    );
    assert!(at_default.recall >= 0.95, "recall gate failed: {:.4} < 0.95", at_default.recall);
    assert!(
        at_default.qps >= 5.0 * base.flat_qps,
        "QPS gate failed: {:.0} < 5x flat ({:.0})",
        at_default.qps,
        base.flat_qps
    );

    let scales_json: Vec<String> = results
        .iter()
        .map(|r| {
            let points: Vec<String> = r
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"ef\": {}, \"recall_at_10\": {:.4}, \"qps\": {:.1}, \
                         \"speedup_over_flat\": {:.2}}}",
                        p.ef,
                        p.recall,
                        p.qps,
                        p.qps / r.flat_qps
                    )
                })
                .collect();
            format!(
                "{{\"vectors\": {}, \"build_seconds\": {:.2}, \"flat_qps\": {:.1}, \
                 \"sweep\": [{}]}}",
                r.n,
                r.build_s,
                r.flat_qps,
                points.join(", ")
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"dim\": {},\n",
            "  \"k\": {},\n",
            "  \"queries\": {},\n",
            "  \"shards\": {},\n",
            "  \"default_ef\": {},\n",
            "  \"scales\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        DIM,
        K,
        QUERIES,
        SHARDS,
        default_ef,
        scales_json.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_ann.json");
    println!("wrote -> {out_path}");
}
