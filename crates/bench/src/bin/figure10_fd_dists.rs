//! Regenerates **Figure 10**: the distributions of group-wise translation
//! variances for column pairs with and without FDs — the paper's evidence
//! that no model separates the two.

use observatory_bench::harness::{banner, context, spider_corpus, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::fd::FunctionalDependencies;
use observatory_core::report::render_report;
use observatory_models::registry::all_models;

fn main() {
    banner("Figure 10: FD vs non-FD translation-variance distributions", "paper §5.4, Figure 10");
    let corpus = spider_corpus(Scale::from_env());
    let models = all_models();
    for report in run_property(&FunctionalDependencies::default(), &models, &corpus, &context()) {
        if report.records.is_empty() {
            continue;
        }
        print!("{}", render_report(&report));
        // Overlap diagnostic: fraction of non-FD values below the FD median.
        if let (Some(fd), Some(nonfd)) =
            (report.distribution("s2/fd"), report.distribution("s2/nonfd"))
        {
            let fd_median = fd.summary().median;
            let below = nonfd.values.iter().filter(|v| **v < fd_median).count() as f64
                / nonfd.values.len() as f64;
            println!(
                "separation check ({}): {:.0}% of non-FD variances fall below the FD median — \
                 clear separation would put ~0% there; KS D = {} (p = {})\n",
                report.model,
                below * 100.0,
                report.scalar("ks/statistic").map_or("-".into(), |v| format!("{v:.2}")),
                report.scalar("ks/p_value").map_or("-".into(), |v| format!("{v:.3}")),
            );
        }
    }
}
