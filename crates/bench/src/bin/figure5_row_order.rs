//! Regenerates **Figure 5**: cosine similarity and MCV distributions of
//! column / row / table embeddings under row shuffling, per model.

use observatory_bench::harness::{banner, context, runtime_report, wiki_corpus, Scale};
use observatory_core::framework::{run_property, Property};
use observatory_core::props::row_order::RowOrderInsignificance;
use observatory_core::report::render_report;
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Figure 5: row order insignificance (P1)",
        "paper §5.1, Figure 5 — WikiTables, ≤1000 row permutations",
    );
    let scale = Scale::from_env();
    let corpus = wiki_corpus(scale);
    let property = RowOrderInsignificance { max_permutations: scale.permutations() };
    let models = all_models();
    let ctx = context();
    for report in run_property(&property, &models, &corpus, &ctx) {
        print!("{}", render_report(&report));
    }
    println!(
        "(models in scope: {}; levels each model lacks produce no rows, as in the paper)",
        property.name()
    );
    runtime_report(&ctx);
}
