//! `loadgen` — closed-loop load generator for `observatory serve`.
//!
//! ```text
//! loadgen <host:port> [--concurrency N] [--requests N] [--model NAME]
//!         [--distinct N] [--rows N] [--level L] [--mode embed|analyze]
//! ```
//!
//! Spawns `--concurrency` client threads; each issues `--requests`
//! `POST /v1/embed` calls back-to-back (closed loop: the next request
//! starts only when the previous response lands), one fresh connection
//! per request, cycling through `--distinct` table payloads. Latency is
//! recorded into the workspace's fixed-bucket [`Histogram`] (one per
//! thread, merged at the end — no contention on the hot path) and the
//! run is summarized as:
//!
//! ```text
//! loadgen: 1600 ok, 0 shed, 0 errors in 3.41s -> 469.2 req/s
//! latency p50/p95/p99: 58.1 ms / 83.4 ms / 99.2 ms
//! ```
//!
//! Exit code 0 when every request was answered 200, 1 otherwise — so
//! CI can flood a server and assert nothing hung or failed. Comparing
//! `--max-batch 1` with the default batching server quantifies the
//! micro-batching speedup (the PR gate asks for ≥2× at concurrency 32
//! on multi-core hosts — the win is `encode_batch` fanning unique
//! tables across `--jobs` workers, so it scales with cores; see
//! DESIGN.md §10 for single-core expectations).
//!
//! `--mode analyze` switches the workload to the async-jobs plane: the
//! distinct tables are ingested once via `POST /v1/tables`, then each
//! "request" is a `POST /v1/analyze` (P1, small permutation budget)
//! polled to a terminal state — latency is submit → terminal. Shed (429)
//! and failed/cancelled jobs count like shed/errors on the embed path.
//!
//! ## Open-loop mode
//!
//! `--arrival poisson|burst` switches the generator to an *open loop*:
//! arrivals follow a schedule fixed before the run (`--rate` req/s for
//! `--duration-s` seconds) and are issued over `--conns` keep-alive
//! connections regardless of whether earlier responses have landed.
//! Latency is measured **from the scheduled arrival time**, so queueing
//! delay the server induces counts against it — a saturated server shows
//! coordinated-omission-free tail latencies instead of the closed loop's
//! self-throttling flattery. `burst` sends the same average rate as a
//! square wave (2× rate for half of each second, silence the other
//! half). `--model zipf` draws each request's model from a Zipf
//! distribution over the full registry, approximating skewed real-world
//! model popularity. The run reports the fraction answered under
//! `--slo-ms` and the shed (429) rate:
//!
//! ```text
//! loadgen: 987 ok, 13 shed, 0 errors in 5.02s -> 196.6 req/s (offered 200.0)
//! latency p50/p95/p99 (scheduled arrival -> response): 12.1 ms / 48.0 ms / 91.2 ms
//! slo: 98.2% of ok under 250 ms; shed rate 1.3%; reconnects 0
//! ```

use observatory_bench::httpc;
use observatory_models::registry::MODEL_NAMES;
use observatory_runtime::metrics::Histogram;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One thread's share of the run.
struct WorkerReport {
    latency: Histogram,
    ok: u64,
    shed: u64,
    errors: u64,
    /// ok responses whose scheduled-arrival latency beat the SLO
    /// (open loop only; the closed loop reports percentiles instead).
    under_slo: u64,
    /// Keep-alive connections the client had to re-open (open loop only).
    reconnects: u64,
}

impl WorkerReport {
    fn new() -> WorkerReport {
        WorkerReport {
            latency: Histogram::default(),
            ok: 0,
            shed: 0,
            errors: 0,
            under_slo: 0,
            reconnects: 0,
        }
    }
}

/// Deterministic xorshift64* — good enough for arrival jitter and Zipf
/// draws, and keeps the run reproducible for a given seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1] — never exactly zero, safe under `ln()`.
    fn f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// Arrival offsets (ns from run start) for the whole open-loop run.
fn build_schedule(arrival: &str, rate: f64, duration_s: f64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity((rate * duration_s) as usize + 1);
    let mut t = 0.0f64;
    match arrival {
        // Exponential inter-arrivals: a memoryless stream at `rate`.
        "poisson" => {
            while t < duration_s {
                out.push((t * 1e9) as u64);
                t += -rng.f64().ln() / rate;
            }
        }
        // Square wave with the same average rate: 2x for the first half
        // of each second, silence for the second half. Stresses the
        // admission queue the way batchy upstream producers do.
        "burst" => {
            while t < duration_s {
                if t.fract() < 0.5 {
                    out.push((t * 1e9) as u64);
                    t += 1.0 / (2.0 * rate);
                } else {
                    t = t.trunc() + 1.0;
                }
            }
        }
        other => unreachable!("unvalidated arrival '{other}'"),
    }
    out
}

/// Zipf(s=1) sampler over the model registry: rank r gets weight 1/(r+1).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn over(n: usize) -> Zipf {
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / (r + 1) as f64;
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.iter().position(|&c| u <= c).unwrap_or(self.cdf.len() - 1)
    }
}

/// One open-loop worker: pulls arrival slots off the shared schedule,
/// sleeps until each slot, and issues the request on its keep-alive
/// connection. Latency runs from the *scheduled* arrival, so time spent
/// waiting for the connection (server-induced backpressure) counts.
fn worker_open(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    order: Arc<Vec<u32>>,
    schedule: Arc<Vec<u64>>,
    next: Arc<AtomicUsize>,
    start: Instant,
    slo: Duration,
) -> WorkerReport {
    let mut report = WorkerReport::new();
    let mut client = httpc::Client::new(addr, Duration::from_secs(60));
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&offset_ns) = schedule.get(i) else { break };
        let scheduled = start + Duration::from_nanos(offset_ns);
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let body = &bodies[order[i] as usize];
        match client.post("/v1/embed", body) {
            Ok(r) if r.status == 200 => {
                let latency = scheduled.elapsed();
                report.latency.record(latency);
                report.ok += 1;
                if latency <= slo {
                    report.under_slo += 1;
                }
            }
            Ok(r) if r.status == 429 => report.shed += 1,
            Ok(r) => {
                eprintln!("loadgen: unexpected status {}: {}", r.status, r.body);
                report.errors += 1;
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                report.errors += 1;
            }
        }
    }
    report.reconnects = client.reconnects;
    report
}

fn embed_body(model: &str, level: &str, tag: usize, rows: usize) -> String {
    // Distinct string cells defeat the engine cache across tags while
    // staying cheap to build; within a tag repeats hit the cache the way
    // a real workload with popular tables would.
    let ints: Vec<String> = (0..rows).map(|r| (tag * 31 + r).to_string()).collect();
    let texts: Vec<String> = (0..rows).map(|r| format!("\"item-{tag}-{r}\"")).collect();
    format!(
        r#"{{"model":"{model}","level":"{level}","id":"load-{tag}","table":{{"name":"load{tag}","columns":[{{"header":"id","values":[{}]}},{{"header":"name","values":[{}]}}]}}}}"#,
        ints.join(","),
        texts.join(","),
    )
}

fn worker(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    requests: usize,
    offset: usize,
    analyze: bool,
) -> WorkerReport {
    let mut report = WorkerReport::new();
    for i in 0..requests {
        let body = &bodies[(offset + i) % bodies.len()];
        if analyze {
            analyze_once(addr, body, &mut report);
            continue;
        }
        let start = Instant::now();
        match httpc::post(addr, "/v1/embed", body, Duration::from_secs(60)) {
            Ok(r) if r.status == 200 => {
                report.latency.record(start.elapsed());
                report.ok += 1;
            }
            Ok(r) if r.status == 429 => report.shed += 1,
            Ok(r) => {
                eprintln!("loadgen: unexpected status {}: {}", r.status, r.body);
                report.errors += 1;
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                report.errors += 1;
            }
        }
    }
    report
}

/// One analyze "request": submit the job and poll it to a terminal
/// state. Latency is submit -> terminal (time-to-result, what a client
/// of the async API actually waits for).
fn analyze_once(addr: SocketAddr, body: &str, report: &mut WorkerReport) {
    let start = Instant::now();
    let job = match httpc::post(addr, "/v1/analyze", body, Duration::from_secs(60)) {
        Ok(r) if r.status == 202 => match extract_job(&r.body) {
            Some(j) => j,
            None => {
                eprintln!("loadgen: 202 without a job id: {}", r.body);
                report.errors += 1;
                return;
            }
        },
        Ok(r) if r.status == 429 => {
            report.shed += 1;
            return;
        }
        Ok(r) => {
            eprintln!("loadgen: unexpected analyze status {}: {}", r.status, r.body);
            report.errors += 1;
            return;
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            report.errors += 1;
            return;
        }
    };
    let budget = Duration::from_secs(600);
    loop {
        match httpc::get(addr, &format!("/v1/jobs/{job}"), Duration::from_secs(60)) {
            Ok(r) if r.status == 200 => {
                if r.body.contains("\"state\":\"done\"") {
                    report.latency.record(start.elapsed());
                    report.ok += 1;
                    return;
                }
                if r.body.contains("\"state\":\"failed\"")
                    || r.body.contains("\"state\":\"cancelled\"")
                {
                    eprintln!("loadgen: job {job} ended without a result: {}", r.body);
                    report.errors += 1;
                    return;
                }
            }
            Ok(r) => {
                eprintln!("loadgen: poll {job} answered {}: {}", r.status, r.body);
                report.errors += 1;
                return;
            }
            Err(e) => {
                eprintln!("loadgen: poll {job}: {e}");
                report.errors += 1;
                return;
            }
        }
        if start.elapsed() > budget {
            eprintln!("loadgen: job {job} still running after {budget:?}");
            report.errors += 1;
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Pull `"job":"..."` out of a 202 body without a full JSON parse.
fn extract_job(body: &str) -> Option<String> {
    let tail = body.split("\"job\":\"").nth(1)?;
    Some(tail.split('\"').next()?.to_string())
}

/// Ingest one CSV table per distinct payload; returns analyze bodies.
fn analyze_bodies(
    addr: SocketAddr,
    model: &str,
    distinct: usize,
    rows: usize,
) -> Result<Vec<String>, String> {
    let mut bodies = Vec::with_capacity(distinct);
    for t in 0..distinct {
        let mut csv = String::from("id,name\n");
        for r in 0..rows {
            csv.push_str(&format!("{},item-{t}-{r}\n", t * 31 + r));
        }
        let resp = httpc::request_with_headers(
            addr,
            "POST",
            "/v1/tables",
            &[("Content-Type", "text/csv"), ("x-table-name", &format!("load{t}"))],
            &csv,
            Duration::from_secs(60),
        )?;
        if resp.status != 201 && resp.status != 200 {
            return Err(format!("ingest load{t} answered {}: {}", resp.status, resp.body));
        }
        let id = resp
            .body
            .split("\"id\":\"")
            .nth(1)
            .and_then(|s| s.split('\"').next())
            .ok_or_else(|| format!("ingest body without id: {}", resp.body))?
            .to_string();
        bodies.push(format!(
            r#"{{"table":"{id}","model":"{model}","properties":["P1"],"seed":7,"permutations":4}}"#
        ));
    }
    Ok(bodies)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn flag_num(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw.parse::<usize>().map_err(|_| format!("invalid value '{raw}' for {name}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr_raw) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: loadgen <host:port> [--concurrency N] [--requests N] [--model NAME|zipf] \
             [--distinct N] [--rows N] [--level table|column|row|cell] [--mode embed|analyze] \
             [--arrival closed|poisson|burst] [--rate REQ_PER_S] [--duration-s S] \
             [--conns N] [--slo-ms MS] [--seed N]"
        );
        std::process::exit(2);
    };
    let parsed = (|| {
        Ok::<_, String>((
            httpc::resolve(addr_raw)?,
            flag_num(&args, "--concurrency", 8)?,
            flag_num(&args, "--requests", 50)?,
            flag_num(&args, "--distinct", 64)?,
            flag_num(&args, "--rows", 4)?,
            flag_num(&args, "--rate", 200)?,
            flag_num(&args, "--duration-s", 5)?,
            flag_num(&args, "--conns", 32)?,
            flag_num(&args, "--slo-ms", 250)?,
            flag_num(&args, "--seed", 42)?,
        ))
    })();
    let (addr, concurrency, requests, distinct, rows, rate, duration_s, conns, slo_ms, seed) =
        match parsed {
            Ok(v) => v,
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(2);
            }
        };
    let model = flag(&args, "--model").unwrap_or_else(|| "bert".to_string());
    let level = flag(&args, "--level").unwrap_or_else(|| "column".to_string());
    let mode = flag(&args, "--mode").unwrap_or_else(|| "embed".to_string());
    let arrival = flag(&args, "--arrival").unwrap_or_else(|| "closed".to_string());
    let analyze = match mode.as_str() {
        "embed" => false,
        "analyze" => true,
        other => {
            eprintln!("loadgen: unknown --mode '{other}' (embed|analyze)");
            std::process::exit(2);
        }
    };
    match arrival.as_str() {
        "closed" | "poisson" | "burst" => {}
        other => {
            eprintln!("loadgen: unknown --arrival '{other}' (closed|poisson|burst)");
            std::process::exit(2);
        }
    }
    let open = arrival != "closed";
    if open && (analyze || rate == 0 || duration_s == 0 || conns == 0) {
        eprintln!("loadgen: open-loop runs need --mode embed, --rate >= 1, --duration-s >= 1, --conns >= 1");
        std::process::exit(2);
    }
    if model == "zipf" && (!open || analyze) {
        eprintln!("loadgen: --model zipf needs an open-loop embed run (--arrival poisson|burst)");
        std::process::exit(2);
    }

    if let Err(e) = httpc::await_healthy(addr, Duration::from_secs(20)) {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }

    if open {
        run_open(
            addr,
            &model,
            &level,
            &arrival,
            rate,
            duration_s,
            conns,
            distinct.max(1),
            rows.max(1),
            slo_ms,
            seed,
        );
        return;
    }

    let bodies: Arc<Vec<String>> = if analyze {
        match analyze_bodies(addr, &model, distinct.max(1), rows.max(1)) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    } else {
        Arc::new((0..distinct.max(1)).map(|t| embed_body(&model, &level, t, rows.max(1))).collect())
    };
    println!(
        "loadgen: {concurrency} clients x {requests} requests -> {addr} \
         (mode={mode}, model={model}, level={level}, {} distinct tables, {rows} rows)",
        bodies.len()
    );

    let started = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || worker(addr, bodies, requests, c * 17, analyze))
        })
        .collect();
    let mut latency = observatory_runtime::metrics::Histogram::default().snapshot();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for w in workers {
        let r = w.join().expect("worker thread");
        latency.merge(&r.latency.snapshot());
        ok += r.ok;
        shed += r.shed;
        errors += r.errors;
    }
    let wall = started.elapsed();
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {ok} ok, {shed} shed, {errors} errors in {:.2}s -> {throughput:.1} req/s",
        wall.as_secs_f64(),
    );
    println!(
        "latency p50/p95/p99: {:.1} ms / {:.1} ms / {:.1} ms",
        latency.p50_ns() / 1e6,
        latency.p95_ns() / 1e6,
        latency.p99_ns() / 1e6,
    );
    if errors > 0 || ok == 0 {
        std::process::exit(1);
    }
}

/// The open-loop run: fixed arrival schedule over keep-alive connections.
#[allow(clippy::too_many_arguments)]
fn run_open(
    addr: SocketAddr,
    model: &str,
    level: &str,
    arrival: &str,
    rate: usize,
    duration_s: usize,
    conns: usize,
    distinct: usize,
    rows: usize,
    slo_ms: usize,
    seed: usize,
) {
    let schedule = Arc::new(build_schedule(arrival, rate as f64, duration_s as f64, seed as u64));
    // Bodies are flat [model-major x tag-minor]; `order` maps each
    // schedule slot to a body, so the Zipf draw happens once up front
    // and the hot path is an array lookup.
    let models: Vec<&str> = if model == "zipf" { MODEL_NAMES.to_vec() } else { vec![model] };
    let bodies: Arc<Vec<String>> = Arc::new(
        models
            .iter()
            .flat_map(|m| (0..distinct).map(move |t| embed_body(m, level, t, rows)))
            .collect(),
    );
    let order: Arc<Vec<u32>> = Arc::new(if model == "zipf" {
        let zipf = Zipf::over(models.len());
        let mut rng = Rng::new(seed as u64 ^ 0x5DEECE66D);
        (0..schedule.len())
            .map(|i| (zipf.sample(rng.f64()) * distinct + i % distinct) as u32)
            .collect()
    } else {
        (0..schedule.len()).map(|i| (i % distinct) as u32).collect()
    });
    let slo = Duration::from_millis(slo_ms as u64);
    println!(
        "loadgen: open-loop {arrival} {rate} req/s x {duration_s}s over {conns} keep-alive conns \
         -> {addr} (model={model}, level={level}, {} bodies, {rows} rows, slo={slo_ms}ms)",
        bodies.len(),
    );

    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|_| {
            let (bodies, order, schedule, next) =
                (Arc::clone(&bodies), Arc::clone(&order), Arc::clone(&schedule), Arc::clone(&next));
            std::thread::spawn(move || {
                worker_open(addr, bodies, order, schedule, next, started, slo)
            })
        })
        .collect();
    let mut latency = Histogram::default().snapshot();
    let (mut ok, mut shed, mut errors, mut under_slo, mut reconnects) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for w in workers {
        let r = w.join().expect("worker thread");
        latency.merge(&r.latency.snapshot());
        ok += r.ok;
        shed += r.shed;
        errors += r.errors;
        under_slo += r.under_slo;
        reconnects += r.reconnects;
    }
    let wall = started.elapsed();
    let offered = schedule.len() as f64 / (duration_s as f64).max(1e-9);
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
    let answered = ok + shed + errors;
    println!(
        "loadgen: {ok} ok, {shed} shed, {errors} errors in {:.2}s -> {throughput:.1} req/s (offered {offered:.1})",
        wall.as_secs_f64(),
    );
    println!(
        "latency p50/p95/p99 (scheduled arrival -> response): {:.1} ms / {:.1} ms / {:.1} ms",
        latency.p50_ns() / 1e6,
        latency.p95_ns() / 1e6,
        latency.p99_ns() / 1e6,
    );
    println!(
        "slo: {:.1}% of ok under {slo_ms} ms; shed rate {:.1}%; reconnects {reconnects}",
        if ok > 0 { 100.0 * under_slo as f64 / ok as f64 } else { 0.0 },
        if answered > 0 { 100.0 * shed as f64 / answered as f64 } else { 0.0 },
    );
    if errors > 0 || ok == 0 {
        std::process::exit(1);
    }
}
