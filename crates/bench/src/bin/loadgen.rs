//! `loadgen` — closed-loop load generator for `observatory serve`.
//!
//! ```text
//! loadgen <host:port> [--concurrency N] [--requests N] [--model NAME]
//!         [--distinct N] [--rows N] [--level L] [--mode embed|analyze]
//! ```
//!
//! Spawns `--concurrency` client threads; each issues `--requests`
//! `POST /v1/embed` calls back-to-back (closed loop: the next request
//! starts only when the previous response lands), one fresh connection
//! per request, cycling through `--distinct` table payloads. Latency is
//! recorded into the workspace's fixed-bucket [`Histogram`] (one per
//! thread, merged at the end — no contention on the hot path) and the
//! run is summarized as:
//!
//! ```text
//! loadgen: 1600 ok, 0 shed, 0 errors in 3.41s -> 469.2 req/s
//! latency p50/p95/p99: 58.1 ms / 83.4 ms / 99.2 ms
//! ```
//!
//! Exit code 0 when every request was answered 200, 1 otherwise — so
//! CI can flood a server and assert nothing hung or failed. Comparing
//! `--max-batch 1` with the default batching server quantifies the
//! micro-batching speedup (the PR gate asks for ≥2× at concurrency 32
//! on multi-core hosts — the win is `encode_batch` fanning unique
//! tables across `--jobs` workers, so it scales with cores; see
//! DESIGN.md §10 for single-core expectations).
//!
//! `--mode analyze` switches the workload to the async-jobs plane: the
//! distinct tables are ingested once via `POST /v1/tables`, then each
//! "request" is a `POST /v1/analyze` (P1, small permutation budget)
//! polled to a terminal state — latency is submit → terminal. Shed (429)
//! and failed/cancelled jobs count like shed/errors on the embed path.

use observatory_bench::httpc;
use observatory_runtime::metrics::Histogram;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One thread's share of the run.
struct WorkerReport {
    latency: Histogram,
    ok: u64,
    shed: u64,
    errors: u64,
}

fn embed_body(model: &str, level: &str, tag: usize, rows: usize) -> String {
    // Distinct string cells defeat the engine cache across tags while
    // staying cheap to build; within a tag repeats hit the cache the way
    // a real workload with popular tables would.
    let ints: Vec<String> = (0..rows).map(|r| (tag * 31 + r).to_string()).collect();
    let texts: Vec<String> = (0..rows).map(|r| format!("\"item-{tag}-{r}\"")).collect();
    format!(
        r#"{{"model":"{model}","level":"{level}","id":"load-{tag}","table":{{"name":"load{tag}","columns":[{{"header":"id","values":[{}]}},{{"header":"name","values":[{}]}}]}}}}"#,
        ints.join(","),
        texts.join(","),
    )
}

fn worker(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    requests: usize,
    offset: usize,
    analyze: bool,
) -> WorkerReport {
    let mut report = WorkerReport { latency: Histogram::default(), ok: 0, shed: 0, errors: 0 };
    for i in 0..requests {
        let body = &bodies[(offset + i) % bodies.len()];
        if analyze {
            analyze_once(addr, body, &mut report);
            continue;
        }
        let start = Instant::now();
        match httpc::post(addr, "/v1/embed", body, Duration::from_secs(60)) {
            Ok(r) if r.status == 200 => {
                report.latency.record(start.elapsed());
                report.ok += 1;
            }
            Ok(r) if r.status == 429 => report.shed += 1,
            Ok(r) => {
                eprintln!("loadgen: unexpected status {}: {}", r.status, r.body);
                report.errors += 1;
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                report.errors += 1;
            }
        }
    }
    report
}

/// One analyze "request": submit the job and poll it to a terminal
/// state. Latency is submit -> terminal (time-to-result, what a client
/// of the async API actually waits for).
fn analyze_once(addr: SocketAddr, body: &str, report: &mut WorkerReport) {
    let start = Instant::now();
    let job = match httpc::post(addr, "/v1/analyze", body, Duration::from_secs(60)) {
        Ok(r) if r.status == 202 => match extract_job(&r.body) {
            Some(j) => j,
            None => {
                eprintln!("loadgen: 202 without a job id: {}", r.body);
                report.errors += 1;
                return;
            }
        },
        Ok(r) if r.status == 429 => {
            report.shed += 1;
            return;
        }
        Ok(r) => {
            eprintln!("loadgen: unexpected analyze status {}: {}", r.status, r.body);
            report.errors += 1;
            return;
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            report.errors += 1;
            return;
        }
    };
    let budget = Duration::from_secs(600);
    loop {
        match httpc::get(addr, &format!("/v1/jobs/{job}"), Duration::from_secs(60)) {
            Ok(r) if r.status == 200 => {
                if r.body.contains("\"state\":\"done\"") {
                    report.latency.record(start.elapsed());
                    report.ok += 1;
                    return;
                }
                if r.body.contains("\"state\":\"failed\"")
                    || r.body.contains("\"state\":\"cancelled\"")
                {
                    eprintln!("loadgen: job {job} ended without a result: {}", r.body);
                    report.errors += 1;
                    return;
                }
            }
            Ok(r) => {
                eprintln!("loadgen: poll {job} answered {}: {}", r.status, r.body);
                report.errors += 1;
                return;
            }
            Err(e) => {
                eprintln!("loadgen: poll {job}: {e}");
                report.errors += 1;
                return;
            }
        }
        if start.elapsed() > budget {
            eprintln!("loadgen: job {job} still running after {budget:?}");
            report.errors += 1;
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Pull `"job":"..."` out of a 202 body without a full JSON parse.
fn extract_job(body: &str) -> Option<String> {
    let tail = body.split("\"job\":\"").nth(1)?;
    Some(tail.split('\"').next()?.to_string())
}

/// Ingest one CSV table per distinct payload; returns analyze bodies.
fn analyze_bodies(
    addr: SocketAddr,
    model: &str,
    distinct: usize,
    rows: usize,
) -> Result<Vec<String>, String> {
    let mut bodies = Vec::with_capacity(distinct);
    for t in 0..distinct {
        let mut csv = String::from("id,name\n");
        for r in 0..rows {
            csv.push_str(&format!("{},item-{t}-{r}\n", t * 31 + r));
        }
        let resp = httpc::request_with_headers(
            addr,
            "POST",
            "/v1/tables",
            &[("Content-Type", "text/csv"), ("x-table-name", &format!("load{t}"))],
            &csv,
            Duration::from_secs(60),
        )?;
        if resp.status != 201 && resp.status != 200 {
            return Err(format!("ingest load{t} answered {}: {}", resp.status, resp.body));
        }
        let id = resp
            .body
            .split("\"id\":\"")
            .nth(1)
            .and_then(|s| s.split('\"').next())
            .ok_or_else(|| format!("ingest body without id: {}", resp.body))?
            .to_string();
        bodies.push(format!(
            r#"{{"table":"{id}","model":"{model}","properties":["P1"],"seed":7,"permutations":4}}"#
        ));
    }
    Ok(bodies)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn flag_num(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw.parse::<usize>().map_err(|_| format!("invalid value '{raw}' for {name}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr_raw) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: loadgen <host:port> [--concurrency N] [--requests N] [--model NAME] \
             [--distinct N] [--rows N] [--level table|column|row|cell] [--mode embed|analyze]"
        );
        std::process::exit(2);
    };
    let parsed = (|| {
        Ok::<_, String>((
            httpc::resolve(addr_raw)?,
            flag_num(&args, "--concurrency", 8)?,
            flag_num(&args, "--requests", 50)?,
            flag_num(&args, "--distinct", 64)?,
            flag_num(&args, "--rows", 4)?,
        ))
    })();
    let (addr, concurrency, requests, distinct, rows) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let model = flag(&args, "--model").unwrap_or_else(|| "bert".to_string());
    let level = flag(&args, "--level").unwrap_or_else(|| "column".to_string());
    let mode = flag(&args, "--mode").unwrap_or_else(|| "embed".to_string());
    let analyze = match mode.as_str() {
        "embed" => false,
        "analyze" => true,
        other => {
            eprintln!("loadgen: unknown --mode '{other}' (embed|analyze)");
            std::process::exit(2);
        }
    };

    if let Err(e) = httpc::await_healthy(addr, Duration::from_secs(20)) {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }

    let bodies: Arc<Vec<String>> = if analyze {
        match analyze_bodies(addr, &model, distinct.max(1), rows.max(1)) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    } else {
        Arc::new((0..distinct.max(1)).map(|t| embed_body(&model, &level, t, rows.max(1))).collect())
    };
    println!(
        "loadgen: {concurrency} clients x {requests} requests -> {addr} \
         (mode={mode}, model={model}, level={level}, {} distinct tables, {rows} rows)",
        bodies.len()
    );

    let started = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || worker(addr, bodies, requests, c * 17, analyze))
        })
        .collect();
    let mut latency = observatory_runtime::metrics::Histogram::default().snapshot();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for w in workers {
        let r = w.join().expect("worker thread");
        latency.merge(&r.latency.snapshot());
        ok += r.ok;
        shed += r.shed;
        errors += r.errors;
    }
    let wall = started.elapsed();
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {ok} ok, {shed} shed, {errors} errors in {:.2}s -> {throughput:.1} req/s",
        wall.as_secs_f64(),
    );
    println!(
        "latency p50/p95/p99: {:.1} ms / {:.1} ms / {:.1} ms",
        latency.p50_ns() / 1e6,
        latency.p95_ns() / 1e6,
        latency.p99_ns() / 1e6,
    );
    if errors > 0 || ok == 0 {
        std::process::exit(1);
    }
}
