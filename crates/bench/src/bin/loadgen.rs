//! `loadgen` — closed-loop load generator for `observatory serve`.
//!
//! ```text
//! loadgen <host:port> [--concurrency N] [--requests N] [--model NAME]
//!         [--distinct N] [--rows N] [--level L]
//! ```
//!
//! Spawns `--concurrency` client threads; each issues `--requests`
//! `POST /v1/embed` calls back-to-back (closed loop: the next request
//! starts only when the previous response lands), one fresh connection
//! per request, cycling through `--distinct` table payloads. Latency is
//! recorded into the workspace's fixed-bucket [`Histogram`] (one per
//! thread, merged at the end — no contention on the hot path) and the
//! run is summarized as:
//!
//! ```text
//! loadgen: 1600 ok, 0 shed, 0 errors in 3.41s -> 469.2 req/s
//! latency p50/p95/p99: 58.1 ms / 83.4 ms / 99.2 ms
//! ```
//!
//! Exit code 0 when every request was answered 200, 1 otherwise — so
//! CI can flood a server and assert nothing hung or failed. Comparing
//! `--max-batch 1` with the default batching server quantifies the
//! micro-batching speedup (the PR gate asks for ≥2× at concurrency 32
//! on multi-core hosts — the win is `encode_batch` fanning unique
//! tables across `--jobs` workers, so it scales with cores; see
//! DESIGN.md §10 for single-core expectations).

use observatory_bench::httpc;
use observatory_runtime::metrics::Histogram;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One thread's share of the run.
struct WorkerReport {
    latency: Histogram,
    ok: u64,
    shed: u64,
    errors: u64,
}

fn embed_body(model: &str, level: &str, tag: usize, rows: usize) -> String {
    // Distinct string cells defeat the engine cache across tags while
    // staying cheap to build; within a tag repeats hit the cache the way
    // a real workload with popular tables would.
    let ints: Vec<String> = (0..rows).map(|r| (tag * 31 + r).to_string()).collect();
    let texts: Vec<String> = (0..rows).map(|r| format!("\"item-{tag}-{r}\"")).collect();
    format!(
        r#"{{"model":"{model}","level":"{level}","id":"load-{tag}","table":{{"name":"load{tag}","columns":[{{"header":"id","values":[{}]}},{{"header":"name","values":[{}]}}]}}}}"#,
        ints.join(","),
        texts.join(","),
    )
}

fn worker(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    requests: usize,
    offset: usize,
) -> WorkerReport {
    let mut report = WorkerReport { latency: Histogram::default(), ok: 0, shed: 0, errors: 0 };
    for i in 0..requests {
        let body = &bodies[(offset + i) % bodies.len()];
        let start = Instant::now();
        match httpc::post(addr, "/v1/embed", body, Duration::from_secs(60)) {
            Ok(r) if r.status == 200 => {
                report.latency.record(start.elapsed());
                report.ok += 1;
            }
            Ok(r) if r.status == 429 => report.shed += 1,
            Ok(r) => {
                eprintln!("loadgen: unexpected status {}: {}", r.status, r.body);
                report.errors += 1;
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                report.errors += 1;
            }
        }
    }
    report
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn flag_num(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw.parse::<usize>().map_err(|_| format!("invalid value '{raw}' for {name}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr_raw) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: loadgen <host:port> [--concurrency N] [--requests N] [--model NAME] \
             [--distinct N] [--rows N] [--level table|column|row|cell]"
        );
        std::process::exit(2);
    };
    let parsed = (|| {
        Ok::<_, String>((
            httpc::resolve(addr_raw)?,
            flag_num(&args, "--concurrency", 8)?,
            flag_num(&args, "--requests", 50)?,
            flag_num(&args, "--distinct", 64)?,
            flag_num(&args, "--rows", 4)?,
        ))
    })();
    let (addr, concurrency, requests, distinct, rows) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let model = flag(&args, "--model").unwrap_or_else(|| "bert".to_string());
    let level = flag(&args, "--level").unwrap_or_else(|| "column".to_string());

    if let Err(e) = httpc::await_healthy(addr, Duration::from_secs(20)) {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }

    let bodies: Arc<Vec<String>> = Arc::new(
        (0..distinct.max(1)).map(|t| embed_body(&model, &level, t, rows.max(1))).collect(),
    );
    println!(
        "loadgen: {concurrency} clients x {requests} requests -> {addr} \
         (model={model}, level={level}, {} distinct tables, {rows} rows)",
        bodies.len()
    );

    let started = Instant::now();
    let workers: Vec<_> = (0..concurrency)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || worker(addr, bodies, requests, c * 17))
        })
        .collect();
    let mut latency = observatory_runtime::metrics::Histogram::default().snapshot();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for w in workers {
        let r = w.join().expect("worker thread");
        latency.merge(&r.latency.snapshot());
        ok += r.ok;
        shed += r.shed;
        errors += r.errors;
    }
    let wall = started.elapsed();
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {ok} ok, {shed} shed, {errors} errors in {:.2}s -> {throughput:.1} req/s",
        wall.as_secs_f64(),
    );
    println!(
        "latency p50/p95/p99: {:.1} ms / {:.1} ms / {:.1} ms",
        latency.p50_ns() / 1e6,
        latency.p95_ns() / 1e6,
        latency.p99_ns() / 1e6,
    );
    if errors > 0 || ok == 0 {
        std::process::exit(1);
    }
}
