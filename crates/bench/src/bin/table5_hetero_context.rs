//! Regenerates **Table 5**: min / median / max cosine similarity between
//! single-column embeddings and contextual embeddings, for non-textual
//! (first row) and textual (second row) data types, per model and context
//! setting.

use observatory_bench::harness::{banner, context, sotab_corpus, Scale};
use observatory_core::framework::run_property;
use observatory_core::props::hetero_context::HeterogeneousContext;
use observatory_core::report::render_table;
use observatory_models::registry::all_models;

fn main() {
    banner(
        "Table 5: heterogeneous context — single vs contextual column embeddings",
        "paper §5.8, Table 5 — SOTAB, 4 input settings, textual vs non-textual",
    );
    let corpus = sotab_corpus(Scale::from_env());
    let models = all_models();
    let mut rows = Vec::new();
    for report in run_property(&HeterogeneousContext, &models, &corpus, &context()) {
        if report.records.is_empty() {
            continue;
        }
        for (ri, split) in ["non-textual", "textual"].iter().enumerate() {
            let mut row = vec![if ri == 0 { report.model.clone() } else { String::new() }];
            row.push(split.to_string());
            for setting in ["subject", "neighbors", "table"] {
                let label = format!("{setting}/{split}");
                let cell = report.distribution(&label).map_or("-".to_string(), |d| {
                    let s = d.summary();
                    format!("{:.2} / {:.2} / {:.2}", s.min, s.median, s.max)
                });
                row.push(cell);
            }
            rows.push(row);
        }
    }
    print!(
        "{}",
        render_table(
            &["Model", "Types", "Subject Column", "Neighboring Columns", "Entire Table"],
            &rows
        )
    );
    println!("\n(cells are min / median / max cosine between single-column and contextual");
    println!("embeddings) expected shape: entire-table context moves embeddings most.");
}
