//! `validate_store` — CI gate for warm restarts of the persistent store.
//!
//! ```text
//! validate_store record <host:port> <state-file>
//! validate_store verify <host:port> <state-file>
//! ```
//!
//! The store smoke job runs this twice around a server restart:
//!
//! 1. **record** (first server, fresh `--store-dir`): POST a batch of
//!    distinct `/v1/embed` requests and save the response bodies to the
//!    state file. Checks `/healthz` reports an attached store.
//! 2. **verify** (second server, same `--store-dir`): repeat the exact
//!    batch and require every response **byte-identical** to the
//!    recorded one; require `/healthz` to show the recovered records;
//!    require `/metrics` to show tier-2 hits ≥ the batch size and zero
//!    model encodes — i.e. a 100% warm restart, nothing re-encoded.
//!
//! Exit code 0 on success; 1 with a diagnostic on the first failure;
//! 2 on usage errors.

use observatory_bench::httpc;
use observatory_obs::json::{parse, Json};
use std::net::SocketAddr;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);
const BATCH: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, addr_raw, state) = match (args.first(), args.get(1), args.get(2)) {
        (Some(m), Some(a), Some(s)) if m == "record" || m == "verify" => (m.as_str(), a, s),
        _ => {
            eprintln!("usage: validate_store record|verify <host:port> <state-file>");
            std::process::exit(2);
        }
    };
    let addr = match httpc::resolve(addr_raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("validate_store: {e}");
            std::process::exit(2);
        }
    };
    let run = if mode == "record" { record(addr, state) } else { verify(addr, state) };
    if let Err(e) = run {
        eprintln!("validate_store: {e}");
        std::process::exit(1);
    }
    println!("validate_store {mode}: ok");
}

/// The i-th smoke table: distinct values so each request is a distinct
/// fingerprint (and a distinct store record).
fn embed_body(i: usize) -> String {
    format!(
        concat!(
            r#"{{"model":"bert","level":"column","id":"store-{i}","#,
            r#""table":{{"name":"store-smoke-{i}","columns":["#,
            r#"{{"header":"id","values":[{a},{b},{c}]}},"#,
            r#"{{"header":"name","values":["alpha-{i}","beta-{i}","gamma-{i}"]}}]}}}}"#
        ),
        i = i,
        a = i * 3 + 1,
        b = i * 3 + 2,
        c = i * 3 + 3,
    )
}

/// `/healthz`, requiring an attached store; returns its `records` count.
fn store_records(addr: SocketAddr) -> Result<f64, String> {
    let health = httpc::await_healthy(addr, Duration::from_secs(30))?;
    let h = parse(&health.body).map_err(|e| format!("healthz body invalid: {e}"))?;
    let store = h.get("store").ok_or("healthz has no store field")?;
    if *store == Json::Null {
        return Err("healthz reports no store attached (serve missing --store-dir?)".into());
    }
    store
        .get("records")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("healthz store has no records count: {}", health.body))
}

/// POST the whole batch; every response must be a 200.
fn run_batch(addr: SocketAddr) -> Result<Vec<String>, String> {
    (0..BATCH)
        .map(|i| {
            let r = httpc::post(addr, "/v1/embed", &embed_body(i), TIMEOUT)?;
            if r.status != 200 {
                return Err(format!("embed {i} answered {}: {}", r.status, r.body));
            }
            Ok(r.body)
        })
        .collect()
}

fn record(addr: SocketAddr, state: &str) -> Result<(), String> {
    store_records(addr)?;
    let bodies = run_batch(addr)?;
    // One body per line: responses are single-line JSON documents.
    for (i, b) in bodies.iter().enumerate() {
        if b.contains('\n') {
            return Err(format!("embed {i} response is not single-line; cannot persist"));
        }
    }
    std::fs::write(state, bodies.join("\n")).map_err(|e| format!("cannot write {state}: {e}"))?;
    println!("recorded {BATCH} responses -> {state}");
    Ok(())
}

/// A `/metrics` sample value, summed over matching series.
fn metric_sum(text: &str, prefix: &str) -> f64 {
    text.lines()
        .filter(|l| l.starts_with(prefix))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

fn verify(addr: SocketAddr, state: &str) -> Result<(), String> {
    let recorded =
        std::fs::read_to_string(state).map_err(|e| format!("cannot read {state}: {e}"))?;
    let recorded: Vec<&str> = recorded.lines().collect();
    if recorded.len() != BATCH {
        return Err(format!("{state} holds {} responses, expected {BATCH}", recorded.len()));
    }
    let records = store_records(addr)?;
    if (records as usize) < BATCH {
        return Err(format!("store recovered only {records} records, expected >= {BATCH}"));
    }
    println!("healthz: store attached with {records} records");

    let bodies = run_batch(addr)?;
    for (i, (warm, cold)) in bodies.iter().zip(&recorded).enumerate() {
        if warm != cold {
            return Err(format!("embed {i} differs across restart (not byte-identical)"));
        }
    }
    println!("embed: {BATCH} responses byte-identical across restart");

    let metrics = httpc::get(addr, "/metrics", TIMEOUT)?;
    if metrics.status != 200 {
        return Err(format!("metrics answered {}", metrics.status));
    }
    let hits = metric_sum(&metrics.body, "observatory_store_lookups_total{result=\"hit\"}");
    if (hits as usize) < BATCH {
        return Err(format!("tier-2 hits = {hits}, expected >= {BATCH} (warm restart leaked)"));
    }
    let encodes = metric_sum(&metrics.body, "observatory_encodes_total");
    if encodes != 0.0 {
        return Err(format!("model ran {encodes} times on a warm restart, expected 0"));
    }
    println!("metrics: {hits} tier-2 hits, 0 model encodes");
    Ok(())
}
