//! Shared workload builders and output helpers for the figure/table
//! harness binaries.
//!
//! Every binary regenerates one table or figure of the paper. Workload
//! sizes default to a scale that completes in seconds on a laptop and can
//! be raised toward paper scale with the `OBSERVATORY_SCALE` environment
//! variable (`small` | `medium` | `full`).

use observatory_core::framework::EvalContext;
use observatory_data::nextiajd::{JoinPair, NextiaJdConfig};
use observatory_data::sotab::SotabConfig;
use observatory_data::spider::SpiderConfig;
use observatory_data::wikitables::WikiTablesConfig;
use observatory_obs as obs;
use observatory_table::Table;

/// Workload scale for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: CI-and-demo sized.
    Small,
    /// A few minutes.
    Medium,
    /// Paper-shaped (≤1000 permutations, hundreds of tables).
    Full,
}

impl Scale {
    /// Read from `OBSERVATORY_SCALE` (default `small`).
    pub fn from_env() -> Scale {
        match std::env::var("OBSERVATORY_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        }
    }

    /// Number of WikiTables-like tables.
    pub fn wiki_tables(&self) -> usize {
        match self {
            Scale::Small => 6,
            Scale::Medium => 24,
            Scale::Full => 100,
        }
    }

    /// Permutation cap per table (paper: 1000).
    pub fn permutations(&self) -> usize {
        match self {
            Scale::Small => 10,
            Scale::Medium => 50,
            Scale::Full => 1000,
        }
    }

    /// NextiaJD pairs.
    pub fn join_pairs(&self) -> usize {
        match self {
            Scale::Small => 40,
            Scale::Medium => 120,
            Scale::Full => 400,
        }
    }

    /// Spider tables.
    pub fn spider_tables(&self) -> usize {
        match self {
            Scale::Small => 6,
            Scale::Medium => 18,
            Scale::Full => 60,
        }
    }

    /// SOTAB tables.
    pub fn sotab_tables(&self) -> usize {
        match self {
            Scale::Small => 10,
            Scale::Medium => 40,
            Scale::Full => 200,
        }
    }
}

/// The shared evaluation context (fixed seed: every run reproduces).
pub fn context() -> EvalContext {
    EvalContext::with_seed(42)
}

/// WikiTables-like corpus at the given scale.
pub fn wiki_corpus(scale: Scale) -> Vec<Table> {
    WikiTablesConfig { num_tables: scale.wiki_tables(), min_rows: 5, max_rows: 8, seed: 42 }
        .generate()
}

/// NextiaJD-XS-like join pairs at the given scale.
pub fn join_pairs(scale: Scale) -> Vec<JoinPair> {
    NextiaJdConfig { num_pairs: scale.join_pairs(), ..Default::default() }.generate()
}

/// Spider-like corpus at the given scale.
pub fn spider_corpus(scale: Scale) -> Vec<Table> {
    SpiderConfig { num_tables: scale.spider_tables(), rows: 24, seed: 7 }.generate().tables
}

/// SOTAB-like corpus at the given scale.
pub fn sotab_corpus(scale: Scale) -> Vec<Table> {
    SotabConfig { num_tables: scale.sotab_tables(), rows: 8, seed: 23 }.generate()
}

/// Environment variable naming a Chrome trace-event JSON output file; when
/// set, [`runtime_report`] drains the span collector into it.
pub const TRACE_OUT_ENV: &str = "OBSERVATORY_TRACE_OUT";
/// Environment variable naming a Prometheus text-exposition output file.
pub const METRICS_OUT_ENV: &str = "OBSERVATORY_METRICS_OUT";

/// Print the standard experiment banner. Also initializes the span filter
/// from `OBSERVATORY_LOG`; when `OBSERVATORY_TRACE_OUT` is set the level
/// is raised so the exported trace is populated.
pub fn banner(experiment: &str, paper_ref: &str) {
    obs::init_from_env();
    if std::env::var_os(TRACE_OUT_ENV).is_some() {
        obs::raise_level(obs::Level::Debug);
    }
    println!("# Observatory — {experiment}");
    println!("# Reproduces: {paper_ref}");
    println!(
        "# Scale: {:?} (override with OBSERVATORY_SCALE=small|medium|full)",
        Scale::from_env()
    );
    println!();
}

/// Print the engine's cache and encode statistics for the given context.
/// Harness binaries call this after their workload so every figure/table
/// run reports how much the content-addressed cache amortized.
///
/// When `OBSERVATORY_TRACE_OUT` / `OBSERVATORY_METRICS_OUT` name files,
/// the collected trace and the engine metrics are also exported there
/// (Chrome trace-event JSON and Prometheus text, respectively), stamped
/// with a provenance manifest.
pub fn runtime_report(ctx: &EvalContext) {
    let stats = ctx.engine.cache_stats();
    let snap = ctx.engine.metrics_snapshot();
    println!();
    println!(
        "# runtime: {} encodes, cache {:.1}% hit ({} hits / {} lookups), \
         {} live entries, {:.1} MiB used, {} evictions",
        snap.encodes,
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.hits + stats.misses,
        stats.entries,
        stats.bytes as f64 / (1024.0 * 1024.0),
        stats.evictions,
    );
    let kernels = observatory_linalg::kernels::stats::snapshot();
    if kernels.total_calls() > 0 {
        println!(
            "# kernels: {}  (total {:.1}ms over {} calls)",
            kernels.render(),
            kernels.total_ns() as f64 / 1.0e6,
            kernels.total_calls(),
        );
    }
    export_observability(ctx);
}

/// Export the trace / metrics files requested via environment variables.
/// A failed write is reported but never aborts a finished experiment.
fn export_observability(ctx: &EvalContext) {
    let trace_out = std::env::var(TRACE_OUT_ENV).ok();
    let metrics_out = std::env::var(METRICS_OUT_ENV).ok();
    if trace_out.is_none() && metrics_out.is_none() {
        return;
    }
    let mut manifest = obs::Manifest::for_run();
    manifest
        .set("command", "bench-harness")
        .set("scale", format!("{:?}", Scale::from_env()))
        .set("seed", "42")
        .set("jobs", ctx.engine.jobs().to_string())
        .set("cache_capacity_bytes", ctx.engine.cache_stats().capacity.to_string());
    let trace = obs::drain();
    if let Some(path) = trace_out {
        let text = obs::chrome_trace(&trace, &manifest);
        match std::fs::write(&path, text) {
            Ok(()) => println!("# trace: {} spans -> {path}", trace.spans.len()),
            Err(e) => eprintln!("# trace export failed ({path}): {e}"),
        }
    }
    if let Some(path) = metrics_out {
        let text = observatory_runtime::prometheus_text(
            &ctx.engine.metrics_snapshot(),
            &ctx.engine.cache_stats(),
            &manifest,
            Some(&trace),
        );
        match std::fs::write(&path, text) {
            Ok(()) => println!("# metrics -> {path}"),
            Err(e) => eprintln!("# metrics export failed ({path}): {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.wiki_tables() < Scale::Full.wiki_tables());
        assert!(Scale::Small.permutations() < Scale::Full.permutations());
        assert_eq!(Scale::Full.permutations(), 1000);
    }

    #[test]
    fn corpora_build() {
        assert_eq!(wiki_corpus(Scale::Small).len(), 6);
        assert_eq!(join_pairs(Scale::Small).len(), 40);
        assert!(!spider_corpus(Scale::Small).is_empty());
        assert!(!sotab_corpus(Scale::Small).is_empty());
    }

    #[test]
    fn env_scale_defaults_to_small() {
        // The test environment does not set the variable.
        if std::env::var("OBSERVATORY_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }
}
