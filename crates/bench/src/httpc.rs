//! Minimal HTTP/1.1 client for the serving harness binaries (`loadgen`,
//! `validate_serve`, `bench_serve`).
//!
//! Two shapes, both zero-dependency:
//!
//! - the original one-shot free functions ([`get`] / [`post`] /
//!   [`request_with_headers`]): connect, `Connection: close`, read to
//!   EOF — the right tool for probes and conformance checks;
//! - [`Client`], a keep-alive connection that frames responses by
//!   `Content-Length` and reuses the socket across requests. It honours
//!   a `Connection: close` answer from the server (reconnects next
//!   call) and retries exactly once on a fresh socket when a *reused*
//!   connection dies mid-request — the classic stale-keep-alive race
//!   where the server reaped the idle socket between our requests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed one-shot response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Raw header block (status line + headers).
    pub head: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().skip(1).find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }
}

/// Issue one request on a fresh connection and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    request_with_headers(addr, method, path, &[], body, timeout)
}

/// Like [`request`], with extra request headers (e.g. `x-request-id`).
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    // One-shot request/response: disable Nagle so the request is not
    // held back waiting for ACKs it will never batch with.
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let extra: String = headers.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).map_err(|e| format!("write {addr}{path}: {e}"))?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf).map_err(|e| format!("read {addr}{path}: {e}"))?;
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("no status line in response from {path}: {buf:?}"))?;
    let (head, body) = buf.split_once("\r\n\r\n").unwrap_or((buf.as_str(), ""));
    Ok(Response { status, head: head.to_string(), body: body.to_string() })
}

/// A persistent keep-alive connection to one server.
///
/// Responses are framed by `Content-Length` (every observatory response
/// carries one), so the socket survives across requests. Over-read bytes
/// are kept in a carry buffer, which also makes the client safe against
/// servers that start the next response early.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<Conn>,
    /// Requests served on an already-open socket (keep-alive hits).
    pub reused: u64,
    /// Fresh sockets opened after the first (reaped/expired keep-alives).
    pub reconnects: u64,
}

struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Client {
    /// A client for `addr`; no socket is opened until the first request.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Client {
        Client { addr, timeout, conn: None, reused: 0, reconnects: 0 }
    }

    /// `GET path` on the persistent connection.
    pub fn get(&mut self, path: &str) -> Result<Response, String> {
        self.request("GET", path, &[], "")
    }

    /// `POST path` with a JSON body on the persistent connection.
    pub fn post(&mut self, path: &str, body: &str) -> Result<Response, String> {
        self.request("POST", path, &[], body)
    }

    /// Issue one request, reusing the open socket when there is one.
    ///
    /// A request that fails on a *reused* socket is retried once on a
    /// fresh connection; a failure on a fresh socket is the caller's.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Result<Response, String> {
        let had_conn = self.conn.is_some();
        if had_conn {
            self.reused += 1;
            match self.once(method, path, headers, body) {
                Ok(resp) => return Ok(resp),
                Err(_stale) => {
                    // The server may have reaped the idle socket between
                    // requests; that is not an error, just a cache miss.
                    self.reused -= 1;
                    self.conn = None;
                    self.reconnects += 1;
                }
            }
        }
        self.once(method, path, headers, body)
    }

    /// Issue several pipelined `POST`s in one write, then read the
    /// responses back in order (HTTP/1.1 pipelining). Same
    /// retry-once-on-stale-socket policy as [`Client::request`].
    pub fn post_pipelined(&mut self, path: &str, bodies: &[&str]) -> Result<Vec<Response>, String> {
        if self.conn.is_some() {
            self.reused += 1;
            match self.once_pipelined(path, bodies) {
                Ok(resps) => return Ok(resps),
                Err(_stale) => {
                    self.reused -= 1;
                    self.conn = None;
                    self.reconnects += 1;
                }
            }
        }
        self.once_pipelined(path, bodies)
    }

    fn once_pipelined(&mut self, path: &str, bodies: &[&str]) -> Result<Vec<Response>, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream.set_nodelay(true).map_err(|e| e.to_string())?;
            stream.set_read_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            stream.set_write_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            self.conn = Some(Conn { stream, carry: Vec::new() });
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let mut raw = String::new();
        for body in bodies {
            raw.push_str(&format!(
                "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                self.addr,
                body.len(),
            ));
        }
        conn.stream.write_all(raw.as_bytes()).map_err(|e| format!("write {path}: {e}"))?;
        let mut resps = Vec::with_capacity(bodies.len());
        for _ in bodies {
            match read_framed(conn) {
                Ok(resp) => resps.push(resp),
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        if resps.last().is_some_and(|r| {
            r.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
        }) {
            self.conn = None;
        }
        Ok(resps)
    }

    /// Drop the socket (the next request reconnects).
    pub fn close(&mut self) {
        self.conn = None;
    }

    fn once(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Result<Response, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream.set_nodelay(true).map_err(|e| e.to_string())?;
            stream.set_read_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            stream.set_write_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            self.conn = Some(Conn { stream, carry: Vec::new() });
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let extra: String = headers.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{extra}Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        conn.stream.write_all(raw.as_bytes()).map_err(|e| format!("write {path}: {e}"))?;
        let resp = match read_framed(conn) {
            Ok(resp) => resp,
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        // The server is allowed to answer and then close (drain, 1.0,
        // error responses); honour it so the next request reconnects.
        if resp.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            self.conn = None;
        }
        Ok(resp)
    }
}

/// Read one `Content-Length`-framed response off a persistent socket,
/// leaving any over-read bytes in the connection's carry buffer.
fn read_framed(conn: &mut Conn) -> Result<Response, String> {
    let header_end = loop {
        if let Some(pos) = conn.carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if conn.carry.len() > 64 << 10 {
            return Err("response header block never terminated".into());
        }
        let mut chunk = [0u8; 4096];
        let n = conn.stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before response headers".into());
        }
        conn.carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&conn.carry[..header_end]).trim_end().to_string();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("no status line in response: {head:?}"))?;
    let resp_probe = Response { status, head: head.clone(), body: String::new() };
    let cl: usize = resp_probe
        .header("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("keep-alive response without content-length: {head:?}"))?;
    while conn.carry.len() < header_end + cl {
        let mut chunk = [0u8; 16 << 10];
        let n = conn.stream.read(&mut chunk).map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        conn.carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&conn.carry[header_end..header_end + cl]).to_string();
    conn.carry.drain(..header_end + cl);
    Ok(Response { status, head, body })
}

/// `GET path` with an empty body.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<Response, String> {
    request(addr, "GET", path, "", timeout)
}

/// `POST path` with a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    request(addr, "POST", path, body, timeout)
}

/// Poll `GET /healthz` until it answers 200 or the deadline lapses —
/// lets harnesses start the server as a sibling process without races.
pub fn await_healthy(addr: SocketAddr, deadline: Duration) -> Result<Response, String> {
    let start = std::time::Instant::now();
    loop {
        match get(addr, "/healthz", Duration::from_secs(2)) {
            Ok(r) if r.status == 200 => return Ok(r),
            Ok(r) => {
                if start.elapsed() > deadline {
                    return Err(format!("healthz answered {} past the deadline", r.status));
                }
            }
            Err(e) => {
                if start.elapsed() > deadline {
                    return Err(format!("server never became healthy: {e}"));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Parse `host:port` into a socket address (resolving if needed).
pub fn resolve(addr: &str) -> Result<SocketAddr, String> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{addr}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{addr}' resolved to nothing"))
}
