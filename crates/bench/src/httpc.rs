//! Minimal one-shot HTTP/1.1 client for the serving harness binaries
//! (`loadgen`, `validate_serve`).
//!
//! The service speaks `Connection: close`, one request per connection, so
//! the client is exactly: connect, write the request, read to EOF, split
//! status line from body. Zero dependencies, like everything else in the
//! workspace.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed one-shot response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Raw header block (status line + headers).
    pub head: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.lines().skip(1).find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }
}

/// Issue one request on a fresh connection and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    request_with_headers(addr, method, path, &[], body, timeout)
}

/// Like [`request`], with extra request headers (e.g. `x-request-id`).
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    // One-shot request/response: disable Nagle so the request is not
    // held back waiting for ACKs it will never batch with.
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let extra: String = headers.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).map_err(|e| format!("write {addr}{path}: {e}"))?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf).map_err(|e| format!("read {addr}{path}: {e}"))?;
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("no status line in response from {path}: {buf:?}"))?;
    let (head, body) = buf.split_once("\r\n\r\n").unwrap_or((buf.as_str(), ""));
    Ok(Response { status, head: head.to_string(), body: body.to_string() })
}

/// `GET path` with an empty body.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<Response, String> {
    request(addr, "GET", path, "", timeout)
}

/// `POST path` with a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    request(addr, "POST", path, body, timeout)
}

/// Poll `GET /healthz` until it answers 200 or the deadline lapses —
/// lets harnesses start the server as a sibling process without races.
pub fn await_healthy(addr: SocketAddr, deadline: Duration) -> Result<Response, String> {
    let start = std::time::Instant::now();
    loop {
        match get(addr, "/healthz", Duration::from_secs(2)) {
            Ok(r) if r.status == 200 => return Ok(r),
            Ok(r) => {
                if start.elapsed() > deadline {
                    return Err(format!("healthz answered {} past the deadline", r.status));
                }
            }
            Err(e) => {
                if start.elapsed() > deadline {
                    return Err(format!("server never became healthy: {e}"));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Parse `host:port` into a socket address (resolving if needed).
pub fn resolve(addr: &str) -> Result<SocketAddr, String> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{addr}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{addr}' resolved to nothing"))
}
