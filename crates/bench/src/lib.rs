//! # observatory-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (run with `cargo run -p observatory-bench --bin <name>`) and
//! criterion benches (`cargo bench -p observatory-bench`). The shared
//! workload builders live in [`harness`]; DESIGN.md §5 maps every
//! experiment id to its binary. The serving harness (`loadgen`,
//! `validate_serve`) shares the one-shot HTTP client in [`httpc`].

pub mod harness;
pub mod httpc;
