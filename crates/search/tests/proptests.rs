//! Property-based tests for overlap measures and the search indexes.

use observatory_search::knn::{neighbor_overlap, KnnIndex};
use observatory_search::lsh::LshIndex;
use observatory_search::overlap::{containment, jaccard, multiset_jaccard};
use observatory_table::{Column, Value};
use proptest::prelude::*;

fn arb_column() -> impl Strategy<Value = Column> {
    proptest::collection::vec(0u8..12, 1..30).prop_map(|vals| {
        Column::new("c", vals.into_iter().map(|v| Value::Int(i64::from(v))).collect())
    })
}

fn vectors(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, dim), 2..30)
}

proptest! {
    /// Bounds, symmetry and subset laws of the overlap measures.
    #[test]
    fn overlap_laws(q in arb_column(), c in arb_column()) {
        let cont = containment(&q, &c);
        let jac = jaccard(&q, &c);
        let mjac = multiset_jaccard(&q, &c);
        prop_assert!((0.0..=1.0).contains(&cont));
        prop_assert!((0.0..=1.0).contains(&jac));
        prop_assert!((0.0..=0.5 + 1e-12).contains(&mjac));
        // Jaccard ≤ both containments (|Q∩C|/|Q∪C| ≤ |Q∩C|/|Q| and /|C|).
        prop_assert!(jac <= cont + 1e-12);
        prop_assert!(jac <= containment(&c, &q) + 1e-12);
        // Symmetric measures.
        prop_assert!((jac - jaccard(&c, &q)).abs() < 1e-12);
        prop_assert!((mjac - multiset_jaccard(&c, &q)).abs() < 1e-12);
    }

    /// Sub-column containment: a prefix of a column is always fully
    /// contained in it.
    #[test]
    fn prefix_fully_contained(c in arb_column(), cut in 1usize..30) {
        let cut = cut.min(c.len());
        let prefix = Column::new("p", c.values[..cut].to_vec());
        prop_assert!((containment(&prefix, &c) - 1.0).abs() < 1e-12);
    }

    /// kNN: top-1 of a query that equals an indexed vector is that vector
    /// (ties broken by insertion order still score 1.0).
    #[test]
    fn knn_self_retrieval(vs in vectors(6), pick in 0usize..30) {
        let nonzero: Vec<&Vec<f64>> =
            vs.iter().filter(|v| v.iter().any(|x| x.abs() > 1e-9)).collect();
        prop_assume!(!nonzero.is_empty());
        let mut idx = KnnIndex::new(6);
        for (i, v) in nonzero.iter().enumerate() {
            idx.insert(format!("v{i}"), v);
        }
        let q = nonzero[pick % nonzero.len()];
        let hits = idx.query(q, 1, None);
        prop_assert!((hits[0].score - 1.0).abs() < 1e-9);
    }

    /// kNN scores are sorted descending and within [−1, 1].
    #[test]
    fn knn_scores_sorted(vs in vectors(5)) {
        let mut idx = KnnIndex::new(5);
        for (i, v) in vs.iter().enumerate() {
            idx.insert(format!("v{i}"), v);
        }
        let hits = idx.query(&vs[0], vs.len(), None);
        for w in hits.windows(2) {
            prop_assert!(w[0].score + 1e-12 >= w[1].score);
        }
        prop_assert!(hits.iter().all(|h| (-1.0 - 1e-9..=1.0 + 1e-9).contains(&h.score)));
    }

    /// LSH hits are a subset of the index and scored like the exact index.
    #[test]
    fn lsh_hits_are_genuine(vs in vectors(8)) {
        let mut exact = KnnIndex::new(8);
        let mut lsh = LshIndex::new(8, 4, 6, 3);
        for (i, v) in vs.iter().enumerate() {
            exact.insert(format!("v{i}"), v);
            lsh.insert(format!("v{i}"), v);
        }
        let hits = lsh.query(&vs[0], 5, None);
        let exact_all = exact.query(&vs[0], vs.len(), None);
        for h in &hits {
            let matching = exact_all.iter().find(|e| e.key == h.key).expect("key exists");
            prop_assert!((matching.score - h.score).abs() < 1e-9);
        }
    }

    /// Neighbour overlap is bounded and reflexive.
    #[test]
    fn neighbor_overlap_laws(keys in proptest::collection::vec("[a-d]", 0..8)) {
        let ks: Vec<String> = keys;
        let o = neighbor_overlap(&ks, &ks);
        prop_assert!((0.0..=1.0).contains(&o));
        if !ks.is_empty() {
            // Self-overlap counts distinct keys over list length.
            let distinct: std::collections::HashSet<&String> = ks.iter().collect();
            prop_assert!((o - distinct.len() as f64 / ks.len() as f64).abs() < 1e-12);
        }
    }
}
