//! Property-based tests for overlap measures and the search indexes.

use observatory_search::ann::{AnnIndex, HnswConfig, HnswIndex, SearchParams, ShardedHnsw};
use observatory_search::knn::{neighbor_overlap, KnnIndex};
use observatory_search::lsh::LshIndex;
use observatory_search::overlap::{containment, jaccard, multiset_jaccard};
use observatory_table::{Column, Value};
use proptest::prelude::*;

fn arb_column() -> impl Strategy<Value = Column> {
    proptest::collection::vec(0u8..12, 1..30).prop_map(|vals| {
        Column::new("c", vals.into_iter().map(|v| Value::Int(i64::from(v))).collect())
    })
}

fn vectors(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, dim), 2..30)
}

/// Clustered corpora for the ANN gates: a handful of random unit-ish
/// centers with small jitter around each, the regime HNSW is built for
/// (and the shape of real table-embedding corpora).
fn clustered_corpus(dim: usize) -> impl Strategy<Value = Vec<(String, Vec<f64>)>> {
    let center = proptest::collection::vec(-3.0f64..3.0, dim);
    let centers = proptest::collection::vec(center, 2..5);
    (centers, 4usize..20, any::<u16>()).prop_map(move |(centers, per, jitter_seed)| {
        // Jitter from a cheap deterministic stream so shrinking stays
        // meaningful (proptest shrinks centers/per, not every component).
        let mut s = jitter_seed as u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut out = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for i in 0..per {
                let v: Vec<f64> = center.iter().map(|x| x + 0.2 * next()).collect();
                out.push((format!("c{c}_{i}"), v));
            }
        }
        out
    })
}

proptest! {
    /// Bounds, symmetry and subset laws of the overlap measures.
    #[test]
    fn overlap_laws(q in arb_column(), c in arb_column()) {
        let cont = containment(&q, &c);
        let jac = jaccard(&q, &c);
        let mjac = multiset_jaccard(&q, &c);
        prop_assert!((0.0..=1.0).contains(&cont));
        prop_assert!((0.0..=1.0).contains(&jac));
        prop_assert!((0.0..=0.5 + 1e-12).contains(&mjac));
        // Jaccard ≤ both containments (|Q∩C|/|Q∪C| ≤ |Q∩C|/|Q| and /|C|).
        prop_assert!(jac <= cont + 1e-12);
        prop_assert!(jac <= containment(&c, &q) + 1e-12);
        // Symmetric measures.
        prop_assert!((jac - jaccard(&c, &q)).abs() < 1e-12);
        prop_assert!((mjac - multiset_jaccard(&c, &q)).abs() < 1e-12);
    }

    /// Sub-column containment: a prefix of a column is always fully
    /// contained in it.
    #[test]
    fn prefix_fully_contained(c in arb_column(), cut in 1usize..30) {
        let cut = cut.min(c.len());
        let prefix = Column::new("p", c.values[..cut].to_vec());
        prop_assert!((containment(&prefix, &c) - 1.0).abs() < 1e-12);
    }

    /// kNN: top-1 of a query that equals an indexed vector is that vector
    /// (ties broken by insertion order still score 1.0).
    #[test]
    fn knn_self_retrieval(vs in vectors(6), pick in 0usize..30) {
        let nonzero: Vec<&Vec<f64>> =
            vs.iter().filter(|v| v.iter().any(|x| x.abs() > 1e-9)).collect();
        prop_assume!(!nonzero.is_empty());
        let mut idx = KnnIndex::new(6);
        for (i, v) in nonzero.iter().enumerate() {
            idx.insert(format!("v{i}"), v);
        }
        let q = nonzero[pick % nonzero.len()];
        let hits = idx.query(q, 1, None);
        prop_assert!((hits[0].score - 1.0).abs() < 1e-9);
    }

    /// kNN scores are sorted descending and within [−1, 1].
    #[test]
    fn knn_scores_sorted(vs in vectors(5)) {
        let mut idx = KnnIndex::new(5);
        for (i, v) in vs.iter().enumerate() {
            idx.insert(format!("v{i}"), v);
        }
        let hits = idx.query(&vs[0], vs.len(), None);
        for w in hits.windows(2) {
            prop_assert!(w[0].score + 1e-12 >= w[1].score);
        }
        prop_assert!(hits.iter().all(|h| (-1.0 - 1e-9..=1.0 + 1e-9).contains(&h.score)));
    }

    /// LSH hits are a subset of the index and scored like the exact index.
    #[test]
    fn lsh_hits_are_genuine(vs in vectors(8)) {
        let mut exact = KnnIndex::new(8);
        let mut lsh = LshIndex::new(8, 4, 6, 3);
        for (i, v) in vs.iter().enumerate() {
            exact.insert(format!("v{i}"), v);
            lsh.insert(format!("v{i}"), v);
        }
        let hits = lsh.query(&vs[0], 5, None);
        let exact_all = exact.query(&vs[0], vs.len(), None);
        for h in &hits {
            let matching = exact_all.iter().find(|e| e.key == h.key).expect("key exists");
            prop_assert!((matching.score - h.score).abs() < 1e-9);
        }
    }

    /// Neighbour overlap is bounded, reflexive, and symmetric — even
    /// with duplicated keys (both sides of the ratio deduplicate).
    #[test]
    fn neighbor_overlap_laws(
        keys in proptest::collection::vec("[a-d]", 0..8),
        other in proptest::collection::vec("[a-f]", 0..8),
    ) {
        let ks: Vec<String> = keys;
        let os: Vec<String> = other;
        let o = neighbor_overlap(&ks, &ks);
        prop_assert!((0.0..=1.0).contains(&o));
        // Any non-empty list fully overlaps itself, duplicates included.
        if !ks.is_empty() {
            prop_assert!((o - 1.0).abs() < 1e-12);
        }
        let cross = neighbor_overlap(&ks, &os);
        prop_assert!((0.0..=1.0).contains(&cross));
        prop_assert!((cross - neighbor_overlap(&os, &ks)).abs() < 1e-12);
    }

    /// ANN recall gate: at default ef_search, HNSW recall@10 against the
    /// flat oracle stays ≥ 0.95 on clustered corpora (averaged over the
    /// query sample, the same gate `bench_ann` and CI enforce at scale).
    #[test]
    fn hnsw_recall_gate_vs_flat_oracle(data in clustered_corpus(12)) {
        let dim = 12;
        let mut oracle = KnnIndex::new(dim);
        let mut graph = HnswIndex::new(dim, HnswConfig::default());
        for (i, (k, v)) in data.iter().enumerate() {
            oracle.insert(k.clone(), v);
            graph.insert(k.clone(), v, i as u64);
        }
        let queries = data.len().min(8);
        let mut recall = 0.0;
        for (k, v) in data.iter().take(queries) {
            let truth: std::collections::HashSet<String> =
                oracle.neighbor_keys(v, 10, Some(k)).into_iter().collect();
            if truth.is_empty() {
                recall += 1.0;
                continue;
            }
            let approx = graph.search(v, 10, Some(k), SearchParams::default());
            let hit = approx.iter().filter(|h| truth.contains(&h.key)).count();
            recall += hit as f64 / truth.len() as f64;
        }
        recall /= queries as f64;
        prop_assert!(recall >= 0.95, "recall@10 {} < 0.95 over {} items", recall, data.len());
    }

    /// Shard-merge determinism: with the beam covering each shard
    /// (ef_search ≥ n), 1-shard and 4-shard indexes built from the same
    /// seed return identical hits — same keys, same bit-exact scores,
    /// same order — because the re-rank merges on global insertion
    /// index exactly like the flat index.
    #[test]
    fn sharded_hnsw_merge_is_deterministic(data in clustered_corpus(8), k in 1usize..12) {
        let dim = 8;
        let params = SearchParams { ef_search: Some(data.len()) };
        let one = ShardedHnsw::build(dim, 1, HnswConfig::default(), &data, 1);
        let four = ShardedHnsw::build(dim, 4, HnswConfig::default(), &data, 2);
        let mut flat = KnnIndex::new(dim);
        for (key, v) in &data {
            flat.insert(key.clone(), v);
        }
        for (key, v) in data.iter().take(6) {
            let a = one.search(v, k, Some(key), params);
            let b = four.search(v, k, Some(key), params);
            prop_assert_eq!(&a, &b, "1-shard vs 4-shard hit sets differ");
            // Full coverage also means both equal the recall-1 oracle.
            let exact = flat.query(v, k, Some(key));
            prop_assert_eq!(&a, &exact, "full-coverage ANN must match flat");
        }
    }
}
