//! Random-hyperplane LSH (SimHash) for approximate cosine search.
//!
//! The exact [`crate::knn::KnnIndex`] is O(n) per query — fine for
//! Observatory's experiments, linear-scan-shaped like the paper's own
//! implementation. Production join discovery over data lakes needs
//! sublinear candidates (the paper cites LSH Ensemble for exactly this
//! regime). This index hashes each vector with `n_bits` random hyperplanes
//! per hash table; a query retrieves the union of its buckets across
//! `n_tables` tables and re-ranks those candidates exactly, trading recall
//! for probe cost.

use crate::knn::Hit;
use observatory_linalg::{reduce, vector, SplitMix64};
use std::collections::HashMap;

/// A SimHash LSH index over keyed vectors.
pub struct LshIndex {
    dim: usize,
    /// One hyperplane set per table: `n_tables × n_bits` rows of `dim`.
    hyperplanes: Vec<Vec<Vec<f64>>>,
    /// One bucket map per table: signature → item indices.
    tables: Vec<HashMap<u64, Vec<usize>>>,
    keys: Vec<String>,
    vectors: Vec<Vec<f64>>, // unit-normalized
}

impl LshIndex {
    /// Create an index with `n_tables` hash tables of `n_bits`-bit
    /// signatures. More tables = higher recall, more probe cost; more bits
    /// = smaller buckets, lower recall per table.
    ///
    /// # Panics
    /// Panics if `n_bits` is 0 or exceeds 64, or `n_tables` is 0.
    pub fn new(dim: usize, n_tables: usize, n_bits: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&n_bits), "n_bits must be in 1..=64");
        assert!(n_tables > 0, "need at least one hash table");
        let mut rng = SplitMix64::new(seed);
        let hyperplanes = (0..n_tables)
            .map(|_| (0..n_bits).map(|_| (0..dim).map(|_| rng.next_normal()).collect()).collect())
            .collect();
        Self {
            dim,
            hyperplanes,
            tables: vec![HashMap::new(); n_tables],
            keys: Vec::new(),
            vectors: Vec::new(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn signature(&self, table: usize, v: &[f64]) -> u64 {
        let mut sig = 0u64;
        for (b, plane) in self.hyperplanes[table].iter().enumerate() {
            if reduce::dot(plane, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Insert a keyed vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn insert(&mut self, key: impl Into<String>, v: &[f64]) {
        assert_eq!(v.len(), self.dim, "insert: dimension mismatch");
        let normalized = vector::normalize(v);
        let idx = self.keys.len();
        for t in 0..self.tables.len() {
            let sig = self.signature(t, &normalized);
            self.tables[t].entry(sig).or_default().push(idx);
        }
        self.keys.push(key.into());
        self.vectors.push(normalized);
    }

    /// Approximate k nearest neighbours: candidates from all matching
    /// buckets, re-ranked by exact cosine. May return fewer than `k` hits
    /// when the buckets are sparse.
    pub fn query(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query: dimension mismatch");
        let q = vector::normalize(query);
        let mut candidates: Vec<usize> = Vec::new();
        for t in 0..self.tables.len() {
            if let Some(bucket) = self.tables[t].get(&self.signature(t, &q)) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .filter(|&i| exclude_key != Some(self.keys[i].as_str()))
            .map(|i| (i, reduce::dot(&q, &self.vectors[i])))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, score)| Hit { key: self.keys[i].clone(), score })
            .collect()
    }

    /// Mean bucket **size**: indexed entries per occupied bucket,
    /// averaged over all tables (`keys × tables / occupied_buckets`) — a
    /// cheap selectivity diagnostic. This is the expected number of
    /// candidates a query pulls from one matching bucket, *not* a
    /// fraction of the index; the old name (`mean_bucket_fill`) and doc
    /// claimed the latter while computing this.
    pub fn mean_bucket_size(&self) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        let total: usize = self.tables.iter().map(|t| t.len()).sum();
        self.keys.len() as f64 * self.tables.len() as f64 / total.max(1) as f64
    }

    /// Mean fraction of the index a query probes: mean bucket size over
    /// index size — the selectivity the old `mean_bucket_fill` doc
    /// actually promised. 1.0 means every query re-ranks the whole
    /// index (LSH buys nothing); useful values are ≪ 1.
    pub fn mean_probe_fraction(&self) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        self.mean_bucket_size() / self.keys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnIndex;

    /// Clustered vectors: `n` points around each of `k` random centers.
    fn clustered(n_per: usize, k: usize, dim: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
        let mut rng = SplitMix64::new(seed);
        let centers: Vec<Vec<f64>> =
            (0..k).map(|_| (0..dim).map(|_| rng.next_normal()).collect()).collect();
        let mut out = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for i in 0..n_per {
                let v: Vec<f64> = center.iter().map(|x| x + 0.1 * rng.next_normal()).collect();
                out.push((format!("c{c}_{i}"), v));
            }
        }
        out
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let data = clustered(20, 5, 32, 1);
        let mut exact = KnnIndex::new(32);
        let mut lsh = LshIndex::new(32, 8, 10, 42);
        for (k, v) in &data {
            exact.insert(k.clone(), v);
            lsh.insert(k.clone(), v);
        }
        let mut recall_sum = 0.0;
        let queries = 20;
        for (k, v) in data.iter().take(queries) {
            let truth: std::collections::HashSet<String> =
                exact.neighbor_keys(v, 5, Some(k)).into_iter().collect();
            let approx = lsh.query(v, 5, Some(k));
            let hits = approx.iter().filter(|h| truth.contains(&h.key)).count();
            recall_sum += hits as f64 / truth.len() as f64;
        }
        let recall = recall_sum / queries as f64;
        assert!(recall > 0.8, "LSH recall too low: {recall}");
    }

    #[test]
    fn nearest_cluster_dominates() {
        let data = clustered(10, 3, 16, 2);
        let mut lsh = LshIndex::new(16, 6, 8, 7);
        for (k, v) in &data {
            lsh.insert(k.clone(), v);
        }
        let (qk, qv) = &data[0]; // a c0 point
        let hits = lsh.query(qv, 5, Some(qk));
        assert!(!hits.is_empty());
        let same_cluster = hits.iter().filter(|h| h.key.starts_with("c0_")).count();
        assert!(same_cluster >= hits.len() - 1, "{hits:?}");
    }

    #[test]
    fn deterministic() {
        let data = clustered(5, 2, 8, 3);
        let build = || {
            let mut lsh = LshIndex::new(8, 4, 6, 11);
            for (k, v) in &data {
                lsh.insert(k.clone(), v);
            }
            lsh.query(&data[3].1, 3, None)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn empty_and_mismatch() {
        let lsh = LshIndex::new(4, 2, 4, 1);
        assert!(lsh.is_empty());
        assert!(lsh.query(&[1.0, 0.0, 0.0, 0.0], 3, None).is_empty());
    }

    #[test]
    #[should_panic(expected = "n_bits")]
    fn too_many_bits_panics() {
        LshIndex::new(4, 2, 65, 1);
    }

    #[test]
    fn bucket_size_pins_known_index() {
        // One table, one hyperplane: v and -v land on opposite sides of
        // the plane (their projections have opposite signs), so the
        // table has exactly two occupied buckets regardless of the
        // random hyperplane. Two entries per bucket → mean size 2.0, and
        // a query probes 2 of 4 indexed entries → fraction 0.5.
        let mut lsh = LshIndex::new(3, 1, 1, 5);
        let v = [0.3, -1.2, 0.7];
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        lsh.insert("a", &v);
        lsh.insert("b", &v);
        lsh.insert("c", &neg);
        lsh.insert("d", &neg);
        assert_eq!(lsh.tables[0].len(), 2, "two occupied buckets");
        assert_eq!(lsh.mean_bucket_size(), 2.0);
        assert_eq!(lsh.mean_probe_fraction(), 0.5);
        // Empty index: both diagnostics are defined as 0.
        let empty = LshIndex::new(3, 1, 1, 5);
        assert_eq!(empty.mean_bucket_size(), 0.0);
        assert_eq!(empty.mean_probe_fraction(), 0.0);
    }
}
