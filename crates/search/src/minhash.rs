//! MinHash sketches for overlap estimation.
//!
//! Exact containment/Jaccard over raw values (Property 3's ground truth)
//! is linear in column size; at data-lake scale the joinability literature
//! the paper builds on (LSH Ensemble, JOSIE) estimates overlap from
//! constant-size *sketches*. A MinHash signature keeps the minimum of `k`
//! independent hash functions over the value set; the fraction of agreeing
//! components is an unbiased estimate of Jaccard similarity, and
//! containment follows from Jaccard plus the two set cardinalities via
//! `|Q ∩ C| = J(|Q| + |C|)/(1 + J)`.

use observatory_table::Column;

/// A MinHash signature over a column's *distinct* value set.
#[derive(Debug, Clone, PartialEq)]
pub struct MinHashSketch {
    mins: Vec<u64>,
    /// Number of distinct values sketched (needed for containment).
    pub distinct: usize,
}

/// Builder holding the hash-function seeds so sketches are comparable.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// A sketcher with `k` hash functions derived from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "MinHasher: need at least one hash function");
        let mut rng = observatory_linalg::SplitMix64::new(seed);
        Self { seeds: (0..k).map(|_| rng.next_u64() | 1).collect() }
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Sketch a column (over its distinct group keys, matching the exact
    /// measures' set semantics).
    pub fn sketch(&self, column: &Column) -> MinHashSketch {
        let mut keys: Vec<String> = column.values.iter().map(|v| v.group_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut mins = vec![u64::MAX; self.seeds.len()];
        for key in &keys {
            let base = fnv1a(key.as_bytes());
            for (slot, &seed) in mins.iter_mut().zip(&self.seeds) {
                // Multiply-xor mix per hash function: cheap, independent
                // enough for sketching.
                let h = (base ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        MinHashSketch { mins, distinct: keys.len() }
    }
}

impl MinHashSketch {
    /// Estimated Jaccard similarity: fraction of agreeing components.
    ///
    /// # Panics
    /// Panics if the sketches were built with different `k`.
    pub fn jaccard_estimate(&self, other: &MinHashSketch) -> f64 {
        assert_eq!(self.mins.len(), other.mins.len(), "sketch size mismatch");
        if self.distinct == 0 && other.distinct == 0 {
            return 0.0;
        }
        let agree = self.mins.iter().zip(&other.mins).filter(|(a, b)| a == b).count();
        agree as f64 / self.mins.len() as f64
    }

    /// Estimated containment of `self`'s set in `other`'s:
    /// `Ĵ(|Q| + |C|)/((1 + Ĵ)|Q|)`, clamped to `[0, 1]`.
    pub fn containment_estimate(&self, other: &MinHashSketch) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        let j = self.jaccard_estimate(other);
        let inter = j * (self.distinct + other.distinct) as f64 / (1.0 + j);
        (inter / self.distinct as f64).clamp(0.0, 1.0)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::{containment, jaccard};
    use observatory_table::Value;

    fn col(range: std::ops::Range<i64>) -> Column {
        Column::new("c", range.map(Value::Int).collect())
    }

    #[test]
    fn identical_sets_estimate_one() {
        let hasher = MinHasher::new(128, 7);
        let a = hasher.sketch(&col(0..50));
        assert_eq!(a.jaccard_estimate(&a), 1.0);
        assert_eq!(a.containment_estimate(&a), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_zero() {
        let hasher = MinHasher::new(128, 7);
        let a = hasher.sketch(&col(0..40));
        let b = hasher.sketch(&col(1000..1040));
        assert!(a.jaccard_estimate(&b) < 0.05);
    }

    #[test]
    fn estimates_track_exact_measures() {
        let hasher = MinHasher::new(256, 11);
        // 60-value query, candidate shares 30 (J = 1/3, containment 0.5).
        let q = col(0..60);
        let c = col(30..90);
        let (sq, sc) = (hasher.sketch(&q), hasher.sketch(&c));
        let exact_j = jaccard(&q, &c);
        let exact_c = containment(&q, &c);
        assert!(
            (sq.jaccard_estimate(&sc) - exact_j).abs() < 0.1,
            "J est {}",
            sq.jaccard_estimate(&sc)
        );
        assert!(
            (sq.containment_estimate(&sc) - exact_c).abs() < 0.12,
            "containment est {}",
            sq.containment_estimate(&sc)
        );
    }

    #[test]
    fn more_hashes_tighter_estimates() {
        let q = col(0..80);
        let c = col(40..120);
        let exact = jaccard(&q, &c);
        let err = |k: usize| {
            // Average error over several seeds to smooth sketch noise.
            (0..8)
                .map(|s| {
                    let h = MinHasher::new(k, s);
                    (h.sketch(&q).jaccard_estimate(&h.sketch(&c)) - exact).abs()
                })
                .sum::<f64>()
                / 8.0
        };
        assert!(err(512) < err(16), "512 hashes: {}, 16 hashes: {}", err(512), err(16));
    }

    #[test]
    fn duplicates_do_not_change_sketch() {
        let hasher = MinHasher::new(64, 3);
        let mut dup = col(0..20);
        dup.values.extend(col(0..20).values);
        assert_eq!(hasher.sketch(&col(0..20)), hasher.sketch(&dup));
    }

    #[test]
    fn empty_column_safe() {
        let hasher = MinHasher::new(32, 1);
        let e = hasher.sketch(&Column::new("e", vec![]));
        let a = hasher.sketch(&col(0..5));
        assert_eq!(e.containment_estimate(&a), 0.0);
        assert_eq!(e.jaccard_estimate(&e), 0.0);
    }

    #[test]
    fn asymmetric_containment() {
        let hasher = MinHasher::new(256, 5);
        let small = col(0..20);
        let big = col(0..100);
        let (ss, sb) = (hasher.sketch(&small), hasher.sketch(&big));
        // small ⊂ big: containment(small→big) ≈ 1, reverse ≈ 0.2.
        assert!(ss.containment_estimate(&sb) > 0.85);
        assert!(sb.containment_estimate(&ss) < 0.35);
    }

    #[test]
    #[should_panic(expected = "sketch size mismatch")]
    fn mixed_k_panics() {
        let a = MinHasher::new(16, 1).sketch(&col(0..5));
        let b = MinHasher::new(32, 1).sketch(&col(0..5));
        a.jaccard_estimate(&b);
    }
}
