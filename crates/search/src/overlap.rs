//! Syntactic value-overlap measures (paper Measure 3).
//!
//! Given query column `C_q` and candidate `C_c`:
//!
//! - containment `|C_q ∩ C_c| / |C_q|` over value *sets* — "not biased
//!   towards small sets" (JOSIE, LSH Ensemble);
//! - Jaccard `|C_q ∩ C_c| / |C_q ∪ C_c|` over sets;
//! - multiset Jaccard `|C_q ⩀ C_c| / |C_q ⊎ C_c|` over bags, where the
//!   intersection takes per-value minimum multiplicities and the union the
//!   sum. Its maximum is 0.5 (identical bags: `n / 2n`), as the paper notes
//!   under Figure 9.

use observatory_table::{Column, Value};
use std::collections::HashMap;

fn value_counts(values: &[Value]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for v in values {
        *m.entry(v.group_key()).or_insert(0) += 1;
    }
    m
}

/// Set containment of `query` in `candidate`: `|Q ∩ C| / |Q|`.
///
/// Returns 0 for an empty query column.
pub fn containment(query: &Column, candidate: &Column) -> f64 {
    let q = value_counts(&query.values);
    if q.is_empty() {
        return 0.0;
    }
    let c = value_counts(&candidate.values);
    let inter = q.keys().filter(|k| c.contains_key(*k)).count();
    inter as f64 / q.len() as f64
}

/// Set Jaccard similarity `|Q ∩ C| / |Q ∪ C|`.
///
/// Returns 0 when both columns are empty.
pub fn jaccard(query: &Column, candidate: &Column) -> f64 {
    let q = value_counts(&query.values);
    let c = value_counts(&candidate.values);
    let inter = q.keys().filter(|k| c.contains_key(*k)).count();
    let union = q.len() + c.len() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

/// Multiset Jaccard `Σ min(q_v, c_v) / Σ (q_v + c_v)` — duplicates count,
/// and the maximum possible value is 0.5.
pub fn multiset_jaccard(query: &Column, candidate: &Column) -> f64 {
    let q = value_counts(&query.values);
    let c = value_counts(&candidate.values);
    let total = query.values.len() + candidate.values.len();
    if total == 0 {
        return 0.0;
    }
    let inter: usize = q.iter().map(|(k, &nq)| c.get(k).map_or(0, |&nc| nq.min(nc))).sum();
    inter as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Column {
        Column::new("c", vals.iter().map(|v| Value::text(*v)).collect())
    }

    #[test]
    fn containment_basic() {
        let q = col(&["a", "b", "c", "d"]);
        let c = col(&["a", "b", "x", "y", "z"]);
        assert_eq!(containment(&q, &c), 0.5);
        // Containment is asymmetric.
        assert_eq!(containment(&c, &q), 0.4);
    }

    #[test]
    fn containment_full_and_none() {
        let q = col(&["a", "b"]);
        assert_eq!(containment(&q, &col(&["a", "b", "c"])), 1.0);
        assert_eq!(containment(&q, &col(&["x"])), 0.0);
        assert_eq!(containment(&col(&[]), &q), 0.0);
    }

    #[test]
    fn containment_ignores_duplicates() {
        let q = col(&["a", "a", "a", "b"]);
        let c = col(&["a"]);
        assert_eq!(containment(&q, &c), 0.5); // sets {a,b} vs {a}
    }

    #[test]
    fn jaccard_basic() {
        let q = col(&["a", "b", "c"]);
        let c = col(&["b", "c", "d"]);
        assert_eq!(jaccard(&q, &c), 0.5); // |{b,c}| / |{a,b,c,d}|
        assert_eq!(jaccard(&q, &q), 1.0);
        assert_eq!(jaccard(&col(&[]), &col(&[])), 0.0);
    }

    #[test]
    fn jaccard_symmetric() {
        let q = col(&["a", "b", "c", "x"]);
        let c = col(&["b", "y"]);
        assert_eq!(jaccard(&q, &c), jaccard(&c, &q));
    }

    #[test]
    fn multiset_jaccard_counts_duplicates() {
        let q = col(&["a", "a", "b"]);
        let c = col(&["a", "b", "b"]);
        // min-multiplicity intersection = min(2,1) + min(1,2) = 2; total 6.
        assert!((multiset_jaccard(&q, &c) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn multiset_jaccard_max_is_half() {
        let q = col(&["a", "b", "c"]);
        assert_eq!(multiset_jaccard(&q, &q), 0.5);
    }

    #[test]
    fn measures_disagree_under_duplication() {
        // Same set overlap, different multiset overlap — the mechanism
        // behind the paper's Table 3 finding.
        let q = col(&["a", "a", "a", "a", "b"]);
        let c1 = col(&["a", "b"]);
        let c2 = col(&["a", "a", "a", "a", "b"]);
        assert_eq!(jaccard(&q, &c1), jaccard(&q, &c2));
        assert!(multiset_jaccard(&q, &c2) > multiset_jaccard(&q, &c1));
    }

    #[test]
    fn values_distinguish_kinds() {
        let ints = Column::new("i", vec![Value::Int(1)]);
        let texts = col(&["1"]);
        assert_eq!(jaccard(&ints, &texts), 0.0);
    }
}
