//! Int8 scalar quantization for approximate cosine scoring.
//!
//! The HNSW graph walk ([`crate::ann`]) evaluates thousands of candidate
//! similarities per query; doing that on the original `f64` vectors
//! costs 8 bytes/lane of memory traffic for a comparison whose outcome
//! only needs ~2 correct decimal digits (the walk is re-ranked exactly
//! afterwards). Each vector is therefore quantized **symmetrically per
//! vector**: `q[i] = round(127 · v[i] / max|v|)`, clamped to `[-127,
//! 127]`.
//!
//! Cosine similarity is scale-invariant, so the per-vector scale cancels
//! and never needs to be stored:
//!
//! ```text
//! cos(a, b) ≈ dot(qa, qb) / (‖qa‖ · ‖qb‖)
//! ```
//!
//! The int8 norms are hoisted at insertion (like the flat index's f64
//! norms), making a quantized score one int dot product.
//!
//! ## Error budget
//!
//! Rounding perturbs each normalized component by at most `1/254` of
//! the vector's max-magnitude component, which bounds the quantized
//! cosine error by ~`2√dim/254 ≈ 0.06` at dim 64 in the worst case and
//! ~`0.005` in the RMS case. That is far too coarse for *final* scores
//! (the paper's measures compare scores across embedding spaces) but
//! comfortably sharp for *candidate generation*: the exact f64 re-rank
//! of the top `ef` candidates restores bit-exact scores, and the recall
//! gate in `tests/proptests.rs` pins the end-to-end effect.

/// A growable set of int8-quantized vectors with hoisted norms.
///
/// Storage is one flat row-major `i8` buffer (8× smaller than the f64
/// original), plus one `f64` norm per vector.
pub struct QuantVectors {
    dim: usize,
    data: Vec<i8>,
    /// Hoisted L2 norms of the *quantized* rows.
    norms: Vec<f64>,
}

impl QuantVectors {
    /// An empty set for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim, data: Vec::new(), norms: Vec::new() }
    }

    /// Number of quantized vectors.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Bytes held by the quantized payload (diagnostics).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() + self.norms.len() * std::mem::size_of::<f64>()
    }

    /// Quantize and append `v`, returning its index.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn push(&mut self, v: &[f64]) -> usize {
        assert_eq!(v.len(), self.dim, "quantize: dimension mismatch");
        let start = self.data.len();
        self.data.resize(start + self.dim, 0);
        let norm = quantize_into(v, &mut self.data[start..]);
        self.norms.push(norm);
        self.norms.len() - 1
    }

    /// The quantized row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Approximate cosine similarity between stored rows `a` and `b`.
    #[inline]
    pub fn score_rows(&self, a: usize, b: usize) -> f64 {
        scaled_dot(self.row(a), self.row(b), self.norms[a] * self.norms[b])
    }

    /// Approximate cosine similarity between a quantized query and
    /// stored row `i`.
    #[inline]
    pub fn score(&self, query: &QuantQuery, i: usize) -> f64 {
        scaled_dot(&query.data, self.row(i), query.norm * self.norms[i])
    }
}

/// A query vector quantized once per search and reused for every
/// candidate comparison.
pub struct QuantQuery {
    data: Vec<i8>,
    norm: f64,
}

impl QuantQuery {
    /// Quantize `v` with the same per-vector scheme as stored rows.
    pub fn new(v: &[f64]) -> Self {
        let mut data = vec![0i8; v.len()];
        let norm = quantize_into(v, &mut data);
        QuantQuery { data, norm }
    }
}

/// Quantize `v` into `out` and return the L2 norm of the quantized row.
/// Zero vectors (and all-NaN vectors, which have no finite max) quantize
/// to all-zero with norm 0 and thus score 0 everywhere, like the flat
/// index's zero-vector convention.
fn quantize_into(v: &[f64], out: &mut [i8]) -> f64 {
    let max = v.iter().map(|x| x.abs()).filter(|x| x.is_finite()).fold(0.0f64, f64::max);
    if max <= 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = 127.0 / max;
    let mut sumsq = 0i64;
    for (x, q) in v.iter().zip(out.iter_mut()) {
        // Non-finite components clamp deterministically: +inf → 127,
        // −inf → −127, NaN → 0.
        let r = x * scale;
        let c = if r.is_nan() { 0 } else { (r.round() as i64).clamp(-127, 127) };
        *q = c as i8;
        sumsq += c * c;
    }
    (sumsq as f64).sqrt()
}

/// `dot(a, b) / norms`, with 0 for degenerate norms. The i32 product of
/// two `[-127, 127]` lanes accumulates exactly in i64 for any realistic
/// dimension (dim < 2^47), so the dot itself is exact integer math.
#[inline]
fn scaled_dot(a: &[i8], b: &[i8], norms: f64) -> f64 {
    if norms <= 0.0 {
        return 0.0;
    }
    dot_i8(a, b) as f64 / norms
}

/// Integer dot product over i8 lanes with i64 accumulation. Written as
/// four independent partial sums so the compiler can vectorize the
/// i8→i32 widening multiply (this loop is the ANN hot path).
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..4 {
            acc[l] += i64::from(ca[l]) * i64::from(cb[l]);
        }
    }
    let mut tail = 0i64;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += i64::from(*x) * i64::from(*y);
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_linalg::{reduce, SplitMix64};

    #[test]
    fn quantized_cosine_tracks_exact_cosine() {
        let mut rng = SplitMix64::new(11);
        let dim = 64;
        let vecs: Vec<Vec<f64>> =
            (0..50).map(|_| (0..dim).map(|_| rng.next_normal()).collect()).collect();
        let mut qv = QuantVectors::new(dim);
        for v in &vecs {
            qv.push(v);
        }
        let mut max_err = 0.0f64;
        for (i, a) in vecs.iter().enumerate() {
            let q = QuantQuery::new(a);
            for (j, b) in vecs.iter().enumerate() {
                let exact = reduce::cosine(a, b);
                let approx = qv.score(&q, j);
                max_err = max_err.max((exact - approx).abs());
                let pair = qv.score_rows(i, j);
                assert!((exact - pair).abs() < 0.02, "row-row err {i},{j}");
            }
        }
        // RMS-case bound with margin; the doc's worst case is 0.06.
        assert!(max_err < 0.02, "max quantized cosine error {max_err}");
    }

    #[test]
    fn scale_invariance_is_exact() {
        // Per-vector symmetric quantization: scaling a vector scales its
        // max too, so the quantized codes are identical and the score is
        // bit-identical, mirroring cosine's own scale invariance.
        let v = [0.3, -1.2, 0.7, 0.01];
        let scaled: Vec<f64> = v.iter().map(|x| x * 1e6).collect();
        let mut qv = QuantVectors::new(4);
        qv.push(&v);
        qv.push(&scaled);
        assert_eq!(qv.row(0), qv.row(1));
        let q = QuantQuery::new(&[1.0, 1.0, -0.5, 0.25]);
        assert_eq!(qv.score(&q, 0).to_bits(), qv.score(&q, 1).to_bits());
    }

    #[test]
    fn degenerate_vectors_score_zero() {
        let mut qv = QuantVectors::new(3);
        qv.push(&[0.0, 0.0, 0.0]);
        qv.push(&[f64::NAN, f64::NAN, f64::NAN]);
        qv.push(&[1.0, f64::INFINITY, f64::NEG_INFINITY]);
        let q = QuantQuery::new(&[1.0, 2.0, 3.0]);
        assert_eq!(qv.score(&q, 0), 0.0);
        assert_eq!(qv.score(&q, 1), 0.0);
        // Infinities clamp to the rails rather than poisoning the row.
        assert_eq!(qv.row(2), &[127, 127, -127]);
        assert!(qv.score(&q, 2).is_finite());
        // Zero-norm query scores zero against everything.
        let zq = QuantQuery::new(&[0.0, 0.0, 0.0]);
        assert_eq!(qv.score(&zq, 2), 0.0);
    }

    #[test]
    fn dot_i8_matches_naive_on_tails() {
        let mut rng = SplitMix64::new(3);
        for len in [0usize, 1, 3, 4, 5, 7, 8, 63, 64, 65] {
            let a: Vec<i8> = (0..len).map(|_| (rng.next_below(255) as i64 - 127) as i8).collect();
            let b: Vec<i8> = (0..len).map(|_| (rng.next_below(255) as i64 - 127) as i8).collect();
            let naive: i64 = a.iter().zip(&b).map(|(x, y)| i64::from(*x) * i64::from(*y)).sum();
            assert_eq!(dot_i8(&a, &b), naive, "len={len}");
        }
    }

    #[test]
    fn payload_is_eightfold_smaller_than_f64() {
        let mut qv = QuantVectors::new(128);
        for _ in 0..10 {
            qv.push(&vec![1.0; 128]);
        }
        // 10×128 i8 + 10 f64 norms, vs 10×128 f64 originals.
        assert_eq!(qv.payload_bytes(), 10 * 128 + 10 * 8);
    }
}
