//! Exact k-nearest-neighbour search under cosine similarity.
//!
//! Exact (brute force) rather than approximate: Observatory's entity-
//! stability measure compares the *identity* of neighbour sets between two
//! embedding spaces, so index recall must be 1 to avoid conflating index
//! error with model disagreement. Vectors are L2-normalized at insertion,
//! making each query a dot-product scan plus a top-k selection.

use observatory_linalg::vector;

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Key of the indexed item.
    pub key: String,
    /// Cosine similarity to the query.
    pub score: f64,
}

/// An exact cosine kNN index over keyed vectors.
pub struct KnnIndex {
    dim: usize,
    keys: Vec<String>,
    vectors: Vec<Vec<f64>>, // unit-normalized
}

impl KnnIndex {
    /// An empty index for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim, keys: Vec::new(), vectors: Vec::new() }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Insert a keyed vector. Keys need not be unique (near-duplicate
    /// mentions across tables are legitimate distinct items); zero vectors
    /// are stored as-is and simply never score above 0.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, key: impl Into<String>, vector: &[f64]) {
        assert_eq!(vector.len(), self.dim, "insert: dimension mismatch");
        self.keys.push(key.into());
        self.vectors.push(vector::normalize(vector));
    }

    /// The `k` nearest neighbours of `query` by cosine similarity,
    /// descending score; ties break by insertion order (stable across
    /// runs). Set `exclude_key` to skip self-matches.
    pub fn query(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query: dimension mismatch");
        let q = vector::normalize(query);
        let mut scored: Vec<(usize, f64)> = self
            .vectors
            .iter()
            .enumerate()
            .filter(|(i, _)| exclude_key != Some(self.keys[*i].as_str()))
            .map(|(i, v)| (i, vector::dot(&q, v)))
            .collect();
        // Descending by score, ascending by index for deterministic ties.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, score)| Hit { key: self.keys[i].clone(), score })
            .collect()
    }

    /// Convenience: the neighbour key set (for overlap computations).
    pub fn neighbor_keys(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<String> {
        self.query(query, k, exclude_key).into_iter().map(|h| h.key).collect()
    }
}

/// Percent overlap between two neighbour lists: `|s₁ ∩ s₂| / K` with
/// `K = max(len)` (paper Measure 6). Duplicated keys count once.
pub fn neighbor_overlap(s1: &[String], s2: &[String]) -> f64 {
    let k = s1.len().max(s2.len());
    if k == 0 {
        return 0.0;
    }
    let a: std::collections::HashSet<&String> = s1.iter().collect();
    let b: std::collections::HashSet<&String> = s2.iter().collect();
    a.intersection(&b).count() as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> KnnIndex {
        let mut idx = KnnIndex::new(2);
        idx.insert("east", &[1.0, 0.0]);
        idx.insert("northeast", &[1.0, 1.0]);
        idx.insert("north", &[0.0, 1.0]);
        idx.insert("west", &[-1.0, 0.0]);
        idx
    }

    #[test]
    fn nearest_by_cosine() {
        let hits = index().query(&[1.0, 0.1], 2, None);
        assert_eq!(hits[0].key, "east");
        assert_eq!(hits[1].key, "northeast");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn scale_invariance() {
        let idx = index();
        let a = idx.neighbor_keys(&[2.0, 0.2], 3, None);
        let b = idx.neighbor_keys(&[200.0, 20.0], 3, None);
        assert_eq!(a, b);
    }

    #[test]
    fn exclude_self() {
        let idx = index();
        let hits = idx.query(&[1.0, 0.0], 1, Some("east"));
        assert_eq!(hits[0].key, "northeast");
    }

    #[test]
    fn k_larger_than_index() {
        let hits = index().query(&[1.0, 0.0], 100, None);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut idx = KnnIndex::new(2);
        idx.insert("first", &[1.0, 0.0]);
        idx.insert("second", &[1.0, 0.0]);
        let hits = idx.query(&[1.0, 0.0], 2, None);
        assert_eq!(hits[0].key, "first");
        assert_eq!(hits[1].key, "second");
    }

    #[test]
    fn overlap_measure() {
        let s1 = vec!["a".into(), "b".into(), "c".into()];
        let s2 = vec!["b".into(), "c".into(), "d".into()];
        assert!((neighbor_overlap(&s1, &s2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(neighbor_overlap(&s1, &s1), 1.0);
        assert_eq!(neighbor_overlap(&[], &[]), 0.0);
    }

    #[test]
    fn zero_vector_is_harmless() {
        let mut idx = index();
        idx.insert("null", &[0.0, 0.0]);
        let hits = idx.query(&[1.0, 0.0], 5, None);
        assert_eq!(hits.last().unwrap().key, "west"); // null scores 0 > west's −1
        assert_eq!(hits.len(), 5);
    }
}
