//! Exact k-nearest-neighbour search under cosine similarity.
//!
//! Exact (brute force) rather than approximate: Observatory's entity-
//! stability measure compares the *identity* of neighbour sets between two
//! embedding spaces, so index recall must be 1 to avoid conflating index
//! error with model disagreement.
//!
//! ## Layout and norm hoisting
//!
//! Items live in one flat row-major buffer (one allocation instead of one
//! `Vec` per item; the scan streams contiguous memory), and each item's
//! L2 norm is computed **once at insertion** and reused by every query —
//! a query is then a [`reduce::dot`] scan (tier-dispatched SIMD, fixed
//! 8-lane order, byte-identical across tiers) plus one division per
//! candidate and a top-k selection. Scores are identical across queries
//! of the same request by construction (regression-tested here and in
//! `serve`'s `/v1/knn`).

use observatory_linalg::reduce;

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Key of the indexed item.
    pub key: String,
    /// Cosine similarity to the query.
    pub score: f64,
}

/// An exact cosine kNN index over keyed vectors.
pub struct KnnIndex {
    dim: usize,
    keys: Vec<String>,
    /// Flat row-major item matrix (`len × dim`), raw (not normalized).
    data: Vec<f64>,
    /// Per-item L2 norms, hoisted once at insertion.
    norms: Vec<f64>,
}

impl KnnIndex {
    /// An empty index for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim, keys: Vec::new(), data: Vec::new(), norms: Vec::new() }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Insert a keyed vector. Keys need not be unique (near-duplicate
    /// mentions across tables are legitimate distinct items); zero vectors
    /// are stored as-is and simply never score above 0. The item's norm is
    /// computed here, once, and reused by every subsequent query.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, key: impl Into<String>, vector: &[f64]) {
        assert_eq!(vector.len(), self.dim, "insert: dimension mismatch");
        self.keys.push(key.into());
        self.data.extend_from_slice(vector);
        self.norms.push(reduce::norm_l2(vector));
    }

    /// The `k` nearest neighbours of `query` by cosine similarity,
    /// descending score; ties break by insertion order (stable across
    /// runs). Set `exclude_key` to skip self-matches.
    ///
    /// The query norm is computed once per call and candidate norms were
    /// hoisted at insert, so the scan is one dot product per item.
    pub fn query(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query: dimension mismatch");
        let qn = reduce::norm_l2(query);
        let mut scored: Vec<(usize, f64)> = (0..self.keys.len())
            .filter(|&i| exclude_key != Some(self.keys[i].as_str()))
            .map(|i| {
                let v = &self.data[i * self.dim..(i + 1) * self.dim];
                (i, reduce::cosine_prenormed(reduce::dot(query, v), qn, self.norms[i]))
            })
            .collect();
        // Descending by score, ascending by index for deterministic ties.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, score)| Hit { key: self.keys[i].clone(), score })
            .collect()
    }

    /// Convenience: the neighbour key set (for overlap computations).
    pub fn neighbor_keys(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<String> {
        self.query(query, k, exclude_key).into_iter().map(|h| h.key).collect()
    }
}

/// Percent overlap between two neighbour lists: `|s₁ ∩ s₂| / K` with
/// `K = max(len)` (paper Measure 6). Duplicated keys count once.
pub fn neighbor_overlap(s1: &[String], s2: &[String]) -> f64 {
    let k = s1.len().max(s2.len());
    if k == 0 {
        return 0.0;
    }
    let a: std::collections::HashSet<&String> = s1.iter().collect();
    let b: std::collections::HashSet<&String> = s2.iter().collect();
    a.intersection(&b).count() as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> KnnIndex {
        let mut idx = KnnIndex::new(2);
        idx.insert("east", &[1.0, 0.0]);
        idx.insert("northeast", &[1.0, 1.0]);
        idx.insert("north", &[0.0, 1.0]);
        idx.insert("west", &[-1.0, 0.0]);
        idx
    }

    #[test]
    fn nearest_by_cosine() {
        let hits = index().query(&[1.0, 0.1], 2, None);
        assert_eq!(hits[0].key, "east");
        assert_eq!(hits[1].key, "northeast");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn scale_invariance() {
        let idx = index();
        let a = idx.neighbor_keys(&[2.0, 0.2], 3, None);
        let b = idx.neighbor_keys(&[200.0, 20.0], 3, None);
        assert_eq!(a, b);
    }

    #[test]
    fn exclude_self() {
        let idx = index();
        let hits = idx.query(&[1.0, 0.0], 1, Some("east"));
        assert_eq!(hits[0].key, "northeast");
    }

    #[test]
    fn k_larger_than_index() {
        let hits = index().query(&[1.0, 0.0], 100, None);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut idx = KnnIndex::new(2);
        idx.insert("first", &[1.0, 0.0]);
        idx.insert("second", &[1.0, 0.0]);
        let hits = idx.query(&[1.0, 0.0], 2, None);
        assert_eq!(hits[0].key, "first");
        assert_eq!(hits[1].key, "second");
    }

    #[test]
    fn overlap_measure() {
        let s1 = vec!["a".into(), "b".into(), "c".into()];
        let s2 = vec!["b".into(), "c".into(), "d".into()];
        assert!((neighbor_overlap(&s1, &s2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(neighbor_overlap(&s1, &s1), 1.0);
        assert_eq!(neighbor_overlap(&[], &[]), 0.0);
    }

    #[test]
    fn hoisted_norms_give_identical_scores_across_queries() {
        // Regression: candidate norms are computed once at insert, so a
        // 2-query request scores every item bit-identically to scoring
        // it from scratch — and repeating a query cannot drift.
        let mut idx = KnnIndex::new(3);
        let items: Vec<(&str, Vec<f64>)> = vec![
            ("a", vec![0.3, -1.2, 0.7]),
            ("b", vec![2.0, 0.1, -0.4]),
            ("c", vec![-0.5, 0.5, 1.5]),
        ];
        for (k, v) in &items {
            idx.insert(*k, v);
        }
        let q1 = [1.0, 0.2, -0.3];
        let q2 = [-0.7, 1.1, 0.9];
        let h1a = idx.query(&q1, 3, None);
        let h2 = idx.query(&q2, 3, None);
        let h1b = idx.query(&q1, 3, None);
        assert_eq!(h1a, h1b, "same query twice: bit-identical hits");
        for (q, hits) in [(&q1[..], &h1a), (&q2[..], &h2)] {
            for h in hits {
                let (_, v) = items.iter().find(|(k, _)| *k == h.key).unwrap();
                let want = reduce::cosine(q, v);
                assert_eq!(
                    h.score.to_bits(),
                    want.to_bits(),
                    "hoisted-norm score for {} must equal from-scratch cosine",
                    h.key
                );
            }
        }
    }

    #[test]
    fn zero_vector_is_harmless() {
        let mut idx = index();
        idx.insert("null", &[0.0, 0.0]);
        let hits = idx.query(&[1.0, 0.0], 5, None);
        assert_eq!(hits.last().unwrap().key, "west"); // null scores 0 > west's −1
        assert_eq!(hits.len(), 5);
    }
}
