//! Exact k-nearest-neighbour search under cosine similarity.
//!
//! Exact (brute force) rather than approximate: Observatory's entity-
//! stability measure compares the *identity* of neighbour sets between two
//! embedding spaces, so index recall must be 1 to avoid conflating index
//! error with model disagreement.
//!
//! ## Layout and norm hoisting
//!
//! Items live in one flat row-major buffer (one allocation instead of one
//! `Vec` per item; the scan streams contiguous memory), and each item's
//! L2 norm is computed **once at insertion** and reused by every query —
//! a query is then a [`reduce::dot`] scan (tier-dispatched SIMD, fixed
//! 8-lane order, byte-identical across tiers) plus one division per
//! candidate and a top-k selection. Scores are identical across queries
//! of the same request by construction (regression-tested here and in
//! `serve`'s `/v1/knn`).

use observatory_linalg::reduce;

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Key of the indexed item.
    pub key: String,
    /// Cosine similarity to the query.
    pub score: f64,
}

/// An exact cosine kNN index over keyed vectors.
pub struct KnnIndex {
    dim: usize,
    keys: Vec<String>,
    /// Flat row-major item matrix (`len × dim`), raw (not normalized).
    data: Vec<f64>,
    /// Per-item L2 norms, hoisted once at insertion.
    norms: Vec<f64>,
}

impl KnnIndex {
    /// An empty index for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim, keys: Vec::new(), data: Vec::new(), norms: Vec::new() }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Insert a keyed vector. Keys need not be unique (near-duplicate
    /// mentions across tables are legitimate distinct items); zero vectors
    /// are stored as-is and simply never score above 0. The item's norm is
    /// computed here, once, and reused by every subsequent query.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, key: impl Into<String>, vector: &[f64]) {
        assert_eq!(vector.len(), self.dim, "insert: dimension mismatch");
        self.keys.push(key.into());
        self.data.extend_from_slice(vector);
        self.norms.push(reduce::norm_l2(vector));
    }

    /// The `k` nearest neighbours of `query` by cosine similarity,
    /// descending score; ties break by insertion order (stable across
    /// runs). Set `exclude_key` to skip self-matches.
    ///
    /// The query norm is computed once per call and candidate norms were
    /// hoisted at insert, so the scan is one dot product per item. The
    /// top-k is selected in O(n + k log k) — `select_nth_unstable_by`
    /// partitions the scored vector around the k-th element, and only
    /// the k survivors are sorted — instead of full-sorting all n
    /// candidates. The comparator is a total order (descending score,
    /// ascending insertion index), so the selected set and its final
    /// order are bit-identical to the full sort's first k entries.
    pub fn query(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query: dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        let qn = reduce::norm_l2(query);
        let mut scored: Vec<(usize, f64)> = (0..self.keys.len())
            .filter(|&i| exclude_key != Some(self.keys[i].as_str()))
            .map(|i| {
                let v = &self.data[i * self.dim..(i + 1) * self.dim];
                (i, reduce::cosine_prenormed(reduce::dot(query, v), qn, self.norms[i]))
            })
            .collect();
        top_k_hits(scored.as_mut_slice(), k)
            .iter()
            .map(|&(i, score)| Hit { key: self.keys[i].clone(), score })
            .collect()
    }

    /// Convenience: the neighbour key set (for overlap computations).
    pub fn neighbor_keys(&self, query: &[f64], k: usize, exclude_key: Option<&str>) -> Vec<String> {
        self.query(query, k, exclude_key).into_iter().map(|h| h.key).collect()
    }
}

/// Deterministic hit ordering shared by every index in this crate:
/// descending score, then ascending insertion index. Total order
/// (`total_cmp` + unique indices), so any comparison sort yields the
/// same permutation.
pub(crate) fn hit_order(a: &(usize, f64), b: &(usize, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Select the best `k` entries of `scored` under [`hit_order`] and
/// return them sorted, in O(n + k log k): a quickselect partition
/// around the k-th element, then a sort of the k survivors only.
/// Because the order is total, the result is bit-identical to sorting
/// all of `scored` and taking the first `k`.
pub(crate) fn top_k_hits(scored: &mut [(usize, f64)], k: usize) -> &[(usize, f64)] {
    let k = k.min(scored.len());
    if k == 0 {
        return &scored[..0];
    }
    if k < scored.len() {
        scored.select_nth_unstable_by(k - 1, hit_order);
    }
    scored[..k].sort_unstable_by(hit_order);
    &scored[..k]
}

/// Percent overlap between two neighbour lists: `|s₁ ∩ s₂| / K` with
/// `K = max(|s₁|, |s₂|)` over **distinct** keys (paper Measure 6).
/// Duplicated keys count once on *both* sides of the ratio — the
/// intersection is a set intersection, so the denominator must be the
/// deduplicated list length too, or a list with repeated keys could
/// never reach overlap 1.0 with itself.
pub fn neighbor_overlap(s1: &[String], s2: &[String]) -> f64 {
    let a: std::collections::HashSet<&String> = s1.iter().collect();
    let b: std::collections::HashSet<&String> = s2.iter().collect();
    let k = a.len().max(b.len());
    if k == 0 {
        return 0.0;
    }
    a.intersection(&b).count() as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> KnnIndex {
        let mut idx = KnnIndex::new(2);
        idx.insert("east", &[1.0, 0.0]);
        idx.insert("northeast", &[1.0, 1.0]);
        idx.insert("north", &[0.0, 1.0]);
        idx.insert("west", &[-1.0, 0.0]);
        idx
    }

    #[test]
    fn nearest_by_cosine() {
        let hits = index().query(&[1.0, 0.1], 2, None);
        assert_eq!(hits[0].key, "east");
        assert_eq!(hits[1].key, "northeast");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn scale_invariance() {
        let idx = index();
        let a = idx.neighbor_keys(&[2.0, 0.2], 3, None);
        let b = idx.neighbor_keys(&[200.0, 20.0], 3, None);
        assert_eq!(a, b);
    }

    #[test]
    fn exclude_self() {
        let idx = index();
        let hits = idx.query(&[1.0, 0.0], 1, Some("east"));
        assert_eq!(hits[0].key, "northeast");
    }

    #[test]
    fn k_larger_than_index() {
        let hits = index().query(&[1.0, 0.0], 100, None);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut idx = KnnIndex::new(2);
        idx.insert("first", &[1.0, 0.0]);
        idx.insert("second", &[1.0, 0.0]);
        let hits = idx.query(&[1.0, 0.0], 2, None);
        assert_eq!(hits[0].key, "first");
        assert_eq!(hits[1].key, "second");
    }

    #[test]
    fn overlap_measure() {
        let s1 = vec!["a".into(), "b".into(), "c".into()];
        let s2 = vec!["b".into(), "c".into(), "d".into()];
        assert!((neighbor_overlap(&s1, &s2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(neighbor_overlap(&s1, &s1), 1.0);
        assert_eq!(neighbor_overlap(&[], &[]), 0.0);
    }

    #[test]
    fn overlap_dedups_both_sides() {
        // Regression: the denominator used raw list lengths while the
        // intersection deduplicated, so a list with repeated keys could
        // never reach overlap 1.0 with itself.
        let dup: Vec<String> = vec!["a".into(), "a".into(), "b".into()];
        assert_eq!(neighbor_overlap(&dup, &dup), 1.0);
        // {a, b} against {a, b, c}: 2 shared over max(2, 3) distinct.
        let abc: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        assert!((neighbor_overlap(&dup, &abc) - 2.0 / 3.0).abs() < 1e-12);
        assert!((neighbor_overlap(&abc, &dup) - 2.0 / 3.0).abs() < 1e-12);
        // Disjoint stays 0 regardless of duplication.
        let xy: Vec<String> = vec!["x".into(), "x".into(), "y".into()];
        assert_eq!(neighbor_overlap(&dup, &xy), 0.0);
    }

    #[test]
    fn hoisted_norms_give_identical_scores_across_queries() {
        // Regression: candidate norms are computed once at insert, so a
        // 2-query request scores every item bit-identically to scoring
        // it from scratch — and repeating a query cannot drift.
        let mut idx = KnnIndex::new(3);
        let items: Vec<(&str, Vec<f64>)> = vec![
            ("a", vec![0.3, -1.2, 0.7]),
            ("b", vec![2.0, 0.1, -0.4]),
            ("c", vec![-0.5, 0.5, 1.5]),
        ];
        for (k, v) in &items {
            idx.insert(*k, v);
        }
        let q1 = [1.0, 0.2, -0.3];
        let q2 = [-0.7, 1.1, 0.9];
        let h1a = idx.query(&q1, 3, None);
        let h2 = idx.query(&q2, 3, None);
        let h1b = idx.query(&q1, 3, None);
        assert_eq!(h1a, h1b, "same query twice: bit-identical hits");
        for (q, hits) in [(&q1[..], &h1a), (&q2[..], &h2)] {
            for h in hits {
                let (_, v) = items.iter().find(|(k, _)| *k == h.key).unwrap();
                let want = reduce::cosine(q, v);
                assert_eq!(
                    h.score.to_bits(),
                    want.to_bits(),
                    "hoisted-norm score for {} must equal from-scratch cosine",
                    h.key
                );
            }
        }
        // And the selection path must be bit-for-bit the full sort: the
        // O(n + k log k) top-k replaced an O(n log n) sort-then-take.
        for k in 0..=items.len() + 1 {
            for q in [&q1[..], &q2[..]] {
                assert_eq!(
                    idx.query(q, k, None),
                    query_fullsort(&idx, q, k, None),
                    "top-k selection must equal the full-sort path at k={k}"
                );
            }
        }
    }

    /// The pre-fix reference implementation: score everything, full-sort
    /// with the same comparator, take k. Kept test-only as the oracle
    /// for the selection-based `query`.
    fn query_fullsort(idx: &KnnIndex, query: &[f64], k: usize, exclude: Option<&str>) -> Vec<Hit> {
        let qn = reduce::norm_l2(query);
        let mut scored: Vec<(usize, f64)> = (0..idx.keys.len())
            .filter(|&i| exclude != Some(idx.keys[i].as_str()))
            .map(|i| {
                let v = &idx.data[i * idx.dim..(i + 1) * idx.dim];
                (i, reduce::cosine_prenormed(reduce::dot(query, v), qn, idx.norms[i]))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(i, score)| Hit { key: idx.keys[i].clone(), score })
            .collect()
    }

    #[test]
    fn top_k_selection_matches_full_sort_with_ties_and_nonfinite() {
        // Adversarial inputs for the selection path: exact score ties
        // (duplicate vectors), zero vectors (score 0), and an excluded
        // key, across every k including 0 and > n.
        let mut idx = KnnIndex::new(4);
        let mut rng = observatory_linalg::SplitMix64::new(9);
        for i in 0..64 {
            let v: Vec<f64> = if i % 7 == 0 {
                vec![0.0; 4] // zero vector: NaN-free score 0
            } else if i % 3 == 0 {
                vec![1.0, 2.0, -1.0, 0.5] // repeated: exact score ties
            } else {
                (0..4).map(|_| rng.next_normal()).collect()
            };
            idx.insert(format!("k{i}"), &v);
        }
        let q = [0.3, -0.8, 1.1, 0.2];
        for k in [0, 1, 2, 5, 10, 63, 64, 100] {
            for exclude in [None, Some("k3")] {
                assert_eq!(idx.query(&q, k, exclude), query_fullsort(&idx, &q, k, exclude));
            }
        }
    }

    #[test]
    fn zero_vector_is_harmless() {
        let mut idx = index();
        idx.insert("null", &[0.0, 0.0]);
        let hits = idx.query(&[1.0, 0.0], 5, None);
        assert_eq!(hits.last().unwrap().key, "west"); // null scores 0 > west's −1
        assert_eq!(hits.len(), 5);
    }
}
