//! Graph-based approximate nearest-neighbour search: HNSW over
//! int8-quantized vectors with exact f64 re-ranking.
//!
//! The flat [`KnnIndex`] is O(n) per query — the right tool for the
//! paper's experiments (recall must be exactly 1 there), the wrong one
//! for corpus-scale entity stability and join discovery. This module
//! adds the sublinear regime:
//!
//! - [`AnnIndex`]: the common query trait. The flat index implements it
//!   too, so it stays available as the recall-1 oracle behind the same
//!   call site, and `serve` can swap index kinds per request.
//! - [`HnswIndex`]: one Hierarchical Navigable Small World graph
//!   (Malkov & Yashunin) over [`QuantVectors`]. Layer membership is
//!   assigned by a seeded hash of the item's **global** insertion index,
//!   so an item's level — and therefore the graph — is a pure function
//!   of `(seed, data)`, independent of shard count or build parallelism.
//! - [`ShardedHnsw`]: round-robin partition into independent graphs,
//!   built in parallel (one worker per shard on the scoped pool) and
//!   probed together at query time.
//!
//! ## Query pipeline
//!
//! ```text
//! quantize query (int8, per-vector scale)
//!   └─ per shard: greedy descent on upper layers → ef_search beam at
//!      layer 0, all scored with integer dot products   (probe)
//! union of shard candidates
//!   └─ exact f64 cosine on the original vectors, the *same*
//!      `cosine_prenormed(dot, qn, norm)` expression the flat index
//!      uses → descending-score / ascending-insertion-index top-k   (rerank)
//! ```
//!
//! Because the re-rank reuses the flat index's scoring expression and
//! tie-break, any candidate set that covers the true top-k produces
//! **bit-identical** hits to the oracle — approximation only ever
//! removes candidates, never perturbs scores.

use crate::knn::{top_k_hits, Hit, KnnIndex};
use crate::quant::{QuantQuery, QuantVectors};
use observatory_linalg::{reduce, SplitMix64};
use observatory_obs as obs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Construction and search knobs for [`HnswIndex`] / [`ShardedHnsw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbours per node on layers ≥ 1 (layer 0 keeps `2m`).
    pub m: usize,
    /// Beam width while inserting (candidate pool for link selection).
    pub ef_construction: usize,
    /// Default beam width at query time (raised to `k` when smaller).
    pub ef_search: usize,
    /// Seed for the level-assignment hash.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, ef_search: 64, seed: 0x0b5e_44a7 }
    }
}

/// Per-query overrides for [`AnnIndex::search`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchParams {
    /// Beam width override; `None` uses the index's configured default.
    /// The flat index ignores it (its recall is 1 by construction).
    pub ef_search: Option<usize>,
}

/// A queryable nearest-neighbour index (exact or approximate).
pub trait AnnIndex: Send + Sync {
    /// Index kind for health/metrics surfaces: `"flat"` or `"hnsw"`.
    fn kind(&self) -> &'static str;
    /// Number of indexed items.
    fn len(&self) -> usize;
    /// Whether the index holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Vector dimensionality.
    fn dim(&self) -> usize;
    /// Number of independent shards probed per query.
    fn num_shards(&self) -> usize {
        1
    }
    /// The `k` best hits for `query`, descending score, ties broken by
    /// ascending insertion order; `exclude_key` suppresses self-matches.
    fn search(
        &self,
        query: &[f64],
        k: usize,
        exclude_key: Option<&str>,
        params: SearchParams,
    ) -> Vec<Hit>;
}

impl AnnIndex for KnnIndex {
    fn kind(&self) -> &'static str {
        "flat"
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn search(
        &self,
        query: &[f64],
        k: usize,
        exclude_key: Option<&str>,
        _params: SearchParams,
    ) -> Vec<Hit> {
        self.query(query, k, exclude_key)
    }
}

/// Level cap: with `mL = 1/ln(m)` the probability of exceeding 30
/// layers is below 2⁻⁴⁰ for any corpus that fits in memory.
const MAX_LEVEL: usize = 30;

/// Deterministic level assignment: a seeded `SplitMix64` stream keyed by
/// the item's global insertion index, so the level is a pure function of
/// `(seed, global_id)` — independent of shard assignment and insert
/// order interleaving.
fn level_for(seed: u64, global_id: u64, m: usize) -> usize {
    let mut rng =
        SplitMix64::new(seed ^ (global_id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u = rng.next_f64(); // [0, 1): 1-u is (0, 1], ln stays finite
    let ml = 1.0 / (m.max(2) as f64).ln();
    ((-(1.0 - u).ln()) * ml).floor().min(MAX_LEVEL as f64) as usize
}

/// Max-heap entry ordered by (score, then smaller-id-first among exact
/// ties) — a total order, so every heap operation is deterministic.
#[derive(PartialEq)]
struct Cand {
    score: f64,
    id: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.total_cmp(&other.score).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One node's adjacency: `neighbors[l]` is the link list on layer `l`.
struct Node {
    neighbors: Vec<Vec<u32>>,
}

/// A single HNSW graph over int8-quantized vectors, with the original
/// f64 vectors (and hoisted norms) retained for exact re-ranking.
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    keys: Vec<String>,
    /// Flat row-major f64 originals (re-rank path).
    data: Vec<f64>,
    /// Hoisted f64 norms, same convention as [`KnnIndex`].
    norms: Vec<f64>,
    /// Global insertion index of each local node (tie-break identity;
    /// equals the local id for an unsharded index).
    global_ids: Vec<u64>,
    quant: QuantVectors,
    nodes: Vec<Node>,
    entry: u32,
    max_level: usize,
}

impl HnswIndex {
    /// An empty graph for vectors of dimension `dim`.
    pub fn new(dim: usize, config: HnswConfig) -> Self {
        assert!(config.m >= 2, "m must be >= 2");
        assert!(config.ef_construction >= config.m, "ef_construction must be >= m");
        Self {
            config,
            dim,
            keys: Vec::new(),
            data: Vec::new(),
            norms: Vec::new(),
            global_ids: Vec::new(),
            quant: QuantVectors::new(dim),
            nodes: Vec::new(),
            entry: 0,
            max_level: 0,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Insert a keyed vector as global item `global_id` (pass the local
    /// insertion count when not sharding).
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, key: impl Into<String>, vector: &[f64], global_id: u64) {
        assert_eq!(vector.len(), self.dim, "insert: dimension mismatch");
        let id = self.keys.len() as u32;
        self.keys.push(key.into());
        self.data.extend_from_slice(vector);
        self.norms.push(reduce::norm_l2(vector));
        self.global_ids.push(global_id);
        self.quant.push(vector);

        let level = level_for(self.config.seed, global_id, self.config.m);
        self.nodes.push(Node { neighbors: vec![Vec::new(); level + 1] });
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }

        let score = |c: u32| self.quant.score_rows(id as usize, c as usize);
        let mut ep = self.entry;
        // Greedy descent through layers above the new node's level.
        for l in ((level + 1)..=self.max_level).rev() {
            ep = self.greedy_closest(&score, ep, l);
        }
        // Beam search + link on every shared layer, top down.
        let mut visited = vec![0u64; self.keys.len().div_ceil(64)];
        for l in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer(&score, ep, self.config.ef_construction, l, &mut visited);
            visited.fill(0);
            let m_max = self.m_for(l);
            let selected = select_neighbors(&self.quant, &cands, self.config.m);
            for &(nb, _) in &selected {
                self.nodes[id as usize].neighbors[l].push(nb);
                self.nodes[nb as usize].neighbors[l].push(id);
                if self.nodes[nb as usize].neighbors[l].len() > m_max {
                    shrink_links(&self.quant, &mut self.nodes, nb, l, m_max);
                }
            }
            if let Some(&(best, _)) = cands.first() {
                ep = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// Link capacity on layer `l` (`2m` on the dense bottom layer).
    fn m_for(&self, l: usize) -> usize {
        if l == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Follow strictly-improving links on `layer` until a local optimum.
    fn greedy_closest(&self, score: &impl Fn(u32) -> f64, mut ep: u32, layer: usize) -> u32 {
        let mut best = score(ep);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[ep as usize].neighbors[layer] {
                let s = score(nb);
                if s > best {
                    best = s;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer: expand the best unexpanded candidate
    /// until none can beat the worst of the `ef` best seen. Returns up
    /// to `ef` candidates sorted by descending score (ties: ascending
    /// id). `visited` must be an all-zero bitset of at least `len` bits.
    fn search_layer(
        &self,
        score: &impl Fn(u32) -> f64,
        ep: u32,
        ef: usize,
        layer: usize,
        visited: &mut [u64],
    ) -> Vec<(u32, f64)> {
        let mark = |v: &mut [u64], id: u32| {
            let (w, b) = (id as usize / 64, id as usize % 64);
            let seen = v[w] & (1 << b) != 0;
            v[w] |= 1 << b;
            seen
        };
        mark(visited, ep);
        let s0 = score(ep);
        // `frontier` pops best-first; `best` keeps the ef best seen,
        // with its minimum on top for O(log ef) eviction.
        let mut frontier = BinaryHeap::from([Cand { score: s0, id: ep }]);
        let mut best = BinaryHeap::from([std::cmp::Reverse(Cand { score: s0, id: ep })]);
        while let Some(c) = frontier.pop() {
            let floor = best.peek().expect("best is never empty").0.score;
            if best.len() >= ef && c.score < floor {
                break;
            }
            for &nb in &self.nodes[c.id as usize].neighbors[layer] {
                if mark(visited, nb) {
                    continue;
                }
                let s = score(nb);
                if best.len() < ef || s > best.peek().unwrap().0.score {
                    frontier.push(Cand { score: s, id: nb });
                    best.push(std::cmp::Reverse(Cand { score: s, id: nb }));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = best.into_iter().map(|r| (r.0.id, r.0.score)).collect();
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Graph probe: greedy descent from the entry point, then an
    /// `ef`-wide beam at layer 0, all on quantized scores. Returns local
    /// candidate ids with their *quantized* scores, best first.
    pub fn search_candidates(&self, query: &[f64], ef: usize) -> Vec<(u32, f64)> {
        assert_eq!(query.len(), self.dim, "query: dimension mismatch");
        if self.is_empty() {
            return Vec::new();
        }
        let q = QuantQuery::new(query);
        let score = |c: u32| self.quant.score(&q, c as usize);
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_closest(&score, ep, l);
        }
        let mut visited = vec![0u64; self.keys.len().div_ceil(64)];
        self.search_layer(&score, ep, ef.max(1), 0, &mut visited)
    }

    /// Exact f64 cosine of local item `i` against `query` whose norm is
    /// `qn` — the bit-identical expression of [`KnnIndex::query`].
    fn exact_score(&self, i: usize, query: &[f64], qn: f64) -> f64 {
        let v = &self.data[i * self.dim..(i + 1) * self.dim];
        reduce::cosine_prenormed(reduce::dot(query, v), qn, self.norms[i])
    }
}

/// The HNSW selection heuristic (similarity form): walking the
/// candidates best-first, keep one only if it is closer to the query
/// than to every already-kept neighbour — this spreads links across
/// clusters instead of piling them into the nearest one. Slots left
/// over are back-filled with the best pruned candidates. Free function
/// (not a method) so link maintenance can run while `insert`'s scoring
/// closure holds a shared borrow of the quantized rows.
fn select_neighbors(quant: &QuantVectors, cands: &[(u32, f64)], m: usize) -> Vec<(u32, f64)> {
    let mut selected: Vec<(u32, f64)> = Vec::with_capacity(m);
    let mut pruned: Vec<(u32, f64)> = Vec::new();
    for &(c, sc) in cands {
        if selected.len() >= m {
            break;
        }
        let diverse = selected.iter().all(|&(s, _)| quant.score_rows(c as usize, s as usize) < sc);
        if diverse {
            selected.push((c, sc));
        } else {
            pruned.push((c, sc));
        }
    }
    for p in pruned {
        if selected.len() >= m {
            break;
        }
        selected.push(p);
    }
    selected
}

/// Re-select `node`'s links on `layer` down to `m_max` using the same
/// diversity heuristic (scores relative to the node itself).
fn shrink_links(quant: &QuantVectors, nodes: &mut [Node], node: u32, layer: usize, m_max: usize) {
    let mut scored: Vec<(u32, f64)> = nodes[node as usize].neighbors[layer]
        .iter()
        .map(|&nb| (nb, quant.score_rows(node as usize, nb as usize)))
        .collect();
    scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let kept: Vec<u32> =
        select_neighbors(quant, &scored, m_max).into_iter().map(|(id, _)| id).collect();
    nodes[node as usize].neighbors[layer] = kept;
}

impl AnnIndex for HnswIndex {
    fn kind(&self) -> &'static str {
        "hnsw"
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(
        &self,
        query: &[f64],
        k: usize,
        exclude_key: Option<&str>,
        params: SearchParams,
    ) -> Vec<Hit> {
        if k == 0 {
            return Vec::new();
        }
        let ef = params.ef_search.unwrap_or(self.config.ef_search).max(k);
        let cands = {
            let mut span = obs::span(obs::Level::Debug, "ann", "probe").with("ef", ef);
            let c = self.search_candidates(query, ef);
            span.record("candidates", c.len());
            c
        };
        let mut span =
            obs::span(obs::Level::Debug, "ann", "rerank").with("candidates", cands.len());
        let qn = reduce::norm_l2(query);
        let mut scored: Vec<(usize, f64)> = cands
            .into_iter()
            .filter(|&(i, _)| exclude_key != Some(self.keys[i as usize].as_str()))
            .map(|(i, _)| (i as usize, self.exact_score(i as usize, query, qn)))
            .collect();
        let hits = top_k_hits(&mut scored, k)
            .iter()
            .map(|&(i, score)| Hit { key: self.keys[i].clone(), score })
            .collect();
        span.record("k", k);
        hits
    }
}

/// Round-robin sharded HNSW: item `i` lives in graph `i % shards`,
/// keeping its global index for cross-shard tie-breaks. Shards are
/// built in parallel and probed together; the exact re-rank merges the
/// candidate union with the flat index's ordering.
pub struct ShardedHnsw {
    dim: usize,
    shards: Vec<HnswIndex>,
    len: usize,
    config: HnswConfig,
}

impl ShardedHnsw {
    /// Build `shards` graphs over `items` with up to `jobs` parallel
    /// workers (one per shard). Deterministic for any `jobs`.
    ///
    /// # Panics
    /// Panics if `shards == 0` or any vector's dimension differs.
    pub fn build(
        dim: usize,
        shards: usize,
        config: HnswConfig,
        items: &[(String, Vec<f64>)],
        jobs: usize,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let shards = shards.min(items.len().max(1));
        let mut span = obs::span(obs::Level::Info, "ann", "build")
            .with("items", items.len())
            .with("shards", shards);
        let parent = obs::current_span_id();
        let built = observatory_linalg::parallel::run_indexed_scoped(
            jobs,
            shards,
            |_| (),
            |_, s| {
                let mut span = obs::span(obs::Level::Debug, "ann", "build_shard")
                    .with_parent(parent)
                    .with("shard", s);
                let mut graph = HnswIndex::new(dim, config);
                let mut items_in = 0usize;
                for (i, (key, v)) in items.iter().enumerate() {
                    if i % shards == s {
                        graph.insert(key.clone(), v, i as u64);
                        items_in += 1;
                    }
                }
                span.record("items", items_in);
                graph
            },
        );
        span.record(
            "bytes_quantized",
            built.iter().map(|g| g.quant.payload_bytes()).sum::<usize>(),
        );
        ShardedHnsw { dim, shards: built, len: items.len(), config }
    }

    /// The configuration the shards were built with.
    pub fn config(&self) -> HnswConfig {
        self.config
    }
}

impl AnnIndex for ShardedHnsw {
    fn kind(&self) -> &'static str {
        "hnsw"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn search(
        &self,
        query: &[f64],
        k: usize,
        exclude_key: Option<&str>,
        params: SearchParams,
    ) -> Vec<Hit> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let ef = params.ef_search.unwrap_or(self.config.ef_search).max(k);
        // Probe every shard's graph; candidates come back as (shard,
        // local) pairs that map 1:1 onto global insertion indices.
        let per_shard: Vec<Vec<(u32, f64)>> = {
            let mut span = obs::span(obs::Level::Debug, "ann", "probe")
                .with("ef", ef)
                .with("shards", self.shards.len());
            let c: Vec<Vec<(u32, f64)>> =
                self.shards.iter().map(|g| g.search_candidates(query, ef)).collect();
            span.record("candidates", c.iter().map(Vec::len).sum::<usize>());
            c
        };
        let mut span = obs::span(obs::Level::Debug, "ann", "rerank");
        let qn = reduce::norm_l2(query);
        let n_shards = self.shards.len();
        let mut scored: Vec<(usize, f64)> =
            Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        for (s, cands) in per_shard.iter().enumerate() {
            let graph = &self.shards[s];
            for &(local, _) in cands {
                let i = local as usize;
                if exclude_key == Some(graph.keys[i].as_str()) {
                    continue;
                }
                // Global index for the flat-identical tie-break.
                let global = i * n_shards + s;
                scored.push((global, graph.exact_score(i, query, qn)));
            }
        }
        span.record("candidates", scored.len());
        let hits = top_k_hits(&mut scored, k)
            .iter()
            .map(|&(global, score)| {
                let graph = &self.shards[global % n_shards];
                Hit { key: graph.keys[global / n_shards].clone(), score }
            })
            .collect();
        span.record("k", k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clustered vectors: `n_per` points around each of `k` centers.
    fn clustered(n_per: usize, k: usize, dim: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
        let mut rng = SplitMix64::new(seed);
        let centers: Vec<Vec<f64>> =
            (0..k).map(|_| (0..dim).map(|_| rng.next_normal()).collect()).collect();
        let mut out = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for i in 0..n_per {
                let v: Vec<f64> = center.iter().map(|x| x + 0.15 * rng.next_normal()).collect();
                out.push((format!("c{c}_{i}"), v));
            }
        }
        out
    }

    fn flat_oracle(dim: usize, items: &[(String, Vec<f64>)]) -> KnnIndex {
        let mut idx = KnnIndex::new(dim);
        for (k, v) in items {
            idx.insert(k.clone(), v);
        }
        idx
    }

    fn recall_at(truth: &[Hit], approx: &[Hit]) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let t: std::collections::HashSet<&str> = truth.iter().map(|h| h.key.as_str()).collect();
        approx.iter().filter(|h| t.contains(h.key.as_str())).count() as f64 / t.len() as f64
    }

    #[test]
    fn hnsw_high_recall_on_clustered_data() {
        let dim = 32;
        let data = clustered(100, 8, dim, 21);
        let oracle = flat_oracle(dim, &data);
        let mut graph = HnswIndex::new(dim, HnswConfig::default());
        for (i, (k, v)) in data.iter().enumerate() {
            graph.insert(k.clone(), v, i as u64);
        }
        let mut recall = 0.0;
        let queries = 50;
        for (k, v) in data.iter().take(queries) {
            let truth = oracle.query(v, 10, Some(k));
            let approx = graph.search(v, 10, Some(k), SearchParams::default());
            recall += recall_at(&truth, &approx);
        }
        recall /= queries as f64;
        assert!(recall >= 0.95, "HNSW recall@10 {recall} < 0.95");
    }

    #[test]
    fn full_coverage_beam_is_bit_identical_to_flat() {
        // With ef >= n every candidate survives the probe, so the exact
        // re-rank must reproduce the flat oracle bit-for-bit — scores,
        // order, and tie-breaks (duplicate vectors included).
        let dim = 8;
        let mut data = clustered(20, 3, dim, 5);
        data.push(("dup_a".into(), data[0].1.clone()));
        data.push(("dup_b".into(), data[0].1.clone()));
        let oracle = flat_oracle(dim, &data);
        for shards in [1usize, 4] {
            let idx = ShardedHnsw::build(dim, shards, HnswConfig::default(), &data, 2);
            let params = SearchParams { ef_search: Some(data.len()) };
            for (k, v) in data.iter().take(10) {
                let truth = oracle.query(v, 10, Some(k));
                let approx = idx.search(v, 10, Some(k), params);
                assert_eq!(truth, approx, "shards={shards}, query={k}");
            }
        }
    }

    #[test]
    fn sharded_build_is_deterministic_across_jobs() {
        let dim = 16;
        let data = clustered(30, 4, dim, 9);
        let build = |jobs| ShardedHnsw::build(dim, 4, HnswConfig::default(), &data, jobs);
        let a = build(1);
        let b = build(4);
        for (k, v) in data.iter().take(20) {
            let ha = a.search(v, 5, Some(k), SearchParams::default());
            let hb = b.search(v, 5, Some(k), SearchParams::default());
            assert_eq!(ha, hb, "jobs must not change results for {k}");
        }
    }

    #[test]
    fn level_assignment_is_seeded_and_plausible() {
        // Pure function of (seed, id): stable across calls; different
        // seeds give a different layer profile; the expected fraction of
        // level-0-only nodes is ~(1 - 1/m).
        let m = 16;
        let n = 4000u64;
        let levels: Vec<usize> = (0..n).map(|i| level_for(7, i, m)).collect();
        let again: Vec<usize> = (0..n).map(|i| level_for(7, i, m)).collect();
        assert_eq!(levels, again);
        let upper = levels.iter().filter(|&&l| l > 0).count() as f64 / n as f64;
        assert!((0.02..=0.15).contains(&upper), "P(level>0) ≈ 1/m, got {upper}");
        let other: Vec<usize> = (0..n).map(|i| level_for(8, i, m)).collect();
        assert_ne!(levels, other, "seed must matter");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let idx = ShardedHnsw::build(4, 2, HnswConfig::default(), &[], 1);
        assert!(idx.is_empty());
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 3, None, SearchParams::default()).is_empty());
        // A single item still answers.
        let one = vec![("only".to_string(), vec![1.0, 0.0, 0.0, 0.0])];
        let idx = ShardedHnsw::build(4, 8, HnswConfig::default(), &one, 2);
        assert_eq!(idx.num_shards(), 1, "shards clamp to item count");
        let hits = idx.search(&[1.0, 0.1, 0.0, 0.0], 5, None, SearchParams::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, "only");
        // k = 0 and excluded-everything return empty.
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 0, None, SearchParams::default()).is_empty());
        assert!(idx
            .search(&[1.0, 0.0, 0.0, 0.0], 3, Some("only"), SearchParams::default())
            .is_empty());
    }

    #[test]
    fn flat_index_implements_the_trait() {
        let dim = 4;
        let data = clustered(5, 2, dim, 3);
        let oracle = flat_oracle(dim, &data);
        let ann: &dyn AnnIndex = &oracle;
        assert_eq!(ann.kind(), "flat");
        assert_eq!(ann.num_shards(), 1);
        assert_eq!(ann.len(), data.len());
        assert_eq!(ann.dim(), dim);
        let via_trait = ann.search(&data[0].1, 3, None, SearchParams::default());
        assert_eq!(via_trait, oracle.query(&data[0].1, 3, None));
    }
}
