//! Embedding-based join discovery (paper §6, the Property-5 downstream
//! connection).
//!
//! The WarpGate-style pipeline the paper implements with T5: embed every
//! candidate column, index the embeddings, embed the query column, retrieve
//! top-k, and score against overlap-based ground truth. The experiment
//! contrasts *full-value* embeddings with *sampled* embeddings — high
//! sample fidelity (Property 5) should translate into near-identical
//! precision/recall at a fraction of the indexing cost.

use crate::knn::KnnIndex;
use std::collections::HashSet;

/// Precision/recall of one retrieval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    pub precision: f64,
    pub recall: f64,
}

/// Precision and recall of `retrieved` against the `relevant` set.
///
/// Empty-edge conventions: no retrieved items → precision 0 (unless
/// nothing was relevant either); no relevant items → recall 1 (nothing to
/// find, vacuously complete).
pub fn precision_recall(retrieved: &[String], relevant: &HashSet<String>) -> PrecisionRecall {
    let hits = retrieved.iter().filter(|r| relevant.contains(*r)).count() as f64;
    let precision = if retrieved.is_empty() {
        if relevant.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        hits / retrieved.len() as f64
    };
    let recall = if relevant.is_empty() { 1.0 } else { hits / relevant.len() as f64 };
    PrecisionRecall { precision, recall }
}

/// A join-discovery query: the query column's key, its embedding, and the
/// keys of its truly-joinable candidates.
pub struct JoinQuery {
    pub key: String,
    pub embedding: Vec<f64>,
    pub relevant: HashSet<String>,
}

/// Aggregate retrieval quality over a query workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinEval {
    pub mean_precision: f64,
    pub mean_recall: f64,
    pub queries: usize,
}

/// Run every query against the index at cutoff `k` and average.
pub fn evaluate_join_search(index: &KnnIndex, queries: &[JoinQuery], k: usize) -> JoinEval {
    if queries.is_empty() {
        return JoinEval { mean_precision: f64::NAN, mean_recall: f64::NAN, queries: 0 };
    }
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    for q in queries {
        let retrieved = index.neighbor_keys(&q.embedding, k, Some(q.key.as_str()));
        let pr = precision_recall(&retrieved, &q.relevant);
        p_sum += pr.precision;
        r_sum += pr.recall;
    }
    JoinEval {
        mean_precision: p_sum / queries.len() as f64,
        mean_recall: r_sum / queries.len() as f64,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(keys: &[&str]) -> HashSet<String> {
        keys.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn precision_recall_basics() {
        let retrieved = vec!["a".to_string(), "b".to_string(), "x".to_string()];
        let pr = precision_recall(&retrieved, &set(&["a", "b", "c"]));
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_edges() {
        assert_eq!(precision_recall(&[], &set(&["a"])).precision, 0.0);
        assert_eq!(precision_recall(&[], &set(&[])).precision, 1.0);
        assert_eq!(precision_recall(&["a".to_string()], &set(&[])).recall, 1.0);
    }

    #[test]
    fn end_to_end_retrieval() {
        // Two clusters: "numbers" around (1,0), "letters" around (0,1).
        let mut idx = KnnIndex::new(2);
        idx.insert("n1", &[1.0, 0.05]);
        idx.insert("n2", &[1.0, -0.05]);
        idx.insert("l1", &[0.05, 1.0]);
        idx.insert("l2", &[-0.05, 1.0]);
        let queries = vec![
            JoinQuery { key: "qn".into(), embedding: vec![1.0, 0.0], relevant: set(&["n1", "n2"]) },
            JoinQuery { key: "ql".into(), embedding: vec![0.0, 1.0], relevant: set(&["l1", "l2"]) },
        ];
        let eval = evaluate_join_search(&idx, &queries, 2);
        assert_eq!(eval.mean_precision, 1.0);
        assert_eq!(eval.mean_recall, 1.0);
        assert_eq!(eval.queries, 2);

        // k = 4 drags in the other cluster: precision halves, recall stays.
        let eval4 = evaluate_join_search(&idx, &queries, 4);
        assert_eq!(eval4.mean_precision, 0.5);
        assert_eq!(eval4.mean_recall, 1.0);
    }

    #[test]
    fn empty_workload_is_nan() {
        let idx = KnnIndex::new(2);
        let eval = evaluate_join_search(&idx, &[], 3);
        assert!(eval.mean_precision.is_nan());
        assert_eq!(eval.queries, 0);
    }
}
