//! # observatory-search
//!
//! Value-overlap measures, nearest-neighbour search, and the join-discovery
//! pipeline.
//!
//! - [`overlap`]: the three syntactic joinability measures of Property 3 —
//!   containment, Jaccard, multiset Jaccard (paper Measure 3).
//! - [`knn`]: an exact cosine k-nearest-neighbour index, used by Property 6
//!   (entity stability = K-NN overlap between embedding spaces) and by the
//!   downstream join-discovery experiment.
//! - [`join`]: embedding-based join discovery à la WarpGate (paper §6,
//!   connection for P5): index candidate column embeddings, query by
//!   column, evaluate precision/recall against overlap ground truth.
//! - [`minhash`]: MinHash sketches with Jaccard/containment estimation
//!   (the constant-space overlap estimates of the JOSIE / LSH Ensemble
//!   line the paper builds on).
//! - [`lsh`]: random-hyperplane LSH for approximate cosine search — the
//!   sublinear regime the paper's LSH-Ensemble citations target.
//! - [`quant`]: int8 scalar quantization of stored vectors (8× smaller
//!   scan payload, exact integer dot products) feeding the graph walk.
//! - [`ann`]: sharded HNSW graphs over quantized vectors with exact f64
//!   re-ranking, behind the [`ann::AnnIndex`] trait that the flat
//!   [`KnnIndex`] also implements (the recall-1 oracle).

pub mod ann;
pub mod join;
pub mod knn;
pub mod lsh;
pub mod minhash;
pub mod overlap;
pub mod quant;

pub use ann::{AnnIndex, HnswConfig, HnswIndex, SearchParams, ShardedHnsw};
pub use knn::KnnIndex;
pub use overlap::{containment, jaccard, multiset_jaccard};
