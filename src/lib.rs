//! # Observatory
//!
//! A from-scratch Rust reproduction of *Observatory: Characterizing
//! Embeddings of Relational Tables* (PVLDB / VLDB 2023): a formal framework
//! of eight primitive properties — with quantitative measures — for
//! systematically analyzing the embedding representations that language
//! models and specialized table-embedding models produce over relational
//! tables.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `observatory-linalg` | vectors, matrices, moments, PCA, deterministic RNG |
//! | [`stats`] | `observatory-stats` | Albert–Zhang MCV, Spearman ρ, descriptive statistics |
//! | [`table`] | `observatory-table` | relational table model, permutations, sampling, CSV |
//! | [`tokenizer`] | `observatory-tokenizer` | deterministic subword tokenizer |
//! | [`transformer`] | `observatory-transformer` | from-scratch Transformer encoder |
//! | [`fd`] | `observatory-fd` | functional-dependency discovery and verification |
//! | [`models`] | `observatory-models` | the nine table-embedding model adapters |
//! | [`data`] | `observatory-data` | the five synthetic dataset suites |
//! | [`search`] | `observatory-search` | overlap measures, kNN, join discovery |
//! | [`serve`] | `observatory-serve` | embedding service: HTTP/1.1, micro-batching, admission control |
//! | [`runtime`] | `observatory-runtime` | embedding engine: cache, worker pool, metrics |
//! | [`store`] | `observatory-store` | persistent tier-2 embedding store: mmap segments + WAL |
//! | [`obs`] | `observatory-obs` | structured tracing: spans, collector, Chrome + Prometheus exporters |
//! | [`core`] | `observatory-core` | the eight properties, runner, reports, downstream tasks |
//!
//! ## Quickstart
//!
//! ```
//! use observatory::core::framework::{EvalContext, Property};
//! use observatory::core::props::row_order::RowOrderInsignificance;
//! use observatory::data::wikitables::WikiTablesConfig;
//!
//! // A small corpus, one model, one property.
//! let corpus = WikiTablesConfig { num_tables: 2, seed: 7, ..Default::default() }.generate();
//! let model = observatory::models::registry::model_by_name("bert").unwrap();
//! let prop = RowOrderInsignificance { max_permutations: 8 };
//! let ctx = EvalContext::default();
//! let report = prop.evaluate(model.as_ref(), &corpus, &ctx);
//! assert!(!report.records.is_empty());
//! ```

pub use observatory_core as core;
pub use observatory_data as data;
pub use observatory_fd as fd;
pub use observatory_linalg as linalg;
pub use observatory_models as models;
pub use observatory_obs as obs;
pub use observatory_runtime as runtime;
pub use observatory_search as search;
pub use observatory_serve as serve;
pub use observatory_stats as stats;
pub use observatory_store as store;
pub use observatory_table as table;
pub use observatory_tokenizer as tokenizer;
pub use observatory_transformer as transformer;
