//! `observatory` — command-line interface to the characterization
//! framework.
//!
//! ```text
//! observatory models                          list the model zoo (Table 1)
//! observatory properties                      list properties + scope (Table 2)
//! observatory characterize --property P1 --model bert [--csv t.csv]...
//! observatory mine-fds --csv table.csv [--max-error 0.05]
//! observatory serve --addr 127.0.0.1:7700 --max-batch 16
//! ```
//!
//! With no `--csv`, `characterize` runs on the built-in WikiTables-like
//! demo corpus. Argument parsing is deliberately hand-rolled — the
//! workspace keeps a zero-dependency runtime.

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::col_order::ColumnOrderInsignificance;
use observatory::core::props::fd::FunctionalDependencies;
use observatory::core::props::hetero_context::HeterogeneousContext;
use observatory::core::props::perturbation::PerturbationRobustness;
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::props::sample_fidelity::SampleFidelity;
use observatory::core::report::{render_report, render_table};
use observatory::core::scope;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::fd::approx::discover_approximate_unary_fds;
use observatory::models::registry::{model_by_name, specs, MODEL_NAMES};
use observatory::obs;
use observatory::runtime::{EmbeddingStore as _, EngineConfig};
use observatory::table::csv::parse_csv;
use observatory::table::Table;

fn main() {
    obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("properties") => cmd_properties(),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("mine-fds") => cmd_mine_fds(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!("observatory — characterize embeddings of relational tables\n");
    println!("USAGE:");
    println!("  observatory models");
    println!("  observatory properties");
    println!("  observatory characterize --property <P1..P8> [--model <name>]");
    println!("                           [--csv <file>]... [--seed <n>] [--permutations <n>]");
    println!("                           [--jobs <n>]       encode worker threads (also OBSERVATORY_JOBS)");
    println!("                           [--store-dir <dir>] persistent embedding store (reuses prior encodes)");
    println!("                           [--export <dir>]   write raw distributions as CSV");
    println!(
        "                           [--trace-out <file>]   Chrome trace-event JSON of the run"
    );
    println!(
        "                           [--metrics-out <file>] Prometheus text exposition of the run"
    );
    println!("  observatory mine-fds --csv <file> [--max-error <fraction>]");
    println!("  observatory serve [--addr <host:port>]    resident embedding service (HTTP/1.1)");
    println!("                    [--jobs <n>] [--max-batch <n>] [--batch-delay-us <n>]");
    println!("                    [--queue-depth <n>] [--deadline-ms <n>]");
    println!("                    [--net thread|epoll]  connection handling (default: epoll on");
    println!("                                          Linux — keep-alive + pipelining; thread");
    println!("                                          elsewhere)");
    println!(
        "                    [--net-shards <n>]   reactor event loops (default 0 = one per core)"
    );
    println!("                    [--max-jobs <n>]     analysis job queue bound (default 16)");
    println!(
        "                    [--job-deadline-ms <n>] default analysis deadline (default 300000)"
    );
    println!("                    [--store-dir <dir>]  persistent embedding store (warm restarts)");
    println!("                    [--ann-warm]         build the corpus ANN index from the store");
    println!(
        "                    [--ann-shards <n>]   HNSW shards for the corpus index (default 4)"
    );
    println!("                    [--trace-out <file>] [--metrics-out <file>]");
    println!("                    [--slow-ms <n>]      slow-request log threshold (default 1000)");
    println!("                    [--profile-out <file>] enable the span profiler; write folded");
    println!("                                           stacks here on drain");
    println!(
        "                    [--profile-interval-ms <n>] profiler sampling period (default 10)"
    );
    println!();
    println!("Without --csv, characterize uses a built-in demo corpus. See DESIGN.md");
    println!("for the full experiment harness (cargo run -p observatory-bench --bin ...).");
    println!();
    println!("OBSERVATORY_LOG=off|error|info|debug|trace controls span collection (default off;");
    println!("--trace-out raises it to at least debug so the trace is populated).");
    println!("OBSERVATORY_FLIGHT_DIR=<dir> makes the flight recorder dump a Chrome-trace JSON");
    println!("there on anomalies (shed / deadline / panic / quarantine).");
}

/// Extract every value of a repeatable `--flag value` option.
fn opt_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.windows(2).filter(|w| w[0] == flag).map(|w| w[1].as_str()).collect()
}

fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    opt_values(args, flag).into_iter().next()
}

/// Parse a numeric `--flag value`. A *malformed* value is a hard usage
/// error (the caller exits 2) — it must never be silently replaced by the
/// default, which would run the wrong experiment while looking correct.
fn parse_opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match opt_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw.parse::<T>().map_err(|_| format!("invalid value '{raw}' for {flag}")),
    }
}

/// Apply `--jobs` to the global engine. Must run before *any* code path
/// that encodes (or otherwise initializes the engine) — `configure_global`
/// is first-wins, so a late call would be silently ignored. Returns the
/// process exit code on a usage error.
fn init_engine_from_flags(args: &[String]) -> Result<(), i32> {
    match opt_value(args, "--jobs") {
        None => Ok(()), // engine defaults: OBSERVATORY_JOBS, else available cores
        Some(raw) => match raw.parse::<usize>() {
            Ok(jobs) if jobs >= 1 => {
                let config = EngineConfig { jobs, ..EngineConfig::from_env() };
                // Kernel-level (row/head) parallelism inside the encoder
                // follows the same setting; pool workers clamp it to 1.
                observatory::linalg::parallel::set_default_jobs(jobs);
                if !observatory::runtime::configure_global(config) {
                    eprintln!("note: engine already initialized; --jobs ignored");
                }
                Ok(())
            }
            _ => {
                eprintln!("invalid value '{raw}' for --jobs (expected an integer >= 1)");
                Err(2)
            }
        },
    }
}

/// Validate `--store-dir` without side effects. A trailing `--store-dir`
/// with no value is a usage error — silently running without persistence
/// would look correct while quietly re-encoding everything.
fn store_dir_from_flags(args: &[String]) -> Result<Option<&str>, i32> {
    match opt_value(args, "--store-dir") {
        Some(dir) => Ok(Some(dir)),
        None if args.last().is_some_and(|a| a == "--store-dir") => {
            eprintln!("--store-dir requires a directory argument");
            Err(2)
        }
        None => Ok(None),
    }
}

/// Open the persistent tier-2 store and attach it to the global engine.
/// Must run after `init_engine_from_flags` (the engine is first-wins) and
/// before the first encode, or warm-start reads would be missed.
fn attach_store(dir: &str) -> Result<(), i32> {
    let engine = observatory::runtime::global();
    match observatory::store::open_and_attach(std::path::Path::new(dir), &engine) {
        Ok(store) => {
            let t = store.tier_stats();
            println!(
                "store: {dir} ({} records, {} segments, generation {})",
                t.records, t.segments, t.generation
            );
            Ok(())
        }
        Err(e) => {
            eprintln!("cannot open store at {dir}: {e}");
            Err(1)
        }
    }
}

fn cmd_models() -> i32 {
    let rows: Vec<Vec<String>> = specs()
        .into_iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.display.to_string(),
                s.input.to_string(),
                s.output_embedding.to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&["name", "display", "input", "output embedding"], &rows));
    0
}

fn cmd_properties() -> i32 {
    let names = [
        ("P1", "Row order insignificance"),
        ("P2", "Column order insignificance"),
        ("P3", "Join relationship"),
        ("P4", "Functional dependencies"),
        ("P5", "Sample fidelity"),
        ("P6", "Entity stability (pairwise API)"),
        ("P7", "Perturbation robustness"),
        ("P8", "Heterogeneous context"),
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|(id, name)| {
            vec![
                id.to_string(),
                name.to_string(),
                scope::dataset_for(id).to_string(),
                scope::models_in_scope(id).join(", "),
            ]
        })
        .collect();
    print!("{}", render_table(&["id", "property", "dataset", "models in scope"], &rows));
    0
}

fn load_corpus(args: &[String]) -> Result<Vec<Table>, String> {
    let files = opt_values(args, "--csv");
    if files.is_empty() {
        let seed = parse_opt(args, "--seed", 42u64)?;
        return Ok(WikiTablesConfig { num_tables: 4, min_rows: 5, max_rows: 8, seed }.generate());
    }
    files
        .into_iter()
        .map(|path| {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_csv(path, &text).map_err(|e| format!("{path}: {e}"))
        })
        .collect()
}

fn cmd_characterize(args: &[String]) -> i32 {
    let property_id = match opt_value(args, "--property") {
        Some(p) => p.to_uppercase(),
        None => {
            eprintln!("characterize requires --property <P1|P2|P4|P5|P7|P8>");
            return 2;
        }
    };
    let model_name = opt_value(args, "--model").unwrap_or("bert");
    let Some(model) = model_by_name(model_name) else {
        eprintln!("unknown model '{model_name}'; valid: {}", MODEL_NAMES.join(", "));
        return 2;
    };
    if !scope::in_scope(&property_id, model_name) {
        eprintln!(
            "note: {model_name} is outside the paper's Table 2 scope for {property_id}; running anyway"
        );
    }
    // Usage errors (malformed flag values) are checked before any I/O so
    // they always exit 2; unreadable corpus files exit 1 below.
    let (perms, seed) = match (|| {
        Ok::<_, String>((
            parse_opt(args, "--permutations", 24usize)?,
            parse_opt(args, "--seed", 42u64)?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let store_dir = match store_dir_from_flags(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    // Engine init comes BEFORE anything that could touch the global
    // engine (corpus load, EvalContext construction): configuring after
    // first use would silently ignore --jobs (see configure_global).
    if let Err(code) = init_engine_from_flags(args) {
        return code;
    }
    // The store attaches right after: every encode below must see tier 2.
    if let Some(dir) = store_dir {
        if let Err(code) = attach_store(dir) {
            return code;
        }
    }
    let corpus = match load_corpus(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let trace_out = opt_value(args, "--trace-out").map(str::to_owned);
    let metrics_out = opt_value(args, "--metrics-out").map(str::to_owned);
    if trace_out.is_some() {
        // An empty trace file would be useless; make sure the property,
        // encode_batch and encode spans are actually collected.
        obs::raise_level(obs::Level::Debug);
    }
    let ctx = EvalContext::with_seed(seed);
    let started = std::time::Instant::now();

    let p1 = RowOrderInsignificance { max_permutations: perms };
    let p2 = ColumnOrderInsignificance { max_permutations: perms };
    let p4 = FunctionalDependencies::default();
    let p5 = SampleFidelity::default();
    let p7 = PerturbationRobustness::default();
    let p8 = HeterogeneousContext;
    let property: &dyn Property = match property_id.as_str() {
        "P1" => &p1,
        "P2" => &p2,
        "P4" => &p4,
        "P5" => &p5,
        "P7" => &p7,
        "P8" => &p8,
        "P3" | "P6" => {
            eprintln!(
                "{property_id} needs a specialized workload (join pairs / a model pair); \
                 use the bench harness: cargo run -p observatory-bench --bin table3_join_spearman \
                 or figure12_entity_stability"
            );
            return 2;
        }
        other => {
            eprintln!("unknown property '{other}'");
            return 2;
        }
    };
    let report = property.evaluate(model.as_ref(), &corpus, &ctx);
    if let Some(dir) = opt_value(args, "--export") {
        match observatory::core::export::write_bundle(
            std::path::Path::new(dir),
            std::slice::from_ref(&report),
        ) {
            Ok(n) => println!("exported {n} files to {dir}"),
            Err(e) => {
                eprintln!("export failed: {e}");
                return 1;
            }
        }
    }
    if report.records.is_empty() && report.scalars.is_empty() {
        println!(
            "{} produced no measurements for {} on this corpus (missing embedding level or \
             unmeasurable corpus)",
            property_id, model_name
        );
    } else {
        print!("{}", render_report(&report));
    }
    print_runtime_footer(&ctx.engine);
    if trace_out.is_some() || metrics_out.is_some() {
        let manifest = run_manifest(args, &property_id, model_name, perms, seed, &ctx, started);
        if let Err(e) = write_observability(&ctx.engine, &manifest, trace_out, metrics_out) {
            eprintln!("{e}");
            return 1;
        }
    }
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    use observatory::serve::{NetMode, ServeConfig, Server};
    // Usage errors first (exit 2), before any side effects.
    let (
        max_batch,
        batch_delay_us,
        queue_depth,
        deadline_ms,
        slow_ms,
        profile_interval_ms,
        max_jobs,
        job_deadline_ms,
    ) = match (|| {
        Ok::<_, String>((
            parse_opt(args, "--max-batch", 16usize)?,
            parse_opt(args, "--batch-delay-us", 2000u64)?,
            parse_opt(args, "--queue-depth", 256usize)?,
            parse_opt(args, "--deadline-ms", 5000u64)?,
            parse_opt(args, "--slow-ms", 1000u64)?,
            parse_opt(args, "--profile-interval-ms", 10u64)?,
            parse_opt(args, "--max-jobs", 16usize)?,
            parse_opt(args, "--job-deadline-ms", 300_000u64)?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if max_batch < 1 {
        eprintln!("invalid value '{max_batch}' for --max-batch (expected an integer >= 1)");
        return 2;
    }
    if queue_depth < 1 {
        eprintln!("invalid value '{queue_depth}' for --queue-depth (expected an integer >= 1)");
        return 2;
    }
    if max_jobs < 1 {
        eprintln!("invalid value '{max_jobs}' for --max-jobs (expected an integer >= 1)");
        return 2;
    }
    if job_deadline_ms < 1 {
        eprintln!(
            "invalid value '{job_deadline_ms}' for --job-deadline-ms (expected an integer >= 1)"
        );
        return 2;
    }
    if profile_interval_ms < 1 {
        eprintln!(
            "invalid value '{profile_interval_ms}' for --profile-interval-ms \
             (expected an integer >= 1)"
        );
        return 2;
    }
    // Like --store-dir: a trailing --profile-out must not silently run
    // without profiling when the user clearly asked for a profile.
    let profile_out = match opt_value(args, "--profile-out") {
        Some(path) => Some(path.to_owned()),
        None if args.last().is_some_and(|a| a == "--profile-out") => {
            eprintln!("--profile-out requires a file argument");
            return 2;
        }
        None => None,
    };
    let store_dir = match store_dir_from_flags(args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let ann_warm = args.iter().any(|a| a == "--ann-warm");
    let ann_shards = match parse_opt(args, "--ann-shards", 4usize) {
        Ok(n) if (1..=64).contains(&n) => n,
        Ok(n) => {
            eprintln!("invalid value '{n}' for --ann-shards (expected an integer in 1..=64)");
            return 2;
        }
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Net mode: the flag value is closed-set, so a typo is a usage
    // error — falling back to a default would silently bench the wrong
    // serving path.
    let net = match opt_value(args, "--net") {
        None => ServeConfig::default().net,
        Some(raw) => match NetMode::parse(raw) {
            Some(m) => m,
            None => {
                eprintln!("invalid value '{raw}' for --net (expected 'thread' or 'epoll')");
                return 2;
            }
        },
    };
    let net_shards = match parse_opt(args, "--net-shards", 0usize) {
        Ok(n) if n <= 64 => n,
        Ok(n) => {
            eprintln!("invalid value '{n}' for --net-shards (expected an integer in 0..=64)");
            return 2;
        }
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // A warm ANN index without a store would silently serve nothing:
    // refuse up front rather than answer corpus queries with 409 forever.
    if ann_warm && store_dir.is_none() {
        eprintln!("--ann-warm requires --store-dir (the index is built from store contents)");
        return 2;
    }
    // The serving engine is the global one, so --jobs must be applied
    // before the first encode — i.e. before the server starts.
    if let Err(code) = init_engine_from_flags(args) {
        return code;
    }
    // Job records and ingested tables live beside the embedding store,
    // so analysis results survive restarts whenever encodings do. The
    // `jobs/` name is outside the segment/WAL namespace the store scans.
    let jobs_dir = store_dir.map(|d| std::path::Path::new(d).join("jobs"));
    // Attach before bind: the serve manifest snapshots the store
    // generation, and the first admitted request must already hit tier 2.
    if let Some(dir) = store_dir {
        if let Err(code) = attach_store(dir) {
            return code;
        }
    }
    let trace_out = opt_value(args, "--trace-out").map(str::to_owned);
    let metrics_out = opt_value(args, "--metrics-out").map(str::to_owned);
    if trace_out.is_some() {
        obs::raise_level(obs::Level::Debug);
    }
    let config = ServeConfig {
        addr: opt_value(args, "--addr").unwrap_or("127.0.0.1:7700").to_string(),
        max_batch,
        batch_delay: std::time::Duration::from_micros(batch_delay_us),
        queue_depth,
        deadline: std::time::Duration::from_millis(deadline_ms),
        handle_signals: true,
        slow: std::time::Duration::from_millis(slow_ms),
        profile: profile_out.is_some(),
        profile_interval: std::time::Duration::from_millis(profile_interval_ms),
        ann_warm,
        ann_shards,
        max_jobs,
        job_deadline: std::time::Duration::from_millis(job_deadline_ms),
        jobs_dir,
        net,
        net_shards,
        ..ServeConfig::default()
    };
    let requested_addr = config.addr.clone();
    let engine = observatory::runtime::global();
    let server = match Server::bind(config, engine.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {requested_addr}: {e}");
            return 1;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            return 1;
        }
    };
    if let Some((items, shards, dim)) = server.ann_summary() {
        println!("ann_warm: hnsw corpus index ({items} items, {shards} shards, dim {dim})");
    }
    // The smoke harness and tests scrape this line for the (possibly
    // ephemeral) port, so it goes out before the accept loop starts.
    println!(
        "serving on http://{addr} (jobs={}, max_batch={max_batch}, batch_delay={batch_delay_us}us, \
         queue_depth={queue_depth}, deadline={deadline_ms}ms, net={})",
        engine.jobs(),
        net.as_str()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let stats = server.run();

    println!(
        "drained: {} requests ({} shed, {} expired, {} panics), {} batches \
         (mean {:.2}, max {}), uptime {:.1}s",
        stats.totals.requests,
        stats.totals.shed,
        stats.totals.expired,
        stats.totals.panics,
        stats.totals.batches,
        stats.totals.mean_batch(),
        stats.totals.max_batch,
        stats.uptime.as_secs_f64(),
    );
    println!(
        "connections: {} accepted, {} timed out (net={})",
        stats.totals.accepted,
        stats.totals.timeouts,
        net.as_str(),
    );
    println!(
        "jobs: {} submitted, {} done, {} failed, {} cancelled, {} lost",
        stats.jobs.submitted,
        stats.jobs.done,
        stats.jobs.failed,
        stats.jobs.cancelled,
        stats.jobs.outstanding(),
    );
    print_stage_quantiles(&stats.totals.stages);
    if let Some(report) = &stats.profile {
        println!(
            "\n-- profiler ({} samples @ {}ms) --",
            report.samples,
            report.interval.as_millis()
        );
        print!("{}", report.top);
        if let Some(path) = &profile_out {
            if let Err(e) = std::fs::write(path, &report.folded) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            println!("profile: {} samples -> {path}", report.samples);
        }
    }
    print_runtime_footer(&engine);
    if trace_out.is_some() || metrics_out.is_some() {
        let mut manifest = obs::Manifest::for_run();
        manifest
            .set("command", "serve")
            .set("addr", addr.to_string())
            .set("jobs", engine.jobs().to_string())
            .set("net", net.as_str())
            .set("max_batch", max_batch.to_string())
            .set("queue_depth", queue_depth.to_string())
            .set("requests", stats.totals.requests.to_string())
            .set("batches", stats.totals.batches.to_string())
            .set("wall_ms", stats.uptime.as_millis().to_string())
            .set("simd", observatory::linalg::simd::decision().describe());
        if let (Some(dir), Some(store)) = (store_dir, engine.store()) {
            manifest.set("store_dir", dir).set("store_generation", store.generation().to_string());
        }
        if let Err(e) = write_observability(&engine, &manifest, trace_out, metrics_out) {
            eprintln!("{e}");
            return 1;
        }
    }
    0
}

/// Provenance manifest for `--trace-out` / `--metrics-out`: enough to
/// reproduce the run and attribute its outputs.
fn run_manifest(
    args: &[String],
    property_id: &str,
    model_name: &str,
    perms: usize,
    seed: u64,
    ctx: &EvalContext,
    started: std::time::Instant,
) -> obs::Manifest {
    let csvs = opt_values(args, "--csv");
    let dataset = if csvs.is_empty() { "wikitables-demo".to_string() } else { csvs.join(",") };
    let mut manifest = obs::Manifest::for_run();
    manifest
        .set("command", "characterize")
        .set("property", property_id)
        .set("models", model_name)
        .set("dataset", &dataset)
        .set("seed", seed.to_string())
        .set("permutations", perms.to_string())
        .set("jobs", ctx.engine.jobs().to_string())
        .set("cache_capacity_bytes", ctx.engine.cache_stats().capacity.to_string())
        .set("simd", observatory::linalg::simd::decision().describe())
        .set("wall_ms", started.elapsed().as_millis().to_string());
    if let (Some(dir), Some(store)) = (opt_value(args, "--store-dir"), ctx.engine.store()) {
        manifest.set("store_dir", dir).set("store_generation", store.generation().to_string());
    }
    manifest
}

/// Drain the collected trace once and render whichever exports were
/// requested. The span aggregates fold into the Prometheus text, so both
/// outputs come from the same drain.
fn write_observability(
    engine: &observatory::runtime::Engine,
    manifest: &obs::Manifest,
    trace_out: Option<String>,
    metrics_out: Option<String>,
) -> Result<(), String> {
    let trace = obs::drain();
    if let Some(path) = trace_out {
        let text = obs::chrome_trace(&trace, manifest);
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace: {} spans -> {path}", trace.spans.len());
    }
    if let Some(path) = metrics_out {
        let text = observatory::runtime::prometheus_text(
            &engine.metrics_snapshot(),
            &engine.cache_stats(),
            manifest,
            Some(&trace),
        );
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics -> {path}");
    }
    Ok(())
}

/// Per-stage latency quantiles for the serve drain report, plus an
/// all-stages aggregate merged across the five histograms. Stage
/// durations are recorded in microseconds, so the ns-valued snapshot
/// percentiles divide straight back down.
fn print_stage_quantiles(
    stages: &[(&'static str, observatory::runtime::metrics::HistogramSnapshot)],
) {
    let recorded: Vec<_> = stages.iter().filter(|(_, h)| h.count > 0).collect();
    if recorded.is_empty() {
        return;
    }
    println!("stage timings, us (p50/p95/p99):");
    let mut merged = observatory::runtime::metrics::HistogramSnapshot::default();
    for (name, h) in &recorded {
        println!(
            "  {name:<11} {:>8.0} / {:>8.0} / {:>8.0}  ({} samples)",
            h.p50_ns() / 1_000.0,
            h.p95_ns() / 1_000.0,
            h.p99_ns() / 1_000.0,
            h.count,
        );
        merged.merge(h);
    }
    println!(
        "  {:<11} {:>8.0} / {:>8.0} / {:>8.0}  ({} samples)",
        "all-stages",
        merged.p50_ns() / 1_000.0,
        merged.p95_ns() / 1_000.0,
        merged.p99_ns() / 1_000.0,
        merged.count,
    );
}

/// Post-run engine report: encode/cache counters, latency, cache bytes,
/// SIMD dispatch tier and workspace-pool effectiveness.
fn print_runtime_footer(engine: &observatory::runtime::Engine) {
    let snapshot = engine.metrics_snapshot();
    let cache = engine.cache_stats();
    println!("\n-- runtime ({} jobs) --", engine.jobs());
    print!("{}", snapshot.render());
    println!(
        "cache: {} live entries, {:.1} MiB used / {:.0} MiB capacity, {} evictions",
        cache.entries,
        cache.bytes as f64 / (1 << 20) as f64,
        cache.capacity as f64 / (1 << 20) as f64,
        cache.evictions,
    );
    // Tier-2 persistence, when attached: render() above already printed
    // hit/miss counters; this line is the on-disk inventory.
    if let Some(store) = engine.store() {
        let t = store.tier_stats();
        println!(
            "store: {} records, {} segments ({:.1} MiB) + {:.1} KiB WAL, generation {}",
            t.records,
            t.segments,
            t.segment_bytes as f64 / (1 << 20) as f64,
            t.wal_bytes as f64 / 1024.0,
            t.generation,
        );
    }
    let kernels = observatory::linalg::kernels::stats::snapshot();
    if kernels.total_calls() > 0 {
        println!("kernels: {}", kernels.render());
    }
    println!("simd: {}", observatory::linalg::simd::decision().describe());
    // Span records silently discarded once the collector cap is hit.
    // Anything nonzero means traces/profiles from this run have holes.
    let dropped = obs::dropped_total();
    if dropped > 0 {
        println!(
            "warning: observability collector dropped {dropped} span records (ring full); \
             traces and profiles are incomplete"
        );
    }
    // Main-thread view of the scratch pool; worker threads each keep
    // their own (per-thread free-lists, no shared state to sample).
    let ws = observatory::linalg::workspace::stats();
    if ws.hits + ws.misses > 0 {
        println!(
            "workspace: {} hits / {} misses, {:.1} MiB held in {} buffers (main thread)",
            ws.hits,
            ws.misses,
            ws.held_bytes as f64 / (1 << 20) as f64,
            ws.held_bufs,
        );
    }
}

fn cmd_mine_fds(args: &[String]) -> i32 {
    // Usage errors first (exit 2), I/O errors after (exit 1).
    let max_error: f64 = match parse_opt(args, "--max-error", 0.0) {
        Ok(v) if (0.0..=1.0).contains(&v) => v,
        Ok(v) => {
            eprintln!("invalid value '{v}' for --max-error (expected a fraction in [0, 1])");
            return 2;
        }
        Err(e) => {
            eprintln!("{e} (expected a fraction in [0, 1])");
            return 2;
        }
    };
    if let Err(e) = parse_opt::<u64>(args, "--seed", 42) {
        eprintln!("{e}");
        return 2;
    }
    let corpus = match load_corpus(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    for table in &corpus {
        println!("## {}", table.name);
        let fds = discover_approximate_unary_fds(table, max_error);
        if fds.is_empty() {
            println!("(no unary dependencies at g3 ≤ {max_error})\n");
            continue;
        }
        let rows: Vec<Vec<String>> = fds
            .iter()
            .map(|a| {
                vec![
                    table.columns[a.fd.determinant].header.clone(),
                    table.columns[a.fd.dependent].header.clone(),
                    format!("{:.4}", a.g3),
                ]
            })
            .collect();
        print!("{}", render_table(&["determinant", "dependent", "g3 error"], &rows));
        println!();
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opt_parsing() {
        let a = args(&["--csv", "a.csv", "--seed", "7", "--csv", "b.csv"]);
        assert_eq!(opt_values(&a, "--csv"), vec!["a.csv", "b.csv"]);
        assert_eq!(opt_value(&a, "--seed"), Some("7"));
        assert_eq!(opt_value(&a, "--nope"), None);
    }

    #[test]
    fn demo_corpus_loads_without_csv() {
        let corpus = load_corpus(&args(&["--seed", "3"])).unwrap();
        assert_eq!(corpus.len(), 4);
    }

    #[test]
    fn missing_csv_is_an_error() {
        assert!(load_corpus(&args(&["--csv", "/nonexistent/x.csv"])).is_err());
    }

    #[test]
    fn parse_opt_uses_default_only_when_absent() {
        let a = args(&["--permutations", "8"]);
        assert_eq!(parse_opt(&a, "--permutations", 24usize), Ok(8));
        assert_eq!(parse_opt(&a, "--seed", 42u64), Ok(42));
    }

    #[test]
    fn parse_opt_rejects_malformed_values() {
        // The old behaviour silently fell back to the default; malformed
        // values must now surface as usage errors.
        for bad in ["abc", "12x", "", "-3"] {
            let a = args(&["--permutations", bad]);
            let r = parse_opt::<usize>(&a, "--permutations", 24);
            assert!(r.is_err(), "'{bad}' must be rejected, got {r:?}");
            assert!(r.unwrap_err().contains("--permutations"));
        }
        let a = args(&["--max-error", "zero"]);
        assert!(parse_opt::<f64>(&a, "--max-error", 0.0).is_err());
        let a = args(&["--seed", "4.5"]);
        assert!(parse_opt::<u64>(&a, "--seed", 42).is_err());
    }

    #[test]
    fn malformed_seed_fails_corpus_load() {
        let err = load_corpus(&args(&["--seed", "notanumber"])).unwrap_err();
        assert!(err.contains("--seed"));
    }

    #[test]
    fn malformed_flags_are_usage_errors_exit_2() {
        // Every malformed numeric flag must be a hard usage error (exit
        // code 2) on both subcommands, checked before any work happens.
        assert_eq!(cmd_characterize(&args(&["--property", "P1", "--seed", "xyz"])), 2);
        assert_eq!(cmd_characterize(&args(&["--property", "P1", "--permutations", "many"])), 2);
        assert_eq!(cmd_characterize(&args(&["--property", "P1", "--jobs", "0"])), 2);
        assert_eq!(cmd_characterize(&args(&["--property", "P1", "--jobs", "two"])), 2);
        assert_eq!(cmd_mine_fds(&args(&["--max-error", "lots"])), 2);
        assert_eq!(cmd_mine_fds(&args(&["--max-error", "2.0"])), 2, "out of [0,1] range");
        assert_eq!(cmd_mine_fds(&args(&["--seed", "x"])), 2);
    }

    #[test]
    fn malformed_serve_observability_flags_are_exit_2() {
        // The new tracing/profiling knobs follow the same convention as
        // every other numeric flag: malformed values are usage errors,
        // caught before the server binds anything.
        assert_eq!(cmd_serve(&args(&["--slow-ms", "fast"])), 2);
        assert_eq!(cmd_serve(&args(&["--profile-interval-ms", "often"])), 2);
        assert_eq!(cmd_serve(&args(&["--profile-interval-ms", "0"])), 2);
        assert_eq!(cmd_serve(&args(&["--profile-out"])), 2, "trailing --profile-out");
    }

    #[test]
    fn malformed_net_flags_are_exit_2() {
        // --net is a closed set and --net-shards is bounded; both are
        // usage errors caught before the server binds anything.
        assert_eq!(cmd_serve(&args(&["--net", "uring"])), 2);
        assert_eq!(cmd_serve(&args(&["--net", "EPOLL"])), 2, "flag values are case-sensitive");
        assert_eq!(cmd_serve(&args(&["--net-shards", "many"])), 2);
        assert_eq!(cmd_serve(&args(&["--net-shards", "65"])), 2, "out of 0..=64");
    }

    #[test]
    fn malformed_job_flags_are_exit_2() {
        // The analysis-job knobs follow the same usage-error convention,
        // caught before the server binds anything.
        assert_eq!(cmd_serve(&args(&["--max-jobs", "0"])), 2);
        assert_eq!(cmd_serve(&args(&["--max-jobs", "lots"])), 2);
        assert_eq!(cmd_serve(&args(&["--job-deadline-ms", "0"])), 2);
        assert_eq!(cmd_serve(&args(&["--job-deadline-ms", "soon"])), 2);
    }

    #[test]
    fn store_dir_without_value_is_exit_2() {
        // A trailing --store-dir must be a usage error on both commands,
        // not a silent run without persistence.
        assert_eq!(cmd_characterize(&args(&["--property", "P1", "--store-dir"])), 2);
        assert_eq!(cmd_serve(&args(&["--store-dir"])), 2);
        let a = args(&["--store-dir", "somewhere", "--seed", "1"]);
        assert_eq!(store_dir_from_flags(&a), Ok(Some("somewhere")));
        assert_eq!(store_dir_from_flags(&args(&["--seed", "1"])), Ok(None));
    }

    #[test]
    fn unopenable_store_dir_is_exit_1() {
        // The store root collides with a regular file: an I/O error (1),
        // distinct from usage (2). Checked via attach_store directly so
        // the failure never attaches anything to the global engine.
        let path = std::env::temp_dir().join(format!("obs-store-clash-{}", std::process::id()));
        std::fs::write(&path, b"not a directory").unwrap();
        assert_eq!(attach_store(path.to_str().unwrap()), Err(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_csv_is_exit_1_not_2() {
        // I/O failures are runtime errors (1), distinct from usage (2).
        let a = args(&["--property", "P1", "--csv", "/nonexistent/x.csv"]);
        assert_eq!(cmd_characterize(&a), 1);
        assert_eq!(cmd_mine_fds(&args(&["--csv", "/nonexistent/x.csv"])), 1);
    }
}
