//! `observatory` — command-line interface to the characterization
//! framework.
//!
//! ```text
//! observatory models                          list the model zoo (Table 1)
//! observatory properties                      list properties + scope (Table 2)
//! observatory characterize --property P1 --model bert [--csv t.csv]...
//! observatory mine-fds --csv table.csv [--max-error 0.05]
//! ```
//!
//! With no `--csv`, `characterize` runs on the built-in WikiTables-like
//! demo corpus. Argument parsing is deliberately hand-rolled — the
//! workspace keeps a zero-dependency runtime.

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::col_order::ColumnOrderInsignificance;
use observatory::core::props::fd::FunctionalDependencies;
use observatory::core::props::hetero_context::HeterogeneousContext;
use observatory::core::props::perturbation::PerturbationRobustness;
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::props::sample_fidelity::SampleFidelity;
use observatory::core::report::{render_report, render_table};
use observatory::core::scope;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::fd::approx::discover_approximate_unary_fds;
use observatory::models::registry::{model_by_name, specs, MODEL_NAMES};
use observatory::table::csv::parse_csv;
use observatory::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("properties") => cmd_properties(),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("mine-fds") => cmd_mine_fds(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!("observatory — characterize embeddings of relational tables\n");
    println!("USAGE:");
    println!("  observatory models");
    println!("  observatory properties");
    println!("  observatory characterize --property <P1..P8> [--model <name>]");
    println!("                           [--csv <file>]... [--seed <n>] [--permutations <n>]");
    println!("                           [--export <dir>]   write raw distributions as CSV");
    println!("  observatory mine-fds --csv <file> [--max-error <fraction>]");
    println!();
    println!("Without --csv, characterize uses a built-in demo corpus. See DESIGN.md");
    println!("for the full experiment harness (cargo run -p observatory-bench --bin ...).");
}

/// Extract every value of a repeatable `--flag value` option.
fn opt_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].as_str())
        .collect()
}

fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    opt_values(args, flag).into_iter().next()
}

fn cmd_models() -> i32 {
    let rows: Vec<Vec<String>> = specs()
        .into_iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.display.to_string(),
                s.input.to_string(),
                s.output_embedding.to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&["name", "display", "input", "output embedding"], &rows));
    0
}

fn cmd_properties() -> i32 {
    let names = [
        ("P1", "Row order insignificance"),
        ("P2", "Column order insignificance"),
        ("P3", "Join relationship"),
        ("P4", "Functional dependencies"),
        ("P5", "Sample fidelity"),
        ("P6", "Entity stability (pairwise API)"),
        ("P7", "Perturbation robustness"),
        ("P8", "Heterogeneous context"),
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|(id, name)| {
            vec![
                id.to_string(),
                name.to_string(),
                scope::dataset_for(id).to_string(),
                scope::models_in_scope(id).join(", "),
            ]
        })
        .collect();
    print!("{}", render_table(&["id", "property", "dataset", "models in scope"], &rows));
    0
}

fn load_corpus(args: &[String]) -> Result<Vec<Table>, String> {
    let files = opt_values(args, "--csv");
    if files.is_empty() {
        let seed = opt_value(args, "--seed").map_or(Ok(42), str::parse).map_err(|_| "--seed must be an integer".to_string())?;
        return Ok(WikiTablesConfig { num_tables: 4, min_rows: 5, max_rows: 8, seed }.generate());
    }
    files
        .into_iter()
        .map(|path| {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_csv(path, &text).map_err(|e| format!("{path}: {e}"))
        })
        .collect()
}

fn cmd_characterize(args: &[String]) -> i32 {
    let property_id = match opt_value(args, "--property") {
        Some(p) => p.to_uppercase(),
        None => {
            eprintln!("characterize requires --property <P1|P2|P4|P5|P7|P8>");
            return 2;
        }
    };
    let model_name = opt_value(args, "--model").unwrap_or("bert");
    let Some(model) = model_by_name(model_name) else {
        eprintln!("unknown model '{model_name}'; valid: {}", MODEL_NAMES.join(", "));
        return 2;
    };
    if !scope::in_scope(&property_id, model_name) {
        eprintln!(
            "note: {model_name} is outside the paper's Table 2 scope for {property_id}; running anyway"
        );
    }
    let corpus = match load_corpus(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let perms: usize = opt_value(args, "--permutations")
        .map_or(Ok(24), str::parse)
        .unwrap_or(24);
    let seed = opt_value(args, "--seed").map_or(Ok(42), str::parse).unwrap_or(42);
    let ctx = EvalContext { seed };

    let p1 = RowOrderInsignificance { max_permutations: perms };
    let p2 = ColumnOrderInsignificance { max_permutations: perms };
    let p4 = FunctionalDependencies::default();
    let p5 = SampleFidelity::default();
    let p7 = PerturbationRobustness::default();
    let p8 = HeterogeneousContext;
    let property: &dyn Property = match property_id.as_str() {
        "P1" => &p1,
        "P2" => &p2,
        "P4" => &p4,
        "P5" => &p5,
        "P7" => &p7,
        "P8" => &p8,
        "P3" | "P6" => {
            eprintln!(
                "{property_id} needs a specialized workload (join pairs / a model pair); \
                 use the bench harness: cargo run -p observatory-bench --bin table3_join_spearman \
                 or figure12_entity_stability"
            );
            return 2;
        }
        other => {
            eprintln!("unknown property '{other}'");
            return 2;
        }
    };
    let report = property.evaluate(model.as_ref(), &corpus, &ctx);
    if let Some(dir) = opt_value(args, "--export") {
        match observatory::core::export::write_bundle(std::path::Path::new(dir), std::slice::from_ref(&report)) {
            Ok(n) => println!("exported {n} files to {dir}"),
            Err(e) => {
                eprintln!("export failed: {e}");
                return 1;
            }
        }
    }
    if report.records.is_empty() && report.scalars.is_empty() {
        println!(
            "{} produced no measurements for {} on this corpus (missing embedding level or \
             unmeasurable corpus)",
            property_id, model_name
        );
    } else {
        print!("{}", render_report(&report));
    }
    0
}

fn cmd_mine_fds(args: &[String]) -> i32 {
    let corpus = match load_corpus(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let max_error: f64 = opt_value(args, "--max-error").map_or(Ok(0.0), str::parse).unwrap_or(0.0);
    for table in &corpus {
        println!("## {}", table.name);
        let fds = discover_approximate_unary_fds(table, max_error);
        if fds.is_empty() {
            println!("(no unary dependencies at g3 ≤ {max_error})\n");
            continue;
        }
        let rows: Vec<Vec<String>> = fds
            .iter()
            .map(|a| {
                vec![
                    table.columns[a.fd.determinant].header.clone(),
                    table.columns[a.fd.dependent].header.clone(),
                    format!("{:.4}", a.g3),
                ]
            })
            .collect();
        print!("{}", render_table(&["determinant", "dependent", "g3 error"], &rows));
        println!();
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opt_parsing() {
        let a = args(&["--csv", "a.csv", "--seed", "7", "--csv", "b.csv"]);
        assert_eq!(opt_values(&a, "--csv"), vec!["a.csv", "b.csv"]);
        assert_eq!(opt_value(&a, "--seed"), Some("7"));
        assert_eq!(opt_value(&a, "--nope"), None);
    }

    #[test]
    fn demo_corpus_loads_without_csv() {
        let corpus = load_corpus(&args(&["--seed", "3"])).unwrap();
        assert_eq!(corpus.len(), 4);
    }

    #[test]
    fn missing_csv_is_an_error() {
        assert!(load_corpus(&args(&["--csv", "/nonexistent/x.csv"])).is_err());
    }
}
