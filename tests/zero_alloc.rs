//! Steady-state encoder forwards perform **zero heap allocations**.
//!
//! The workspace pool (`observatory_linalg::workspace`) exists so that
//! the serial (`jobs = 1`) encode hot path stops paying allocator
//! overhead: every scratch buffer — attention score blocks, repacked
//! GEMM panels, softmax rows, per-layer intermediates — is taken from a
//! per-thread free-list and returned after use. After a short warmup
//! (first encode sizes the pool, second proves the sizes recur) an
//! encode must hit the pool for every request.
//!
//! This is asserted with a counting `#[global_allocator]`: the test
//! wraps `System` and counts `alloc` / `alloc_zeroed` / `realloc`
//! calls, then requires the count delta across a steady-state encode to
//! be exactly zero. The test lives in its own integration-test binary
//! because a global allocator is a per-binary property.
//!
//! Scope: the guarantee covers the *serial* path only. The parallel
//! path spawns scoped worker threads whose stacks and per-block buffers
//! inherently allocate; DESIGN.md §11 documents that boundary.

use observatory::linalg::{parallel, workspace};
use observatory::transformer::{Encoder, TokenInput, TransformerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// The allocation counter and the default-jobs knob are both
// process-global, so the tests in this binary must not overlap: a
// concurrent test's allocations would land inside another's
// before/after window.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn steady_state_encode_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap();
    parallel::set_default_jobs(1);
    let seq = 64usize;
    let encoder = Encoder::new(TransformerConfig {
        dim: 32,
        n_heads: 4,
        n_layers: 2,
        ffn_dim: 64,
        max_len: seq,
        vocab_size: 128,
        seed_label: "zero-alloc".into(),
        ..Default::default()
    });
    let tokens: Vec<TokenInput> = (0..seq).map(|i| TokenInput::plain((i % 128) as u32)).collect();

    // Warmup: the first encode sizes every pooled buffer, the next ones
    // prove the sizes recur. The produced embedding matrix is recycled
    // back into the pool between iterations — exactly what the runtime
    // engine does with per-request intermediates.
    for _ in 0..3 {
        let out = encoder.encode(&tokens);
        workspace::recycle_matrix(out);
    }

    let stats_before = workspace::stats();
    let before = alloc_count();
    let out = encoder.encode(&tokens);
    let after = alloc_count();
    let stats_after = workspace::stats();
    workspace::recycle_matrix(out);
    parallel::set_default_jobs(0);

    assert_eq!(
        after - before,
        0,
        "steady-state serial encode must perform zero heap allocations \
         (pool hits {} -> {}, misses {} -> {})",
        stats_before.hits,
        stats_after.hits,
        stats_before.misses,
        stats_after.misses,
    );
    // And the encode really did go through the pool, not around it.
    assert!(
        stats_after.hits > stats_before.hits,
        "encode must draw its scratch from the workspace pool"
    );
    assert_eq!(stats_after.misses, stats_before.misses, "steady state must not miss the pool");
}

/// Changing the sequence length after warmup is allowed to grow the pool
/// once — and must then be allocation-free again at the new shape.
#[test]
fn shape_change_stabilizes_after_one_encode() {
    let _serial = SERIAL.lock().unwrap();
    parallel::set_default_jobs(1);
    let encoder = Encoder::new(TransformerConfig {
        dim: 32,
        n_heads: 4,
        n_layers: 2,
        ffn_dim: 64,
        max_len: 96,
        vocab_size: 128,
        seed_label: "zero-alloc-shapes".into(),
        ..Default::default()
    });
    let short: Vec<TokenInput> = (0..24).map(|i| TokenInput::plain(i % 128)).collect();
    let long: Vec<TokenInput> = (0..96).map(|i| TokenInput::plain(i % 128)).collect();
    for _ in 0..3 {
        let out = encoder.encode(&short);
        workspace::recycle_matrix(out);
    }
    // First long encode may allocate (buffers grow once)...
    let out = encoder.encode(&long);
    workspace::recycle_matrix(out);
    let out = encoder.encode(&long);
    workspace::recycle_matrix(out);
    // ...then the new shape is steady state too.
    let before = alloc_count();
    let out = encoder.encode(&long);
    let after = alloc_count();
    workspace::recycle_matrix(out);
    parallel::set_default_jobs(0);
    assert_eq!(after - before, 0, "re-grown pool must serve the new shape without allocating");
}
