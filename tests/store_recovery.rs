//! Crash-safety test for the persistent embedding store, against the
//! real binary: `kill -9` a serving process mid-write-stream, reopen the
//! store directory, and require that **every acknowledged record** is
//! readable, checksum-verified, and bit-identical to a reference encode.
//!
//! The acknowledgement contract under test: the server answers 200 only
//! after the record's WAL `write(2)` has returned, so a SIGKILL at any
//! instant may lose at most the in-flight (unacked) tail — never an
//! acked one. Two kill cycles run back-to-back so the second recovery
//! starts from an already-recovered directory (WAL rewrite + rotated
//! segments), and a tiny `OBSERVATORY_STORE_ROTATE_BYTES` forces the
//! full rotation protocol (frozen WAL → segment → retire) to be in
//! flight when the process dies.

#![cfg(unix)]

use observatory::models::registry::model_by_name;
use observatory::runtime::{fingerprint_table, EmbeddingStore, Engine, EngineConfig};
use observatory::serve::api;
use observatory::store::{MmapStore, StoreConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn embed_body(round: usize, tag: usize) -> String {
    format!(
        r#"{{"model":"bert","level":"column","id":"r{round}-t{tag}",
            "table":{{"name":"crash-r{round}-t{tag}","columns":[
              {{"header":"id","values":[{},{},{}]}},
              {{"header":"name","values":["a-{tag}","b-{tag}","c-{tag}"]}}]}}}}"#,
        tag * 3 + 1,
        tag * 3 + 2,
        tag * 3 + 3,
    )
}

fn spawn_serve(store_dir: &std::path::Path) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_observatory"));
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(["--store-dir", store_dir.to_str().unwrap()])
        // ~3 records per rotation: the kill lands with segments and a
        // frozen WAL in play, not just an append-only log.
        .env("OBSERVATORY_STORE_ROTATE_BYTES", "16384");
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    // The banner line with the resolved address follows the store line.
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read banner") > 0, "no banner before EOF");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().expect("address in banner").to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.into_inner().read_to_string(&mut sink);
    });
    (child, addr)
}

/// One embed over a fresh connection. `Ok(true)` = acked (200).
fn post_embed(addr: &str, body: &str) -> std::io::Result<bool> {
    let mut s = std::net::TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    s.write_all(
        format!(
            "POST /v1/embed HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)?;
    Ok(buf.split_whitespace().nth(1) == Some("200"))
}

#[test]
fn kill_nine_mid_write_loses_no_acked_record() {
    let dir = std::env::temp_dir().join(format!("obs-store-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Two crash cycles: the second opens (and rewrites) a directory the
    // first already left mid-flight.
    let mut acked: Vec<(usize, usize)> = Vec::new();
    for round in 0..2usize {
        let (mut child, addr) = spawn_serve(&dir);
        let pid = child.id().to_string();
        // The assassin fires while the write stream below is running.
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            let _ = Command::new("kill").args(["-9", &pid]).status();
        });
        for tag in 0..10_000usize {
            match post_embed(&addr, &embed_body(round, tag)) {
                Ok(true) => acked.push((round, tag)),
                // Non-200 (e.g. shed during drain) — not acked, keep going.
                Ok(false) => {}
                // Connection refused/reset: the process is dead.
                Err(_) => break,
            }
        }
        killer.join().unwrap();
        let status = child.wait().expect("reap killed server");
        assert!(!status.success(), "SIGKILL must not look like a clean exit");
    }
    assert!(
        acked.len() >= 10,
        "test needs a meaningful acked stream before the kill, got {}",
        acked.len()
    );

    // Recovery: reopening the crashed directory must succeed, and every
    // acked record must decode, CRC-clean and bit-identical to a serial
    // uncached reference encode of the same table.
    let store = MmapStore::open(StoreConfig::new(dir.clone())).expect("recover crashed store");
    let stats = store.tier_stats();
    assert!(
        stats.records as usize >= acked.len(),
        "recovered {} records < {} acked",
        stats.records,
        acked.len()
    );
    let reference = Engine::new(EngineConfig::serial_uncached());
    let model = model_by_name("bert").unwrap();
    for &(round, tag) in &acked {
        let req = api::parse_embed(&embed_body(round, tag)).unwrap();
        let fp = fingerprint_table(model.name(), &req.table);
        let got = store
            .load(fp)
            .unwrap_or_else(|| panic!("acked record r{round}-t{tag} lost by kill -9"));
        let want = reference.encode_table(model.as_ref(), &req.table);
        let bits = |m: &observatory::linalg::Matrix| {
            m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(
            bits(&got.embeddings),
            bits(&want.embeddings),
            "r{round}-t{tag} corrupted across crash recovery"
        );
    }
    assert_eq!(store.tier_stats().read_errors, 0, "no CRC failures while reading acked records");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
