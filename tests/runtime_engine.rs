//! Integration tests for the embedding engine (`observatory-runtime`):
//! cross-thread determinism for every registry model, cache hit-rate on
//! repeated-encode workloads, and metrics invariants after a real
//! property run.
//!
//! Every test builds *private* `Engine` instances so results never depend
//! on the process-global engine's cache contents or on test ordering.

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::models::registry::all_models;
use observatory::runtime::{Engine, EngineConfig};
use observatory::table::Table;
use std::sync::Arc;

fn corpus(n: usize) -> Vec<Table> {
    WikiTablesConfig { num_tables: n, min_rows: 5, max_rows: 7, seed: 42 }.generate()
}

/// The tentpole guarantee: for every model in the registry, `encode_batch`
/// at jobs=4 equals jobs=1 equals a direct serial `encode_table` loop —
/// exact `f64` equality, not approximate.
#[test]
fn parallel_encoding_is_bit_identical_to_serial_for_every_model() {
    let tables = corpus(4);
    for model in all_models() {
        // Reference: the raw encoder, no engine at all.
        let reference: Vec<_> = tables.iter().map(|t| model.encode_table(t)).collect();
        for jobs in [1usize, 4] {
            let engine = Engine::new(EngineConfig { jobs, cache_bytes: 0 });
            let out = engine.encode_batch(model.as_ref(), &tables);
            assert_eq!(out.len(), reference.len());
            for (i, (got, want)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.as_ref(),
                    want,
                    "model {} table {i} jobs={jobs}: engine result differs from direct encode",
                    model.name()
                );
            }
        }
    }
}

/// Cached replays are the *same* result (shared `Arc`), so caching can
/// never change a measure's value.
#[test]
fn cache_replays_are_pointer_identical() {
    let tables = corpus(3);
    let model = observatory::models::registry::model_by_name("bert").unwrap();
    let engine = Engine::new(EngineConfig { jobs: 2, cache_bytes: 64 << 20 });
    let first = engine.encode_batch(model.as_ref(), &tables);
    let second = engine.encode_batch(model.as_ref(), &tables);
    for (a, b) in first.iter().zip(&second) {
        assert!(Arc::ptr_eq(a, b), "replay must come from the cache");
    }
}

/// The repeated-encode workload of the acceptance criteria: re-running the
/// same corpus through the engine must exceed a 90% hit rate.
#[test]
fn repeated_workload_exceeds_ninety_percent_hit_rate() {
    let tables = corpus(5);
    let model = observatory::models::registry::model_by_name("bert").unwrap();
    let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 64 << 20 });
    for _ in 0..20 {
        engine.encode_batch(model.as_ref(), &tables);
    }
    let stats = engine.cache_stats();
    assert!(
        stats.hit_rate() > 0.9,
        "hit rate {:.3} on a 20× repeated workload (hits {}, misses {})",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
}

/// Metrics invariants after a real property evaluation (P1 on the demo
/// corpus): lookups balance, histograms count every encode, and the
/// per-model table attributes all of them.
#[test]
fn metrics_invariants_hold_after_property_run() {
    let engine = Arc::new(Engine::new(EngineConfig { jobs: 2, cache_bytes: 64 << 20 }));
    let ctx = EvalContext::with_engine(Arc::clone(&engine));
    let model = observatory::models::registry::model_by_name("bert").unwrap();
    let prop = RowOrderInsignificance { max_permutations: 6 };
    let report = prop.evaluate(model.as_ref(), &corpus(3), &ctx);
    assert!(!report.records.is_empty());

    let snap = engine.metrics_snapshot();
    assert!(snap.encodes > 0, "the property must have encoded something");
    assert_eq!(snap.lookups(), snap.cache_hits + snap.cache_misses);
    assert_eq!(snap.encodes, snap.cache_misses, "every miss encodes, every hit skips");
    assert_eq!(snap.encode_latency.count, snap.encodes, "histogram counts every encode");
    let per_model: u64 = snap.per_model.values().map(|m| m.encodes).sum();
    assert_eq!(per_model, snap.encodes, "per-model table attributes every encode");
    assert!(snap.per_model.contains_key("bert"));

    let stats = engine.cache_stats();
    assert_eq!(stats.hits, snap.cache_hits);
    assert_eq!(stats.misses, snap.cache_misses);
}

/// Property evaluations are engine-invariant: any jobs count and cache
/// size produces byte-identical reports (the CLI's `--jobs` contract).
#[test]
fn property_reports_identical_across_engine_configs() {
    let tables = corpus(3);
    let model = observatory::models::registry::model_by_name("turl").unwrap();
    let prop = RowOrderInsignificance { max_permutations: 8 };
    let configs =
        [EngineConfig { jobs: 1, cache_bytes: 0 }, EngineConfig { jobs: 4, cache_bytes: 64 << 20 }];
    let reports: Vec<_> = configs
        .iter()
        .map(|cfg| {
            let ctx = EvalContext::with_engine(Arc::new(Engine::new(cfg.clone())));
            prop.evaluate(model.as_ref(), &tables, &ctx)
        })
        .collect();
    assert!(!reports[0].records.is_empty());
    assert_eq!(reports[0].records.len(), reports[1].records.len());
    for (a, b) in reports[0].records.iter().zip(&reports[1].records) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.values.len(), b.values.len());
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "exact f64 equality in '{}'", a.label);
        }
    }
}
