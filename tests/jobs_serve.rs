//! End-to-end test of the characterization job service, against the
//! real binary: ingest a CSV over `POST /v1/tables`, analyze it over
//! `POST /v1/analyze`, poll the job to completion, and require that
//!
//! - the served result's measures are **bit-identical** to an offline
//!   `observatory characterize --export` run over the same CSV with the
//!   same seed/permutations (the serve-vs-CLI determinism guarantee,
//!   across process boundaries);
//! - a queued job can be cancelled via `DELETE /v1/jobs/<id>` and lands
//!   in the `cancelled` state with its result answering 409;
//! - an already-expired deadline fails the job with a deadline error;
//! - clean shutdown drains the scheduler and the drain report accounts
//!   for every admitted job (`0 lost`).

#![cfg(unix)]

use observatory::obs::json::{parse as jparse, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// Boot `observatory serve` with the given extra args and scrape the
/// bound address from the banner. The stdout reader is returned so the
/// caller decides whether to drain it in a thread or keep it to inspect
/// the shutdown report.
fn spawn_serve(extra: &[&str]) -> (Child, String, BufReader<ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_observatory"));
    cmd.arg("serve").args(["--addr", "127.0.0.1:0"]).args(extra);
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read banner") > 0, "no banner before EOF");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().expect("address in banner").to_string();
        }
    };
    (child, addr, reader)
}

/// One request over a fresh connection; returns (status, body).
fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    s.write_all(head.as_bytes()).expect("write request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let status: u16 = buf.split_whitespace().nth(1).expect("status line").parse().expect("status");
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn jget(addr: &str, path: &str) -> (u16, Json) {
    let (status, body) = request(addr, "GET", path, &[], "");
    (status, jparse(&body).unwrap_or_else(|e| panic!("bad json from {path}: {e}\n{body}")))
}

/// Ingest a CSV under the given table name; returns the table id.
fn ingest_csv(addr: &str, name: &str, csv: &str) -> String {
    let (status, body) = request(
        addr,
        "POST",
        "/v1/tables",
        &[("Content-Type", "text/csv"), ("x-table-name", name)],
        csv,
    );
    assert!(status == 201 || status == 200, "ingest: {status} {body}");
    jparse(&body)
        .expect("ingest json")
        .get("id")
        .and_then(Json::as_str)
        .expect("table id")
        .to_string()
}

/// Submit an analyze request; returns (status, body-json).
fn analyze(addr: &str, body: &str) -> (u16, Json) {
    let (status, text) = request(addr, "POST", "/v1/analyze", &[], body);
    (status, jparse(&text).unwrap_or_else(|e| panic!("bad analyze json: {e}\n{text}")))
}

/// Poll a job until it reaches a terminal state; returns the last status body.
fn poll_terminal(addr: &str, job: &str) -> Json {
    let start = Instant::now();
    loop {
        let (status, doc) = jget(addr, &format!("/v1/jobs/{job}"));
        assert_eq!(status, 200, "job status: {doc:?}");
        let state = doc.get("state").and_then(Json::as_str).expect("state").to_string();
        if state != "queued" && state != "running" && state != "cancelling" {
            return doc;
        }
        assert!(start.elapsed() < Duration::from_secs(120), "job {job} stuck in {state}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn shutdown(mut child: Child, addr: &str) {
    let (status, _) = request(addr, "POST", "/admin/shutdown", &[], "");
    assert_eq!(status, 200);
    let status = child.wait().expect("wait serve");
    assert!(status.success(), "serve exited {status:?}");
}

/// A small mixed-type corpus, written to disk so the offline CLI can
/// read the exact same bytes the service ingested.
const CSV: &str = "id,city,population,motto\n\
                   1,lund,91000,ad utrumque\n\
                   2,uppsala,166000,gratiae veritas naturae\n\
                   3,aarhus,285000,solidum petit in profundis\n\
                   4,tartu,91000,universitas tartuensis\n\
                   5,leiden,125000,praesidium libertatis\n\
                   6,bologna,390000,alma mater studiorum\n\
                   7,coimbra,143000,uni eduardo monteiro\n\
                   8,salamanca,144000,omnium scientiarum princeps\n";

#[test]
fn analyze_matches_offline_characterize() {
    let tmp = std::env::temp_dir().join(format!("obs-jobs-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let csv_path = tmp.join("corpus.csv");
    std::fs::write(&csv_path, CSV).unwrap();
    // The table *name* participates in the content fingerprint (and so
    // in encoding cache keys): ingest under the exact string the CLI
    // will use as its table name — the `--csv` path.
    let table_name = csv_path.to_str().unwrap().to_string();

    let (child, addr, reader) = spawn_serve(&[]);
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.into_inner().read_to_string(&mut sink);
    });

    let table = ingest_csv(&addr, &table_name, CSV);
    // Re-ingest is idempotent: same bytes + name -> same id, 200.
    let (status2, body2) = request(
        &addr,
        "POST",
        "/v1/tables",
        &[("Content-Type", "text/csv"), ("x-table-name", &table_name)],
        CSV,
    );
    assert_eq!(status2, 200, "{body2}");
    assert!(body2.contains(&table));

    let (status, doc) = analyze(
        &addr,
        &format!(r#"{{"table":"{table}","properties":["P1","P2"],"seed":7,"permutations":6}}"#),
    );
    assert_eq!(status, 202, "{doc:?}");
    let job = doc.get("job").and_then(Json::as_str).expect("job id").to_string();

    let status_doc = poll_terminal(&addr, &job);
    assert_eq!(status_doc.get("state").and_then(Json::as_str), Some("done"), "{status_doc:?}");
    assert_eq!(status_doc.get("progress").and_then(Json::as_f64), Some(1.0));

    let (rstatus, record) = jget(&addr, &format!("/v1/jobs/{job}/result"));
    assert_eq!(rstatus, 200, "{record:?}");
    let reports = record
        .get("result")
        .and_then(|r| r.get("reports"))
        .and_then(Json::as_array)
        .expect("reports array");
    assert_eq!(reports.len(), 2);

    // Offline oracle: the CLI over the same CSV, seed, and permutation
    // count, exporting raw distributions. Every served measure must be
    // bit-identical to the exported values.
    for (report, property) in reports.iter().zip(["P1", "P2"]) {
        assert_eq!(report.get("property").and_then(Json::as_str), Some(property));
        assert_eq!(report.get("model").and_then(Json::as_str), Some("bert"));
        let export = tmp.join(format!("export-{property}"));
        let out = Command::new(env!("CARGO_BIN_EXE_observatory"))
            .args(["characterize", "--property", property, "--csv"])
            .arg(&csv_path)
            .args(["--seed", "7", "--permutations", "6", "--export"])
            .arg(&export)
            .output()
            .expect("run characterize");
        assert!(
            out.status.success(),
            "characterize {property}: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        let measures = report.get("measures").and_then(Json::as_array).expect("measures");
        assert!(!measures.is_empty(), "{property} served no measures");
        for m in measures {
            let label = m.get("label").and_then(Json::as_str).expect("label");
            let served: Vec<f64> = m
                .get("values")
                .and_then(Json::as_array)
                .expect("values")
                .iter()
                .map(|v| v.as_f64().expect("numeric measure"))
                .collect();
            let file = export.join(format!("{property}_bert_{}.csv", sanitize(label)));
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("missing export {}: {e}", file.display()));
            let offline: Vec<f64> =
                text.lines().skip(1).map(|l| l.parse().expect("export value")).collect();
            assert_eq!(served.len(), offline.len(), "{property} {label}: length mismatch");
            for (i, (s, o)) in served.iter().zip(&offline).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    o.to_bits(),
                    "{property} {label}[{i}]: served {s} != offline {o}"
                );
            }
        }
    }

    shutdown(child, &addr);
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Mirror of `core::export::sanitize` — measure labels in file names.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect()
}

#[test]
fn cancellation_deadline_and_clean_drain() {
    let (mut child, addr, mut reader) = spawn_serve(&["--max-jobs", "8"]);

    // A wider/longer table so a 24-permutation job runs long enough for
    // the second submission to still be queued when the DELETE lands.
    let mut csv = String::from("a,b,c,d,e,f\n");
    for r in 0..40 {
        csv.push_str(&format!("{r},w{r},x{r},y{r},z{r},q{r}\n"));
    }
    let table = ingest_csv(&addr, "cancel-me", &csv);

    let body =
        format!(r#"{{"table":"{table}","properties":["P1","P2"],"seed":3,"permutations":24}}"#);
    let (s1, d1) = analyze(&addr, &body);
    assert_eq!(s1, 202, "{d1:?}");
    let keep = d1.get("job").and_then(Json::as_str).unwrap().to_string();
    let (s2, d2) = analyze(&addr, &body);
    assert_eq!(s2, 202, "{d2:?}");
    let victim = d2.get("job").and_then(Json::as_str).unwrap().to_string();

    // Cancel the second job: 200 when still queued, 202 when the runner
    // already picked it up and is stopping at the next checkpoint.
    let (cs, cbody) = request(&addr, "DELETE", &format!("/v1/jobs/{victim}"), &[], "");
    assert!(cs == 200 || cs == 202, "cancel: {cs} {cbody}");
    let vdoc = poll_terminal(&addr, &victim);
    assert_eq!(vdoc.get("state").and_then(Json::as_str), Some("cancelled"), "{vdoc:?}");
    // A cancelled job has no result; a second DELETE is a conflict.
    let (rs, rbody) = request(&addr, "GET", &format!("/v1/jobs/{victim}/result"), &[], "");
    assert_eq!(rs, 409, "{rbody}");
    let (cs2, _) = request(&addr, "DELETE", &format!("/v1/jobs/{victim}"), &[], "");
    assert_eq!(cs2, 409);

    // An already-expired deadline fails the job before any work runs.
    let (ds, ddoc) = analyze(
        &addr,
        &format!(
            r#"{{"table":"{table}","properties":["P1"],"seed":3,"permutations":4,"deadline_ms":1}}"#
        ),
    );
    assert_eq!(ds, 202, "{ddoc:?}");
    let dead = ddoc.get("job").and_then(Json::as_str).unwrap().to_string();
    let ddoc = poll_terminal(&addr, &dead);
    assert_eq!(ddoc.get("state").and_then(Json::as_str), Some("failed"), "{ddoc:?}");
    let err = ddoc.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(err.contains("deadline"), "unexpected error: {err}");

    // The first job is untouched by its sibling's cancellation.
    let kdoc = poll_terminal(&addr, &keep);
    assert_eq!(kdoc.get("state").and_then(Json::as_str), Some("done"), "{kdoc:?}");

    // Clean shutdown: the drain report must account for every job.
    let (ss, _) = request(&addr, "POST", "/admin/shutdown", &[], "");
    assert_eq!(ss, 200);
    let status = child.wait().expect("wait serve");
    assert!(status.success(), "serve exited {status:?}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain stdout");
    let jobs_line = rest
        .lines()
        .find(|l| l.starts_with("jobs: "))
        .unwrap_or_else(|| panic!("no jobs drain line in:\n{rest}"));
    assert!(jobs_line.contains("3 submitted"), "{jobs_line}");
    assert!(jobs_line.ends_with("0 lost"), "{jobs_line}");
}
