//! Cross-crate kernel equivalence: the fused/tiled/parallel encoder
//! kernels against their naive scalar references, on randomized inputs.
//!
//! Two contracts are enforced (CI runs this file as the dedicated
//! equivalence job):
//!
//! 1. **Kernel vs reference.** `matmul` and `linear_bias` must match the
//!    naive implementations *bit for bit* (same ascending-`k`
//!    accumulation order, only regrouped into register tiles).
//!    `linear_bias_gelu` and `attention` run on the `fastmath`
//!    polynomial transcendentals and must stay within the documented
//!    ULP bound (≤ 1e-12 relative) of the libm references.
//! 2. **Job-count determinism.** Every kernel — and a whole encoder
//!    forward pass — must be bit-identical at `--jobs 1` and
//!    `--jobs 4`. Parallelism distributes whole row blocks; it never
//!    changes any reduction order.

use observatory::linalg::kernels::{self, reference, AttentionSpec};
use observatory::linalg::{parallel, Matrix, SplitMix64};
use observatory::transformer::{Encoder, TokenInput, TransformerConfig};
use proptest::prelude::*;

fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.next_normal_with(0.0, 0.5);
        }
    }
    m
}

/// Exact equality, reported element-wise (`==`, so `-0.0 == 0.0`).
fn assert_bit_identical(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()), "{what}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(g == w, "{what}: element {i} differs: {g:?} vs {w:?}");
    }
}

/// Relative-or-absolute closeness for the fastmath-backed kernels.
fn assert_close(got: &Matrix, want: &Matrix, tol: f64, what: &str) {
    assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()), "{what}: shape");
    for (i, (&g, &w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        let err = (g - w).abs() / g.abs().max(w.abs()).max(1.0);
        assert!(err <= tol, "{what}: element {i}: {g} vs {w} (err {err:e})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Fused matmul ≡ naive matmul, bitwise, at jobs 1 and 4.
    #[test]
    fn matmul_matches_naive_bitwise(
        seed in any::<u64>(),
        n in 1usize..40,
        kd in 1usize..24,
        m in 1usize..40,
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = random_matrix(&mut rng, n, kd);
        let b = random_matrix(&mut rng, kd, m);
        let want = reference::matmul(&a, &b);
        let got1 = kernels::matmul(&a, &b, 1);
        let got4 = kernels::matmul(&a, &b, 4);
        assert_bit_identical(&got1, &want, "matmul jobs=1 vs naive");
        assert_bit_identical(&got4, &got1, "matmul jobs=4 vs jobs=1");
    }

    /// Fused linear layers vs naive: bias exactly, GELU within the
    /// documented fastmath bound; both bit-stable across job counts.
    #[test]
    fn linear_kernels_match_naive(
        seed in any::<u64>(),
        n in 1usize..32,
        d_in in 1usize..20,
        d_out in 1usize..28,
    ) {
        let mut rng = SplitMix64::new(seed);
        let x = random_matrix(&mut rng, n, d_in);
        let w = random_matrix(&mut rng, d_in, d_out);
        let bias: Vec<f64> = (0..d_out).map(|_| rng.next_normal_with(0.0, 0.2)).collect();

        let want = reference::linear_bias(&x, &w, &bias);
        let got = kernels::linear_bias(&x, &w, &bias, 4);
        assert_bit_identical(&got, &want, "linear_bias vs naive");

        let want_g = reference::linear_bias_gelu(&x, &w, &bias);
        let got_g1 = kernels::linear_bias_gelu(&x, &w, &bias, 1);
        let got_g4 = kernels::linear_bias_gelu(&x, &w, &bias, 4);
        assert_close(&got_g1, &want_g, 1e-12, "linear_bias_gelu vs naive");
        assert_bit_identical(&got_g4, &got_g1, "linear_bias_gelu jobs=4 vs jobs=1");
    }

    /// Fused attention vs naive (ULP-bounded via fastmath softmax),
    /// bit-identical across job counts, with random mask/bias — including
    /// fully-masked query rows, which must attend only themselves.
    #[test]
    fn attention_matches_naive(
        seed in any::<u64>(),
        n in 2usize..24,
        head_dim in 1usize..8,
        n_heads in 1usize..4,
        use_bias in any::<bool>(),
        mask_bits in proptest::collection::vec(any::<bool>(), 24 * 24),
        mask_a_row in any::<bool>(),
        masked_row_pick in any::<u8>(),
    ) {
        // The vendored proptest has no `Arbitrary for Option<T>`; model the
        // optional fully-masked row as a (bool, pick) pair instead.
        let fully_mask_row = mask_a_row.then_some(masked_row_pick);
        let dim = n_heads * head_dim;
        let mut rng = SplitMix64::new(seed);
        let q = random_matrix(&mut rng, n, dim);
        let k = random_matrix(&mut rng, n, dim);
        let v = random_matrix(&mut rng, n, dim);
        let bias: Vec<f64> =
            (0..n_heads * n * n).map(|_| rng.next_normal_with(0.0, 0.3)).collect();
        let mut mask: Vec<bool> = mask_bits[..n * n].to_vec();
        // Keep at least one permitted key per row except the deliberately
        // fully-masked one, so both softmax branches are exercised.
        for i in 0..n {
            if !mask[i * n..(i + 1) * n].iter().any(|&b| b) {
                mask[i * n + i] = true;
            }
        }
        if let Some(r) = fully_mask_row {
            let r = r as usize % n;
            mask[r * n..(r + 1) * n].fill(false);
        }
        let spec = AttentionSpec {
            n_heads,
            head_dim,
            scale: 1.0 / (head_dim as f64).sqrt(),
            bias: use_bias.then_some(&bias[..]),
            mask: Some(&mask),
        };
        let (want_out, want_w) = reference::attention(&q, &k, &v, &spec);
        let (got_out, got_w) = kernels::attention(&q, &k, &v, &spec, 1);
        let (got_out4, got_w4) = kernels::attention(&q, &k, &v, &spec, 4);
        assert_close(&got_out, &want_out, 1e-12, "attention out vs naive");
        assert_close(&got_w, &want_w, 1e-12, "attention weights vs naive");
        assert_bit_identical(&got_out4, &got_out, "attention out jobs=4 vs jobs=1");
        assert_bit_identical(&got_w4, &got_w, "attention weights jobs=4 vs jobs=1");

        if let Some(r) = fully_mask_row {
            let r = r as usize % n;
            // The fully-masked query's output is exactly its own value
            // row — no mass on any other (masked) token.
            for (d, (&g, &vv)) in got_out.row(r).iter().zip(v.row(r)).enumerate() {
                prop_assert!(
                    g == vv,
                    "fully-masked row {r} col {d}: {g} != own value {vv}"
                );
            }
        }
    }
}

/// A whole encoder forward (attention + FFN + layer norms, 2 layers) is
/// bit-identical when the process-default job count — what the CLI's
/// `--jobs` flag sets — flips between 1 and 4. The shape is chosen above
/// the kernels' parallel-gating threshold so the worker pool genuinely
/// engages at jobs = 4.
#[test]
fn encoder_forward_bit_identical_across_jobs() {
    let seq = 128usize;
    let encoder = Encoder::new(TransformerConfig {
        dim: 64,
        n_heads: 4,
        n_layers: 2,
        ffn_dim: 128,
        max_len: seq,
        vocab_size: 256,
        seed_label: "kernels-equivalence".into(),
        ..Default::default()
    });
    let tokens: Vec<TokenInput> = (0..seq).map(|i| TokenInput::plain((i % 256) as u32)).collect();

    parallel::set_default_jobs(1);
    let serial = encoder.encode(&tokens);
    parallel::set_default_jobs(4);
    let parallel_out = encoder.encode(&tokens);
    parallel::set_default_jobs(0);

    assert_bit_identical(&parallel_out, &serial, "encoder forward jobs=4 vs jobs=1");
}
