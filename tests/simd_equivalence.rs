//! SIMD-vs-scalar bitwise equivalence for the tier-dispatched kernels.
//!
//! The contract under test is the one DESIGN.md §11 promises: every SIMD
//! tier (`scalar`, `sse2`, `avx2`) produces **byte-identical** results —
//! not "close", identical — because the vector kernels preserve the
//! scalar fallback's exact floating-point operation order (fixed 8-lane
//! reduction structure, mul-then-add with no FMA contraction).
//!
//! Coverage deliberately includes the awkward cases:
//! - **Unaligned pointers**: slices taken at every offset `0..8` into a
//!   parent buffer, so the vector loads are mostly unaligned (`loadu`).
//! - **Tail lengths**: lengths spanning `0..=15` exercise every remainder
//!   path of the 8-lane main loop (0–7 leftover elements per tier).
//! - **Non-finite data**: NaN and ±inf injected at random positions. A
//!   non-NaN result (including ±inf and ±0) must have the *same bits* in
//!   every tier; a NaN result must be NaN in every tier. NaN *payloads*
//!   are the one place bit-identity is not promised: IEEE 754 leaves the
//!   propagated payload unspecified and LLVM freely commutes scalar
//!   `mul`/`add` operands, so the scalar reference itself has no defined
//!   payload to match.
//! - **Job counts**: the GEMM path re-checked at jobs ∈ {1, 4} on top of
//!   the tier sweep (parallel row blocks must not interact with tiering).
//!
//! CI runs this suite twice: once auto-detected (AVX2 where available)
//! and once with `OBSERVATORY_SIMD=off`, which must pin the dispatch
//! decision to the scalar tier (`env_off_pins_scalar_tier`).

use observatory::linalg::kernels;
use observatory::linalg::simd::{self, Tier};
use observatory::linalg::{reduce, Matrix, SplitMix64};
use proptest::prelude::*;
use std::sync::Mutex;

/// `simd::force_tier` is process-global; serialize every test that
/// installs a forced tier so concurrent test threads cannot interleave.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fill `len` values starting at a deterministic mix of normals and
/// injected specials (NaN, ±inf, ±0, denormal-scale) controlled by
/// `special_mask` bits.
fn fill(rng: &mut SplitMix64, len: usize, special_every: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            if special_every != 0 && i % special_every == special_every - 1 {
                match i / special_every % 5 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => -0.0,
                    _ => 1e-310, // subnormal
                }
            } else {
                rng.next_normal_with(0.0, 1.0)
            }
        })
        .collect()
}

fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.next_normal_with(0.0, 0.5);
        }
    }
    m
}

fn assert_bits_eq(got: f64, want: f64, what: &str) {
    if got.is_nan() && want.is_nan() {
        return; // NaN payload/sign is unspecified (see module docs)
    }
    assert!(
        got.to_bits() == want.to_bits(),
        "{what}: {got:?} ({:#018x}) vs {want:?} ({:#018x})",
        got.to_bits(),
        want.to_bits()
    );
}

fn assert_matrix_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()), "{what}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(g.to_bits() == w.to_bits(), "{what}: element {i} differs: {g:?} vs {w:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Dot and squared-norm: every available tier, every alignment offset
    /// 0..8, lengths covering all 8-lane tails, with specials injected.
    #[test]
    fn reductions_bitwise_across_tiers(
        seed in any::<u64>(),
        len in 0usize..48,
        offset in 0usize..8,
        special_every in 0usize..7,
    ) {
        let mut rng = SplitMix64::new(seed);
        let xs = fill(&mut rng, offset + len, special_every);
        let ys = fill(&mut rng, offset + len, special_every.saturating_sub(1));
        let a = &xs[offset..];
        let b = &ys[offset..];
        let want_dot = reduce::dot_with_tier(a, b, Tier::Scalar);
        let want_sq = reduce::sq_norm_with_tier(a, Tier::Scalar);
        for tier in simd::available_tiers() {
            assert_bits_eq(
                reduce::dot_with_tier(a, b, tier),
                want_dot,
                &format!("dot len={len} offset={offset} tier={tier:?}"),
            );
            assert_bits_eq(
                reduce::sq_norm_with_tier(a, tier),
                want_sq,
                &format!("sq_norm len={len} offset={offset} tier={tier:?}"),
            );
        }
    }

    /// Softmax (fastmath exp pass): bitwise across tiers, rows covering
    /// every vector tail, with NaN logits (saturated) and -inf included.
    #[test]
    fn softmax_bitwise_across_tiers(
        seed in any::<u64>(),
        len in 1usize..40,
        special_every in 0usize..6,
    ) {
        let _g = lock();
        let mut rng = SplitMix64::new(seed);
        let base = fill(&mut rng, len, special_every);
        simd::force_tier(Some(Tier::Scalar));
        let mut want = base.clone();
        kernels::softmax_fast_inplace(&mut want);
        for tier in simd::available_tiers() {
            simd::force_tier(Some(tier));
            let mut got = base.clone();
            kernels::softmax_fast_inplace(&mut got);
            simd::force_tier(None);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "softmax len={len} tier={tier:?} element {i}: {g:?} vs {w:?}"
                );
            }
        }
        simd::force_tier(None);
    }

    /// GEMM (`matmul`) and the transposed-B product: bitwise across every
    /// tier × jobs ∈ {1, 4}, shapes spanning the 8-wide column strip,
    /// its remainder columns, and the row-quad remainder.
    #[test]
    fn gemm_bitwise_across_tiers_and_jobs(
        seed in any::<u64>(),
        n in 1usize..24,
        kd in 1usize..20,
        m in 1usize..36,
    ) {
        let _g = lock();
        let mut rng = SplitMix64::new(seed);
        let a = random_matrix(&mut rng, n, kd);
        let b = random_matrix(&mut rng, kd, m);
        let bt = b.transpose();
        simd::force_tier(Some(Tier::Scalar));
        let want = kernels::matmul(&a, &b, 1);
        let want_t = kernels::matmul_transb(&a, &bt, 1);
        for tier in simd::available_tiers() {
            for jobs in [1usize, 4] {
                simd::force_tier(Some(tier));
                let got = kernels::matmul(&a, &b, jobs);
                let got_t = kernels::matmul_transb(&a, &bt, jobs);
                simd::force_tier(None);
                assert_matrix_bits_eq(
                    &got,
                    &want,
                    &format!("matmul {n}x{kd}x{m} tier={tier:?} jobs={jobs}"),
                );
                assert_matrix_bits_eq(
                    &got_t,
                    &want_t,
                    &format!("matmul_transb {n}x{kd}x{m} tier={tier:?} jobs={jobs}"),
                );
            }
        }
        simd::force_tier(None);
    }
}

/// `OBSERVATORY_SIMD=off` must pin the process-wide dispatch decision to
/// the scalar tier (the CI matrix leg runs this whole suite under that
/// override, so here the decision itself is checked, not just kernel
/// output). Without the override the decision must match CPU detection.
#[test]
fn env_off_pins_scalar_tier() {
    let d = simd::decision();
    match std::env::var("OBSERVATORY_SIMD").ok().as_deref() {
        Some("off") => {
            assert_eq!(d.tier, Tier::Scalar, "OBSERVATORY_SIMD=off must force scalar");
        }
        None => assert_eq!(d.tier, d.detected, "no override: decision follows detection"),
        Some(_) => {} // other overrides exercised by simd's unit tests
    }
}

/// End-to-end: a whole encoder forward pass is bitwise identical between
/// the scalar tier and the widest available tier. This is the property
/// the paper reproduction actually depends on — measure outputs cannot
/// depend on which CPU ran the encode.
#[test]
fn encoder_forward_bitwise_across_tiers() {
    use observatory::transformer::{Encoder, TokenInput, TransformerConfig};
    let _g = lock();
    let seq = 48usize;
    let encoder = Encoder::new(TransformerConfig {
        dim: 32,
        n_heads: 4,
        n_layers: 2,
        ffn_dim: 64,
        max_len: seq,
        vocab_size: 128,
        seed_label: "simd-equivalence".into(),
        ..Default::default()
    });
    let tokens: Vec<TokenInput> = (0..seq).map(|i| TokenInput::plain((i % 128) as u32)).collect();
    simd::force_tier(Some(Tier::Scalar));
    let scalar = encoder.encode(&tokens);
    let widest = *simd::available_tiers().last().unwrap();
    simd::force_tier(Some(widest));
    let vector = encoder.encode(&tokens);
    simd::force_tier(None);
    assert_matrix_bits_eq(&vector, &scalar, &format!("encoder scalar vs {widest:?}"));
}
