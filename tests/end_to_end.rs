//! End-to-end integration tests: the full characterization pipeline —
//! datasets → models → properties → reports — across crate boundaries.

use observatory::core::framework::{run_property, EvalContext, Property};
use observatory::core::props::col_order::ColumnOrderInsignificance;
use observatory::core::props::fd::FunctionalDependencies;
use observatory::core::props::hetero_context::HeterogeneousContext;
use observatory::core::props::join_rel::{pairs_to_corpus, JoinRelationship};
use observatory::core::props::perturbation::PerturbationRobustness;
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::props::sample_fidelity::SampleFidelity;
use observatory::core::scope;
use observatory::data::nextiajd::NextiaJdConfig;
use observatory::data::sotab::SotabConfig;
use observatory::data::spider::SpiderConfig;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::models::registry::all_models;

fn ctx() -> EvalContext {
    EvalContext::with_seed(42)
}

#[test]
fn every_property_runs_for_every_in_scope_model() {
    let wiki = WikiTablesConfig { num_tables: 2, min_rows: 4, max_rows: 5, seed: 1 }.generate();
    let spider = SpiderConfig { num_tables: 2, rows: 10, seed: 7 }.generate().tables;
    let joins = pairs_to_corpus(&NextiaJdConfig { num_pairs: 6, ..Default::default() }.generate());
    let sotab = SotabConfig { num_tables: 2, rows: 4, seed: 23 }.generate();
    let models = all_models();

    let p1 = RowOrderInsignificance { max_permutations: 3 };
    let p2 = ColumnOrderInsignificance { max_permutations: 3 };
    let p3 = JoinRelationship;
    let p4 = FunctionalDependencies::default();
    let p5 = SampleFidelity { samples_per_ratio: 1, ..Default::default() };
    let p7 = PerturbationRobustness::default();
    let p8 = HeterogeneousContext;
    let cases: Vec<(&dyn Property, &[observatory::table::Table])> = vec![
        (&p1, &wiki),
        (&p2, &wiki),
        (&p3, &joins),
        (&p4, &spider),
        (&p5, &wiki),
        (&p7, &wiki),
        (&p8, &sotab),
    ];
    for (property, corpus) in cases {
        let reports = run_property(property, &models, corpus, &ctx());
        assert_eq!(
            reports.len(),
            scope::models_in_scope(property.id()).len(),
            "{} report count",
            property.id()
        );
        // Every report is internally consistent: finite values only.
        for r in &reports {
            for d in &r.records {
                assert!(
                    d.values.iter().all(|v| v.is_finite()),
                    "{} {} {} has non-finite values",
                    property.id(),
                    r.model,
                    d.label
                );
            }
        }
        // At least one in-scope model produced actual measurements.
        assert!(
            reports.iter().any(|r| !r.records.is_empty() || !r.scalars.is_empty()),
            "{} produced nothing at all",
            property.id()
        );
    }
}

#[test]
fn reports_are_reproducible_across_processial_reruns() {
    // Same seed ⇒ bitwise-identical reports (the determinism contract that
    // the synthetic-checkpoint substitution rests on).
    let wiki = WikiTablesConfig { num_tables: 2, min_rows: 4, max_rows: 5, seed: 5 }.generate();
    let models = all_models();
    let p = RowOrderInsignificance { max_permutations: 4 };
    let a = run_property(&p, &models, &wiki, &ctx());
    let b = run_property(&p, &models, &wiki, &ctx());
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_sampled_measurements() {
    let wiki = WikiTablesConfig { num_tables: 1, min_rows: 8, max_rows: 8, seed: 5 }.generate();
    let model = observatory::models::registry::model_by_name("bert").unwrap();
    let p = RowOrderInsignificance { max_permutations: 5 };
    let a = p.evaluate(model.as_ref(), &wiki, &EvalContext::with_seed(1));
    let b = p.evaluate(model.as_ref(), &wiki, &EvalContext::with_seed(2));
    assert_ne!(
        a.distribution("column/cosine").map(|d| d.values.clone()),
        b.distribution("column/cosine").map(|d| d.values.clone()),
    );
}

#[test]
fn scope_matrix_is_enforced_by_runner() {
    let wiki = WikiTablesConfig { num_tables: 1, min_rows: 4, max_rows: 4, seed: 1 }.generate();
    let models = all_models();
    let p = FunctionalDependencies::default();
    let reports = run_property(&p, &models, &wiki, &ctx());
    for excluded in ["turl", "tabert", "taptap"] {
        assert!(reports.iter().all(|r| r.model != excluded), "{excluded} must be out of scope");
    }
}

#[test]
fn renderable_reports() {
    // Rendering never panics and contains the measure labels.
    let wiki = WikiTablesConfig { num_tables: 1, min_rows: 4, max_rows: 4, seed: 1 }.generate();
    let model = observatory::models::registry::model_by_name("tapas").unwrap();
    let p = RowOrderInsignificance { max_permutations: 4 };
    let report = p.evaluate(model.as_ref(), &wiki, &ctx());
    let text = observatory::core::report::render_report(&report);
    assert!(text.contains("P1 — tapas"));
    assert!(text.contains("column/cosine"));
}
