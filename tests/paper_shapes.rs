//! The paper's headline findings, asserted as directional invariants of
//! this reproduction (EXPERIMENTS.md records the measured values).
//!
//! These are *shape* tests: who wins, what is ordered above what — not
//! absolute numbers, which depend on the synthetic checkpoints.

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::col_order::ColumnOrderInsignificance;
use observatory::core::props::join_rel::{pairs_to_corpus, JoinRelationship};
use observatory::core::props::perturbation::PerturbationRobustness;
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::props::sample_fidelity::SampleFidelity;
use observatory::data::nextiajd::NextiaJdConfig;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::models::registry::model_by_name;
use observatory::stats::descriptive::mean;
use observatory::table::Table;

fn ctx() -> EvalContext {
    EvalContext::with_seed(42)
}

fn wiki() -> Vec<Table> {
    WikiTablesConfig { num_tables: 4, min_rows: 5, max_rows: 7, seed: 42 }.generate()
}

fn mean_of(report: &observatory::core::PropertyReport, label: &str) -> f64 {
    mean(&report.distribution(label).expect(label).values)
}

/// §5.1: vanilla LMs' and TAPAS/TaBERT's column embeddings are robust to
/// row order; DODUO is the sensitive one.
#[test]
fn row_order_hierarchy() {
    let corpus = wiki();
    let p = RowOrderInsignificance { max_permutations: 10 };
    let score = |name: &str| {
        mean_of(
            &p.evaluate(model_by_name(name).unwrap().as_ref(), &corpus, &ctx()),
            "column/cosine",
        )
    };
    let (bert, t5, tapas, tabert, doduo) =
        (score("bert"), score("t5"), score("tapas"), score("tabert"), score("doduo"));
    for (name, v) in [("bert", bert), ("t5", t5), ("tapas", tapas), ("tabert", tabert)] {
        assert!(v > 0.95, "{name} should be row-order robust, got {v:.4}");
        assert!(doduo < v, "doduo ({doduo:.4}) should be more sensitive than {name} ({v:.4})");
    }
}

/// §5.1: table-level embeddings are exceptionally stable under row
/// shuffling — more stable than row-level embeddings.
#[test]
fn table_embeddings_most_stable_under_row_shuffling() {
    let corpus = wiki();
    let p = RowOrderInsignificance { max_permutations: 8 };
    for name in ["bert", "roberta", "tapas"] {
        let r = p.evaluate(model_by_name(name).unwrap().as_ref(), &corpus, &ctx());
        let table = mean_of(&r, "table/cosine");
        let row = mean_of(&r, "row/cosine");
        assert!(table > 0.94, "{name} table-level cosine too low: {table:.4}");
        assert!(table >= row, "{name}: table ({table:.4}) below row ({row:.4})");
    }
}

/// §5.2: column shuffling causes more variation than row shuffling, and
/// RoBERTa degrades more than BERT.
#[test]
fn column_shuffles_hurt_more_and_roberta_most() {
    let corpus = wiki();
    let p_row = RowOrderInsignificance { max_permutations: 10 };
    let p_col = ColumnOrderInsignificance { max_permutations: 10 };
    for name in ["bert", "roberta"] {
        let m = model_by_name(name).unwrap();
        let by_row = mean_of(&p_row.evaluate(m.as_ref(), &corpus, &ctx()), "column/cosine");
        let by_col = mean_of(&p_col.evaluate(m.as_ref(), &corpus, &ctx()), "column/cosine");
        assert!(by_col < by_row, "{name}: col shuffle {by_col:.4} !< row shuffle {by_row:.4}");
    }
    let bert = mean_of(
        &p_col.evaluate(model_by_name("bert").unwrap().as_ref(), &corpus, &ctx()),
        "column/cosine",
    );
    let roberta = mean_of(
        &p_col.evaluate(model_by_name("roberta").unwrap().as_ref(), &corpus, &ctx()),
        "column/cosine",
    );
    assert!(roberta < bert, "roberta {roberta:.4} should degrade below bert {bert:.4}");
}

/// §5.3: all overlap measures correlate positively with embedding cosine,
/// and multiset Jaccard correlates at least as well as plain Jaccard
/// (duplicates enter the embeddings but not the set measures).
#[test]
fn join_correlations_positive_and_multiset_strongest() {
    let corpus =
        pairs_to_corpus(&NextiaJdConfig { num_pairs: 40, ..Default::default() }.generate());
    for name in ["bert", "roberta", "t5", "tapas", "doduo"] {
        let r = JoinRelationship.evaluate(model_by_name(name).unwrap().as_ref(), &corpus, &ctx());
        let containment = r.scalar("spearman/containment").unwrap();
        let jaccard = r.scalar("spearman/jaccard").unwrap();
        let multiset = r.scalar("spearman/multiset_jaccard").unwrap();
        assert!(containment > 0.0 && jaccard > 0.0 && multiset > 0.0, "{name}");
        assert!(
            multiset + 0.05 >= jaccard,
            "{name}: multiset {multiset:.3} should not trail jaccard {jaccard:.3}"
        );
    }
    // Significance at this workload size holds for the strongly-correlated
    // models (DODUO's CLS readout needs larger pair counts to pass the
    // p < 0.01 bar; see EXPERIMENTS.md).
    for name in ["bert", "t5"] {
        let r = JoinRelationship.evaluate(model_by_name(name).unwrap().as_ref(), &corpus, &ctx());
        assert!(
            r.scalar("p_value/multiset_jaccard").unwrap() < 0.01,
            "{name}: multiset correlation must be significant"
        );
    }
}

/// §5.5: sample fidelity is monotone in the sampling ratio, and TaBERT —
/// whose input is pinned to the first rows — is the most sample-robust.
#[test]
fn sample_fidelity_monotone_and_tabert_wins() {
    let corpus = wiki();
    let p = SampleFidelity { samples_per_ratio: 2, ..Default::default() };
    let mut at_025 = Vec::new();
    for name in ["bert", "tapas", "doduo", "tabert"] {
        let r = p.evaluate(model_by_name(name).unwrap().as_ref(), &corpus, &ctx());
        let lo = mean_of(&r, "fidelity@0.25");
        let hi = mean_of(&r, "fidelity@0.75");
        assert!(hi > lo, "{name}: fidelity not monotone ({lo:.4} → {hi:.4})");
        at_025.push((name, lo));
    }
    let tabert = at_025.iter().find(|(n, _)| *n == "tabert").unwrap().1;
    let doduo = at_025.iter().find(|(n, _)| *n == "doduo").unwrap().1;
    assert!(
        tabert >= doduo - 1e-9 && at_025.iter().all(|(_, v)| tabert >= v - 0.05),
        "tabert ({tabert:.4}) should be at or near the top at ratio 0.25: {at_025:?}"
    );
}

/// §5.7: DODUO has exactly zero variance under schema perturbations;
/// TaBERT is the least robust; vanilla BERT/T5 are the most robust.
#[test]
fn perturbation_hierarchy() {
    let corpus = wiki();
    let p = PerturbationRobustness::default();
    let score = |name: &str| {
        let r = p.evaluate(model_by_name(name).unwrap().as_ref(), &corpus, &ctx());
        r.scalar("mean/synonym").unwrap()
    };
    let (bert, t5, tabert, doduo) = (score("bert"), score("t5"), score("tabert"), score("doduo"));
    assert!((doduo - 1.0).abs() < 1e-9, "doduo must be exactly invariant: {doduo}");
    assert!(tabert < bert && tabert < t5, "tabert ({tabert:.3}) must be least robust");
    assert!(bert > 0.85 && t5 > 0.85, "vanilla LMs should be robust: {bert:.3}, {t5:.3}");
}

/// §5.1/Figure 6: T5's permutation clouds are more anisotropic (stretched
/// along one direction) than BERT's.
#[test]
fn t5_clouds_more_anisotropic_than_bert() {
    use observatory::linalg::pca::Pca;
    use observatory::linalg::Matrix;
    use observatory::table::perm;
    let table = observatory::data::wikitables::pca_demo_table();
    let perms = perm::sample_permutations(table.num_rows(), 60, 42);
    let anisotropy = |name: &str| {
        let m = model_by_name(name).unwrap();
        let encs: Vec<_> =
            perms.iter().map(|p| m.encode_table(&perm::permute_rows(&table, p))).collect();
        let mut ratios = Vec::new();
        for j in 0..table.num_cols() {
            let embs: Vec<Vec<f64>> = encs.iter().filter_map(|e| e.column(j)).collect();
            let pca = Pca::fit(&Matrix::from_rows(&embs), 2);
            if pca.explained_variance[1] > 1e-15 {
                ratios.push(pca.explained_variance[0] / pca.explained_variance[1]);
            }
        }
        mean(&ratios)
    };
    let (bert, t5) = (anisotropy("bert"), anisotropy("t5"));
    assert!(t5 > bert, "t5 anisotropy {t5:.2} should exceed bert {bert:.2}");
}
