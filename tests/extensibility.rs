//! Framework extensibility: user-defined models and properties compose
//! with the stock machinery (paper §1's extensibility claim, as a test).

use observatory::core::framework::{run_property, EvalContext, Property, PropertyReport};
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::linalg::Matrix;
use observatory::models::encoding::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use observatory::models::TableEncoder;
use observatory::table::{Table, Value};

/// A trivial deterministic model: each cell embeds as a 4-D histogram of
/// its text bytes. Order-free by construction.
struct ByteHistogram;

impl TableEncoder for ByteHistogram {
    fn name(&self) -> &str {
        "byte-histogram"
    }

    fn display_name(&self) -> &str {
        "Byte Histogram"
    }

    fn dim(&self) -> usize {
        4
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn encode_table(&self, table: &Table) -> ModelEncoding {
        let mut rows = Vec::new();
        let mut provenance = Vec::new();
        for (j, col) in table.columns.iter().enumerate() {
            for (i, v) in col.values.iter().enumerate() {
                let mut h = [0.0f64; 4];
                for b in v.to_text().bytes() {
                    h[(b % 4) as usize] += 1.0;
                }
                rows.push(h.to_vec());
                provenance.push(TokenProvenance {
                    row: (i + 1) as u32,
                    col: (j + 1) as u32,
                    special: false,
                });
            }
        }
        if rows.is_empty() {
            rows.push(vec![0.0; 4]);
            provenance.push(TokenProvenance { row: 0, col: 0, special: true });
        }
        ModelEncoding {
            embeddings: Matrix::from_rows(&rows),
            provenance,
            table_cls: None,
            column_cls: Vec::new(),
            rows_encoded: table.num_rows(),
            cols_encoded: table.num_cols(),
            column_readout: Readout::MeanPool,
            table_readout: Readout::MeanPool,
            capabilities: self.capabilities(),
        }
    }

    fn encode_text(&self, text: &str) -> Vec<f64> {
        let mut h = vec![0.0f64; 4];
        for b in text.bytes() {
            h[(b % 4) as usize] += 1.0;
        }
        h
    }
}

/// A user property: average embedding norm per level (nonsense science,
/// real plumbing).
struct NormProbe;

impl Property for NormProbe {
    fn id(&self) -> &'static str {
        "U1"
    }

    fn name(&self) -> &'static str {
        "Norm Probe"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        _ctx: &EvalContext,
    ) -> PropertyReport {
        let mut report = PropertyReport::new(self.id(), model.name());
        let norms: Vec<f64> = corpus
            .iter()
            .flat_map(|t| {
                let enc = model.encode_table(t);
                (0..t.num_cols())
                    .filter_map(|j| enc.column(j))
                    .map(|e| observatory::linalg::vector::norm_l2(&e))
                    .collect::<Vec<_>>()
            })
            .collect();
        report.push_distribution("column-norm", norms);
        report
    }
}

fn demo_corpus() -> Vec<Table> {
    vec![Table::from_rows(
        "demo",
        &["a", "b"],
        vec![
            vec![Value::text("xy"), Value::Int(1)],
            vec![Value::text("zz"), Value::Int(2)],
            vec![Value::text("ww"), Value::Int(3)],
        ],
    )]
}

#[test]
fn stock_property_runs_on_custom_model() {
    let model = ByteHistogram;
    let p = RowOrderInsignificance { max_permutations: 6 };
    let report = p.evaluate(&model, &demo_corpus(), &EvalContext::default());
    let cos = report.distribution("column/cosine").expect("columns measured");
    // A histogram of cell bytes is row-order invariant.
    assert!(cos.values.iter().all(|v| (v - 1.0).abs() < 1e-12));
}

#[test]
fn custom_property_runs_on_stock_models() {
    let models = observatory::models::registry::all_models();
    let reports = run_property(&NormProbe, &models, &demo_corpus(), &EvalContext::default());
    // Unknown property ids are unconstrained by the scope matrix: all nine.
    assert_eq!(reports.len(), 9);
    let with_columns = reports.iter().filter(|r| !r.records.is_empty()).count();
    assert!(with_columns >= 6, "column-capable models must produce norms");
}

#[test]
fn custom_model_boxes_into_registry_style_collections() {
    let mut models: Vec<Box<dyn TableEncoder>> = observatory::models::registry::all_models();
    models.push(Box::new(ByteHistogram));
    let reports = run_property(&NormProbe, &models, &demo_corpus(), &EvalContext::default());
    assert!(reports.iter().any(|r| r.model == "byte-histogram"));
}
