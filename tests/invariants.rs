//! Property-based (proptest) invariants across crate boundaries: random
//! tables through the full tokenize → serialize → encode → aggregate →
//! measure pipeline.

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::linalg::Matrix;
use observatory::models::registry::model_by_name;
use observatory::search::overlap::{containment, jaccard, multiset_jaccard};
use observatory::stats::mcv::albert_zhang_mcv;
use observatory::stats::spearman::spearman_rho;
use observatory::table::perm::{permute_columns, permute_rows, sample_permutations};
use observatory::table::{Column, Table, Value};
use proptest::prelude::*;

/// Strategy: a small random table with mixed value types.
fn arb_table() -> impl Strategy<Value = Table> {
    let cell = prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i64::from(i))),
        "[a-z]{1,8}( [a-z]{1,8})?".prop_map(Value::text),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        Just(Value::Null),
    ];
    (2usize..5, 2usize..6).prop_flat_map(move |(cols, rows)| {
        proptest::collection::vec(proptest::collection::vec(cell.clone(), rows), cols).prop_map(
            move |columns| {
                Table::new(
                    "t",
                    columns
                        .into_iter()
                        .enumerate()
                        .map(|(j, values)| Column::new(format!("col{j}"), values))
                        .collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Encoding any table yields finite embeddings with aligned provenance.
    #[test]
    fn encoding_always_finite_and_aligned(table in arb_table()) {
        let model = model_by_name("bert").unwrap();
        let enc = model.encode_table(&table);
        prop_assert_eq!(enc.provenance.len(), enc.embeddings.rows());
        prop_assert!(enc.embeddings.as_slice().iter().all(|x| x.is_finite()));
    }

    /// Row permutation never changes *which* embeddings exist — only,
    /// possibly, their values; and re-permuting back restores the table.
    #[test]
    fn permutation_round_trip(table in arb_table()) {
        let n = table.num_rows();
        let perm = sample_permutations(n, 2, 7).pop().unwrap();
        let shuffled = permute_rows(&table, &perm);
        let mut inverse = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        prop_assert_eq!(permute_rows(&shuffled, &inverse), table);
    }

    /// Column permutation round trip.
    #[test]
    fn column_permutation_round_trip(table in arb_table()) {
        let n = table.num_cols();
        let perm = sample_permutations(n, 2, 9).pop().unwrap();
        let shuffled = permute_columns(&table, &perm);
        let mut inverse = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        prop_assert_eq!(permute_columns(&shuffled, &inverse), table);
    }

    /// P1 measure outputs are always in-range: cosine ∈ [−1, 1], MCV ≥ 0.
    #[test]
    fn p1_measures_in_range(table in arb_table()) {
        let model = model_by_name("tapas").unwrap();
        let p = RowOrderInsignificance { max_permutations: 3 };
        let report = p.evaluate(model.as_ref(), std::slice::from_ref(&table), &EvalContext::default());
        for d in &report.records {
            if d.label.ends_with("cosine") {
                prop_assert!(d.values.iter().all(|v| (-1.0..=1.0).contains(v)), "{}", d.label);
            }
            if d.label.ends_with("mcv") {
                prop_assert!(d.values.iter().all(|v| *v >= 0.0), "{}", d.label);
            }
        }
    }

    /// Overlap measures obey their bounds and identities for any column
    /// pair drawn from random tables.
    #[test]
    fn overlap_bounds(a in arb_table(), b in arb_table()) {
        let (ca, cb) = (&a.columns[0], &b.columns[0]);
        let c = containment(ca, cb);
        let j = jaccard(ca, cb);
        let m = multiset_jaccard(ca, cb);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((0.0..=0.5 + 1e-12).contains(&m));
        prop_assert!(j <= c + 1e-12, "jaccard may not exceed containment");
        // Self-identities.
        prop_assert!((containment(ca, ca) - 1.0).abs() < 1e-12);
        prop_assert!((jaccard(ca, ca) - 1.0).abs() < 1e-12);
        prop_assert!((multiset_jaccard(ca, ca) - 0.5).abs() < 1e-12);
    }

    /// Spearman is antisymmetric under order reversal of one variable.
    #[test]
    fn spearman_antisymmetry(xs in proptest::collection::vec(-1e6f64..1e6, 5..40)) {
        let ys: Vec<f64> = (0..xs.len()).map(|i| i as f64).collect();
        let rev: Vec<f64> = ys.iter().rev().copied().collect();
        let r1 = spearman_rho(&xs, &ys);
        let r2 = spearman_rho(&xs, &rev);
        if r1.rho.is_finite() {
            prop_assert!((r1.rho + r2.rho).abs() < 1e-9, "{} vs {}", r1.rho, r2.rho);
        }
    }

    /// AZ MCV is invariant under positive scaling of the whole sample.
    #[test]
    fn mcv_scale_invariance(
        rows in proptest::collection::vec(proptest::collection::vec(0.1f64..10.0, 4), 2..10),
        scale in 0.1f64..100.0,
    ) {
        let m1 = Matrix::from_rows(&rows);
        let scaled: Vec<Vec<f64>> =
            rows.iter().map(|r| r.iter().map(|x| x * scale).collect()).collect();
        let m2 = Matrix::from_rows(&scaled);
        let (g1, g2) = (albert_zhang_mcv(&m1), albert_zhang_mcv(&m2));
        prop_assert!((g1 - g2).abs() < 1e-9 * (1.0 + g1.abs()), "{g1} vs {g2}");
    }

    /// CSV round trip: any random table survives serialize → parse intact
    /// up to type inference (texts that look numeric come back numeric, so
    /// compare the rendered forms).
    #[test]
    fn csv_round_trip_preserves_text_forms(table in arb_table()) {
        let csv = observatory::table::csv::to_csv(&table);
        let parsed = observatory::table::csv::parse_csv("t", &csv).unwrap();
        prop_assert_eq!(parsed.num_rows(), table.num_rows());
        prop_assert_eq!(parsed.num_cols(), table.num_cols());
        for j in 0..table.num_cols() {
            for i in 0..table.num_rows() {
                prop_assert_eq!(
                    parsed.cell(i, j).to_text(),
                    table.cell(i, j).to_text(),
                    "cell ({}, {})", i, j
                );
            }
        }
    }
}
