//! End-to-end test of the warm-started corpus ANN index, against the
//! real binary: seed a store directory with table-level encodings, boot
//! `observatory serve --store-dir … --ann-warm`, and require that
//!
//! - `/healthz` reports the index (kind, item count, shard count);
//! - `/v1/knn {"corpus":true}` answers with fingerprint-keyed hits;
//! - at full beam width the hits are **bit-identical** to a flat
//!   `KnnIndex` oracle built from the same vectors (the exact-re-rank
//!   guarantee, across process and serialization boundaries);
//! - at default beam width, self-retrieval still works (recall sanity).
//!
//! No re-encoding happens anywhere: the server builds the index from the
//! persisted segments, which is the point of the warm start.

#![cfg(unix)]

use observatory::linalg::{Matrix, SplitMix64};
use observatory::models::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use observatory::obs::json::{parse as jparse, Json};
use observatory::runtime::{EmbeddingStore, Fingerprint};
use observatory::search::KnnIndex;
use observatory::store::{MmapStore, StoreConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const DIM: usize = 16;
const ITEMS: usize = 200;

/// A single-token table-level encoding whose `table()` readout is
/// exactly `vector` (mean pool over one non-special token).
fn table_encoding(vector: &[f64]) -> ModelEncoding {
    ModelEncoding {
        embeddings: Matrix::from_vec(1, vector.len(), vector.to_vec()),
        provenance: vec![TokenProvenance { row: 1, col: 1, special: false }],
        table_cls: None,
        column_cls: vec![],
        rows_encoded: 1,
        cols_encoded: 1,
        column_readout: Readout::MeanPool,
        table_readout: Readout::MeanPool,
        capabilities: Capabilities::all(),
    }
}

/// Deterministic clustered corpus, `(fingerprint, vector)` per item.
fn corpus() -> Vec<(Fingerprint, Vec<f64>)> {
    let mut rng = SplitMix64::new(0xA55);
    let centers: Vec<Vec<f64>> =
        (0..8).map(|_| (0..DIM).map(|_| rng.next_normal()).collect()).collect();
    (0..ITEMS)
        .map(|i| {
            let c = &centers[i % centers.len()];
            let v: Vec<f64> = c.iter().map(|x| x + 0.1 * rng.next_normal()).collect();
            (Fingerprint(i as u128 + 1), v)
        })
        .collect()
}

fn spawn_serve(store_dir: &std::path::Path) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_observatory"));
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(["--store-dir", store_dir.to_str().unwrap()])
        .arg("--ann-warm")
        .args(["--ann-shards", "4"]);
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read banner") > 0, "no banner before EOF");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().expect("address in banner").to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.into_inner().read_to_string(&mut sink);
    });
    (child, addr)
}

/// One request over a fresh connection; returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("write request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let status: u16 = buf.split_whitespace().nth(1).expect("status line").parse().expect("status");
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn hits_of(results: &Json, query: usize) -> Vec<(String, f64)> {
    results.as_array().expect("results array")[query]
        .as_array()
        .expect("hit array")
        .iter()
        .map(|h| {
            (
                h.get("key").unwrap().as_str().unwrap().to_string(),
                h.get("score").unwrap().as_f64().unwrap(),
            )
        })
        .collect()
}

#[test]
fn warm_started_corpus_index_serves_store_contents() {
    let dir = std::env::temp_dir().join(format!("obs-ann-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = corpus();

    // Seed the store. A small rotation budget forces several segments,
    // so the warm build exercises the multi-tier fingerprint walk.
    {
        let mut config = StoreConfig::new(dir.clone());
        config.rotate_bytes = 16 << 10;
        let store = MmapStore::open(config).expect("open store");
        for (fp, v) in &data {
            store.save(*fp, &table_encoding(v));
        }
        store.checkpoint();
    }

    // The oracle the server must agree with, keyed like the server keys.
    let mut oracle = KnnIndex::new(DIM);
    for (fp, v) in &data {
        oracle.insert(fp.to_hex(), v);
    }

    let (mut child, addr) = spawn_serve(&dir);

    // healthz advertises the index.
    let (status, body) = request(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let health = jparse(&body).expect("healthz json");
    let ann = health.get("ann").expect("ann object");
    assert_eq!(ann.get("kind").unwrap().as_str(), Some("hnsw"));
    assert_eq!(ann.get("items").unwrap().as_f64(), Some(ITEMS as f64));
    assert_eq!(ann.get("shards").unwrap().as_f64(), Some(4.0));
    assert_eq!(ann.get("dim").unwrap().as_f64(), Some(DIM as f64));

    // Full-beam corpus queries: bit-identical to the flat oracle.
    let queries: Vec<&[f64]> = data.iter().step_by(37).map(|(_, v)| v.as_slice()).collect();
    let body = format!(
        r#"{{"k":10,"corpus":true,"mode":"ann","ef":{ITEMS},"queries":[{}]}}"#,
        queries
            .iter()
            .map(|q| format!("[{}]", q.iter().map(f64::to_string).collect::<Vec<_>>().join(",")))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, out) = request(&addr, "POST", "/v1/knn", &body);
    assert_eq!(status, 200, "{out}");
    let v = jparse(&out).expect("knn json");
    assert_eq!(v.get("index").unwrap().as_str(), Some("hnsw"));
    assert_eq!(v.get("shards").unwrap().as_f64(), Some(4.0));
    let results = v.get("results").unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let served = hits_of(results, qi);
        let expect: Vec<(String, f64)> =
            oracle.query(q, 10, None).into_iter().map(|h| (h.key, h.score)).collect();
        assert_eq!(served.len(), expect.len());
        for (s, e) in served.iter().zip(&expect) {
            assert_eq!(s.0, e.0, "query {qi}: hit keys must match the oracle");
            // push_f64 renders shortest-round-trip, so parsing back must
            // reproduce the oracle's f64 exactly.
            assert_eq!(s.1.to_bits(), e.1.to_bits(), "query {qi}: score must be bit-exact");
        }
    }

    // Default beam: self-retrieval (the stored vector is its own
    // nearest neighbour at score ~1).
    let (fp0, v0) = &data[0];
    let body = format!(
        r#"{{"k":1,"corpus":true,"mode":"ann","queries":[[{}]]}}"#,
        v0.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
    );
    let (status, out) = request(&addr, "POST", "/v1/knn", &body);
    assert_eq!(status, 200, "{out}");
    let v = jparse(&out).expect("knn json");
    let top = &hits_of(v.get("results").unwrap(), 0)[0];
    assert_eq!(top.0, fp0.to_hex(), "self-retrieval at default ef");
    assert!((top.1 - 1.0).abs() < 1e-9, "self-score {}", top.1);

    // Dimension mismatch is a 400, not a panic.
    let (status, out) =
        request(&addr, "POST", "/v1/knn", r#"{"k":1,"corpus":true,"queries":[[1.0,2.0]]}"#);
    assert_eq!(status, 400, "{out}");

    let (status, _) = request(&addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    let status = child.wait().expect("reap server");
    assert!(status.success(), "clean drain after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_queries_without_warm_index_are_refused() {
    // No --ann-warm: corpus queries get a clear 409, inline queries work.
    let dir = std::env::temp_dir().join(format!("obs-ann-cold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = MmapStore::open(StoreConfig::new(dir.clone())).expect("open store");
        store.save(Fingerprint(1), &table_encoding(&vec![1.0; DIM]));
        store.checkpoint();
    }
    let (mut child, addr) = spawn_serve_cold(&dir);
    let (status, out) =
        request(&addr, "POST", "/v1/knn", r#"{"k":1,"corpus":true,"queries":[[1.0,0.0]]}"#);
    assert_eq!(status, 409, "{out}");
    let (status, out) = request(
        &addr,
        "POST",
        "/v1/knn",
        r#"{"k":1,"items":[{"key":"a","vector":[1.0,0.0]}],"queries":[[1.0,0.0]]}"#,
    );
    assert_eq!(status, 200, "{out}");
    let (status, _) = request(&addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    child.wait().expect("reap server");
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_serve_cold(store_dir: &std::path::Path) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_observatory"));
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(["--store-dir", store_dir.to_str().unwrap()]);
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read banner") > 0, "no banner before EOF");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().expect("address in banner").to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.into_inner().read_to_string(&mut sink);
    });
    (child, addr)
}
