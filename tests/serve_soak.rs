//! Soak and lifecycle tests for the embedding service.
//!
//! The soak test is the PR's correctness gate for the concurrent serving
//! path: 32 client threads × 50 requests against a live server on an
//! ephemeral port, with every response checked three ways —
//!
//! 1. **no losses**: every request is answered 200;
//! 2. **no cross-wiring**: the echoed `id` matches the request that
//!    carried it (a batcher that zips replies to the wrong jobs would
//!    fail here immediately);
//! 3. **bit-identical batching**: each response body equals, byte for
//!    byte, the body rendered from a serial uncached reference encode of
//!    the same table — dynamic micro-batching must be invisible in the
//!    numbers at any batch size.
//!
//! The lifecycle tests drive the installed binary: SIGTERM must drain
//! and exit 0 (satellite: graceful shutdown), and `--jobs` must be
//! honored by `characterize` regardless of flag position (satellite:
//! engine init before first encode).

use observatory::models::registry::model_by_name;
use observatory::runtime::{Engine, EngineConfig};
use observatory::serve::{api, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 32;
const REQUESTS_PER_CLIENT: usize = 50;
const DISTINCT_TABLES: usize = 64;

fn embed_body(id: &str, tag: usize) -> String {
    format!(
        r#"{{"model":"bert","level":"column","id":"{id}",
            "table":{{"name":"soak{tag}","columns":[
              {{"header":"id","values":[{},{},{}]}},
              {{"header":"name","values":["a-{tag}","b-{tag}","c-{tag}"]}},
              {{"header":"score","values":[{}.5,null,{}.25]}}]}}}}"#,
        tag,
        tag + 1,
        tag + 2,
        tag % 10,
        (tag + 3) % 10,
    )
}

/// One request over a fresh connection; returns (status, head, body).
/// The head keeps the raw response headers so tests can assert on
/// `x-request-id` / `x-stage-us` without a second client path.
fn post_embed_full(addr: SocketAddr, extra_headers: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "POST /v1/embed HTTP/1.1\r\nHost: t\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let status: u16 =
        buf.split_whitespace().nth(1).and_then(|x| x.parse().ok()).expect("status line");
    let (head, resp_body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (status, head.to_string(), resp_body.to_string())
}

/// One request over a fresh connection; returns (status, body).
fn post_embed(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, _, body) = post_embed_full(addr, "", body);
    (status, body)
}

/// Value of a (lowercase) header in a raw response head, if present.
fn header_of(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        (k.trim().eq_ignore_ascii_case(name)).then(|| v.trim().to_string())
    })
}

#[test]
fn soak_32_clients_no_losses_no_crosswiring_bit_identical() {
    // Deep queue: this test is about correctness under concurrency, not
    // shedding, so nothing should be turned away.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_batch: 8,
        batch_delay: Duration::from_micros(500),
        queue_depth: CLIENTS * REQUESTS_PER_CLIENT,
        deadline: Duration::from_secs(120),
        handle_signals: false,
        ..ServeConfig::default()
    };
    let engine = Arc::new(Engine::new(EngineConfig { jobs: 4, cache_bytes: 1 << 24 }));
    let server = Server::bind(config, engine).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Serial uncached reference: the expected response body for each of
    // the DISTINCT_TABLES payloads, rendered through the same code path
    // the server uses — any numeric drift from batching shows up as a
    // byte diff.
    let reference = Arc::new(Engine::new(EngineConfig::serial_uncached()));
    let model = model_by_name("bert").unwrap();
    let expected: Arc<Vec<String>> = Arc::new(
        (0..DISTINCT_TABLES)
            .map(|tag| {
                // The id is request-specific; render with a placeholder and
                // substitute per request below.
                let req = api::parse_embed(&embed_body("__ID__", tag)).unwrap();
                let enc = reference.encode_table(model.as_ref(), &req.table);
                api::render_embed_response(&req, &enc)
            })
            .collect(),
    );

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let tag = (c * REQUESTS_PER_CLIENT + i) % DISTINCT_TABLES;
                    let id = format!("c{c}-r{i}");
                    let (status, body) = post_embed(addr, &embed_body(&id, tag));
                    assert_eq!(status, 200, "client {c} request {i}: {body}");
                    let want = expected[tag].replace("__ID__", &id);
                    assert_eq!(
                        body, want,
                        "client {c} request {i} (table {tag}): batched response \
                         diverged from the serial reference or was cross-wired"
                    );
                }
            })
        })
        .collect();
    for (c, t) in clients.into_iter().enumerate() {
        t.join().unwrap_or_else(|_| panic!("client {c} panicked"));
    }

    handle.shutdown();
    let stats = server_thread.join().expect("server drains");
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(stats.totals.requests, total, "every request answered exactly once");
    assert_eq!(stats.totals.shed, 0, "deep queue must not shed");
    assert_eq!(stats.totals.expired, 0);
    assert_eq!(stats.totals.panics, 0);
    assert_eq!(stats.totals.batched_jobs, total, "every job carried by some batch");
    assert!(
        stats.totals.max_batch >= 2,
        "32 concurrent clients must produce at least one multi-request batch \
         (max seen: {})",
        stats.totals.max_batch
    );
}

#[test]
fn request_ids_and_stage_timings_round_trip_end_to_end() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_batch: 4,
        batch_delay: Duration::from_micros(500),
        queue_depth: 64,
        deadline: Duration::from_secs(120),
        handle_signals: false,
        ..ServeConfig::default()
    };
    let engine = Arc::new(Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 24 }));
    let server = Server::bind(config, engine).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // A client-supplied x-request-id is echoed verbatim, and the stage
    // breakdown carries all five tiers with parseable values. The first
    // encode is cold, so the encode stage must have real time in it.
    let (status, head, body) =
        post_embed_full(addr, "x-request-id: soak-trace-1\r\n", &embed_body("e2e-1", 1));
    assert_eq!(status, 200, "{body}");
    assert_eq!(header_of(&head, "x-request-id").as_deref(), Some("soak-trace-1"));
    let stages = header_of(&head, "x-stage-us").expect("x-stage-us header on 200");
    let mut parsed = std::collections::BTreeMap::new();
    for part in stages.split(';') {
        let (k, v) = part.split_once('=').unwrap_or_else(|| panic!("bad stage '{part}'"));
        parsed.insert(k.to_string(), v.parse::<u64>().unwrap_or_else(|_| panic!("{stages}")));
    }
    for key in ["queue", "batch_wait", "encode", "store", "write"] {
        assert!(parsed.contains_key(key), "missing stage '{key}' in '{stages}'");
    }
    assert!(parsed["encode"] > 0, "cold encode must take measurable time: {stages}");

    // Requests without an id get distinct generated ones.
    let (_, head_a, _) = post_embed_full(addr, "", &embed_body("e2e-2", 2));
    let (_, head_b, _) = post_embed_full(addr, "", &embed_body("e2e-3", 3));
    let id_a = header_of(&head_a, "x-request-id").expect("generated id");
    let id_b = header_of(&head_b, "x-request-id").expect("generated id");
    assert!(id_a.starts_with("obs-"), "{id_a}");
    assert_ne!(id_a, id_b, "generated request ids must be distinct");

    // Malformed ids are rejected before admission.
    let (status, head_bad, _) =
        post_embed_full(addr, "x-request-id: not a valid id!\r\n", &embed_body("e2e-4", 4));
    assert_eq!(status, 400, "malformed x-request-id must be rejected");
    assert!(header_of(&head_bad, "x-stage-us").is_none(), "no stage timings on a 400");

    handle.shutdown();
    let stats = server_thread.join().expect("server drains");
    // The drain snapshot aggregates the same stages for the CLI report.
    for (name, h) in &stats.totals.stages {
        assert!(h.count >= 3, "stage '{name}' must have one sample per embed, got {}", h.count);
    }
}

// ---------------------------------------------------------------------
// Binary lifecycle tests (unix: signals + process spawning).
// ---------------------------------------------------------------------

#[cfg(unix)]
mod binary {
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    fn spawn_serve(extra: &[&str]) -> (Child, String) {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_observatory"));
        cmd.arg("serve").args(["--addr", "127.0.0.1:0"]).args(extra);
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn serve");
        // The first stdout line announces the resolved ephemeral address.
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read banner");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner: {line:?}"))
            .to_string();
        // Keep draining stdout in the background so the child never
        // blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = std::io::Read::read_to_string(&mut reader.into_inner(), &mut sink);
        });
        (child, addr)
    }

    fn get(addr: &str, path: &str) -> (u16, String) {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes()).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status = buf.split_whitespace().nth(1).and_then(|x| x.parse().ok()).unwrap_or(0);
        (status, buf)
    }

    #[test]
    fn sigterm_drains_and_exits_zero() {
        let (mut child, addr) = spawn_serve(&[]);
        assert_eq!(get(&addr, "/healthz").0, 200);
        // SIGTERM → graceful drain → exit code 0.
        let kill = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .expect("kill runs");
        assert!(kill.success());
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(s) = child.try_wait().expect("try_wait") {
                break s;
            }
            assert!(Instant::now() < deadline, "server did not exit within 30s of SIGTERM");
            std::thread::sleep(Duration::from_millis(50));
        };
        assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");
    }

    #[test]
    fn jobs_flag_is_honored_regardless_of_position() {
        // Regression (engine-init ordering): --jobs used to be applied
        // after the corpus load; any future code path that touches the
        // engine earlier would silently ignore it. The note on stderr is
        // the tell.
        for args in [
            ["characterize", "--property", "P1", "--permutations", "2", "--jobs", "3"],
            ["characterize", "--jobs", "3", "--property", "P1", "--permutations", "2"],
        ] {
            let out = Command::new(env!("CARGO_BIN_EXE_observatory"))
                .args(args)
                .output()
                .expect("characterize runs");
            let stdout = String::from_utf8_lossy(&out.stdout);
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(out.status.success(), "characterize failed:\n{stdout}\n{stderr}");
            assert!(
                !stderr.contains("--jobs ignored"),
                "--jobs must be applied before the engine first runs:\n{stderr}"
            );
            assert!(
                stdout.contains("-- runtime (3 jobs) --"),
                "runtime footer must report the requested worker count:\n{stdout}"
            );
        }
    }
}
