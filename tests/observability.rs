//! Round-trip tests for the observability exporters: run the real CLI
//! binary with `--trace-out` / `--metrics-out`, parse both artifacts back
//! through the workspace's own zero-dependency parsers, and check the
//! structural promises the exposition makes (span nesting, encode→property
//! parentage, provenance manifest, metric schema).

use observatory::obs::json::{parse, Json};
use observatory::obs::prom::validate;
use std::collections::HashMap;
use std::process::Command;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("observatory-obs-test-{}-{name}", std::process::id()));
    p
}

/// One characterize run with both exporters; returns (trace, metrics).
fn run_characterize(extra_env: &[(&str, &str)]) -> (String, String) {
    let trace = temp_path("trace.json");
    let metrics = temp_path("metrics.prom");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_observatory"));
    cmd.args([
        "characterize",
        "--property",
        "P1",
        "--permutations",
        "4",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("CLI binary runs");
    assert!(
        out.status.success(),
        "characterize failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
    (trace_text, metrics_text)
}

struct SpanEvt {
    name: String,
    target: String,
    parent: Option<u64>,
    ts: f64,
    dur: f64,
}

fn spans_of(doc: &Json) -> HashMap<u64, SpanEvt> {
    let mut spans = HashMap::new();
    for ev in doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents") {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = ev.get("args").expect("span args");
        let id = args.get("id").and_then(Json::as_f64).expect("span id") as u64;
        let parent = match args.get("parent") {
            None | Some(Json::Null) => None,
            Some(p) => Some(p.as_f64().expect("numeric parent") as u64),
        };
        spans.insert(
            id,
            SpanEvt {
                name: ev.get("name").and_then(Json::as_str).unwrap_or_default().to_string(),
                target: ev.get("cat").and_then(Json::as_str).unwrap_or_default().to_string(),
                parent,
                ts: ev.get("ts").and_then(Json::as_f64).expect("ts"),
                dur: ev.get("dur").and_then(Json::as_f64).expect("dur"),
            },
        );
    }
    spans
}

#[test]
fn trace_round_trips_with_nesting_and_provenance() {
    let (trace_text, metrics_text) = run_characterize(&[]);
    let doc = parse(&trace_text).expect("trace parses as JSON");

    // Provenance manifest rides in otherData on the trace side.
    let other = doc.get("otherData").expect("otherData manifest");
    for key in ["version", "models", "dataset", "seed", "permutations", "jobs", "wall_ms"] {
        let v = other.get(key).and_then(Json::as_str).unwrap_or("");
        assert!(!v.is_empty(), "manifest missing {key}\n{trace_text}");
    }
    assert_eq!(other.get("property").and_then(Json::as_str), Some("P1"));

    let spans = spans_of(&doc);
    assert!(!spans.is_empty(), "trace has spans");

    // Well-formed nesting: known parent, allocation order, containment.
    const SLACK_US: f64 = 10.0;
    for (id, s) in &spans {
        if let Some(pid) = s.parent {
            let p = spans.get(&pid).unwrap_or_else(|| panic!("span {id} unknown parent {pid}"));
            assert!(pid < *id, "parent id must precede child id");
            assert!(
                s.ts + SLACK_US >= p.ts && s.ts + s.dur <= p.ts + p.dur + SLACK_US,
                "span {id} ({}) escapes parent {pid} ({})",
                s.name,
                p.name,
            );
        }
    }

    // Every encode_batch span must hang off the P1 property span.
    let batches: Vec<&SpanEvt> = spans.values().filter(|s| s.name == "encode_batch").collect();
    assert!(!batches.is_empty(), "no encode_batch spans recorded");
    for batch in batches {
        let mut cursor = batch.parent;
        let mut reached_property = false;
        while let Some(pid) = cursor {
            let p = &spans[&pid];
            if p.target == "props" {
                assert_eq!(p.name, "P1");
                reached_property = true;
                break;
            }
            cursor = p.parent;
        }
        assert!(reached_property, "encode_batch span has no property ancestor");
    }
    // No span recorded under panic in a clean run.
    assert!(!trace_text.contains("\"panicked\": true"));

    // Metrics side: validates, carries the schema and the same manifest.
    let summary = validate(&metrics_text).expect("prometheus text validates");
    for family in [
        "observatory_run_info",
        "observatory_encodes_total",
        "observatory_cache_lookups_total",
        "observatory_cache_shard_entries",
        "observatory_cache_shard_bytes",
        "observatory_cache_high_water_bytes",
        "observatory_encode_latency_seconds_bucket",
        "observatory_encode_latency_quantile_seconds",
        "observatory_model_encodes_total",
        "observatory_span_total",
    ] {
        assert!(summary.has(family), "metrics missing {family}\n{metrics_text}");
    }
    assert!(metrics_text.contains("property=\"P1\""), "manifest labels in run_info");
    assert!(metrics_text.contains("quantile=\"0.99\""));
}

#[test]
fn off_level_without_exporters_stays_silent() {
    // OBSERVATORY_LOG defaults to off; without --trace-out the CLI must not
    // mention traces at all, and must still succeed.
    let out = Command::new(env!("CARGO_BIN_EXE_observatory"))
        .args(["characterize", "--property", "P1", "--permutations", "2"])
        .env("OBSERVATORY_LOG", "off")
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("trace:"), "no trace output expected:\n{stdout}");
}

#[test]
fn trace_level_env_is_respected() {
    // At OBSERVATORY_LOG=trace the pool worker spans appear too.
    let (trace_text, _) =
        run_characterize(&[("OBSERVATORY_LOG", "trace"), ("OBSERVATORY_JOBS", "2")]);
    let doc = parse(&trace_text).expect("trace parses");
    let spans = spans_of(&doc);
    assert!(
        spans.values().any(|s| s.target == "pool" && s.name == "worker"),
        "worker spans expected at trace level",
    );
}

#[test]
fn unwritable_trace_path_is_io_error_exit_1() {
    let out = Command::new(env!("CARGO_BIN_EXE_observatory"))
        .args([
            "characterize",
            "--property",
            "P1",
            "--permutations",
            "2",
            "--trace-out",
            "/nonexistent-dir/trace.json",
        ])
        .output()
        .expect("CLI binary runs");
    assert_eq!(out.status.code(), Some(1), "I/O failure must exit 1");
}
