//! Model selection for a downstream task — the workflow Observatory was
//! built for (paper §1: "help researchers and practitioners better
//! anticipate model behaviors and select appropriate models").
//!
//! Scenario: you need column embeddings for a data-discovery service over
//! a lake of *unordered* tables whose schemas drift (columns get renamed
//! by upstream teams). Which model should you use?
//!
//! The answer combines three properties: P1 (row order), P2 (column
//! order), and P7 (perturbation robustness).
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use observatory::core::framework::{run_property, EvalContext};
use observatory::core::props::col_order::ColumnOrderInsignificance;
use observatory::core::props::perturbation::PerturbationRobustness;
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::report::{fmt, render_table};
use observatory::data::wikitables::WikiTablesConfig;
use observatory::models::registry::all_models;
use observatory::stats::descriptive::mean;

fn main() {
    let corpus = WikiTablesConfig { num_tables: 5, min_rows: 5, max_rows: 7, seed: 11 }.generate();
    let ctx = EvalContext::default();
    let models = all_models();

    println!("scoring candidate models for: column embeddings over unordered,");
    println!("schema-drifting tables (higher = better on every criterion)\n");

    let p1 = RowOrderInsignificance { max_permutations: 12 };
    let p2 = ColumnOrderInsignificance { max_permutations: 12 };
    let p7 = PerturbationRobustness::default();

    let p1_reports = run_property(&p1, &models, &corpus, &ctx);
    let p2_reports = run_property(&p2, &models, &corpus, &ctx);
    let p7_reports = run_property(&p7, &models, &corpus, &ctx);

    let score = |reports: &[observatory::core::PropertyReport], model: &str, label: &str| {
        reports
            .iter()
            .find(|r| r.model == model)
            .and_then(|r| r.distribution(label))
            .map(|d| mean(&d.values))
            .unwrap_or(f64::NAN)
    };

    let mut rows = Vec::new();
    for m in &models {
        let name = m.name();
        let row_order = score(&p1_reports, name, "column/cosine");
        let col_order = score(&p2_reports, name, "column/cosine");
        let perturb = score(&p7_reports, name, "synonym");
        // A model is only usable if it produces column embeddings at all.
        if row_order.is_nan() && col_order.is_nan() {
            continue;
        }
        let overall =
            [row_order, col_order, perturb].iter().filter(|v| !v.is_nan()).sum::<f64>() / 3.0;
        rows.push((
            overall,
            vec![name.to_string(), fmt(row_order), fmt(col_order), fmt(perturb), fmt(overall)],
        ));
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    let table_rows: Vec<Vec<String>> = rows.iter().map(|(_, r)| r.clone()).collect();
    print!(
        "{}",
        render_table(
            &["model", "P1 row-order", "P2 col-order", "P7 schema-robust", "overall"],
            &table_rows
        )
    );
    println!("\nwinner for this workload: {}", rows[0].1[0]);
    println!("note how the ranking would change if your tables had stable schemas");
    println!("(drop P7) or came from curated views with meaningful column order (drop P2).");
}
