//! Characterize embeddings over *your own* CSV data: load a table from
//! CSV, run every applicable property for a chosen model, and print one
//! consolidated report. Demonstrates the CSV substrate and a multi-
//! property workflow on user data.
//!
//! ```sh
//! cargo run --release --example csv_report [path/to/table.csv] [model]
//! ```
//!
//! Without arguments a bundled demo CSV (the paper's Figure 3 table) is
//! used with BERT.

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::col_order::ColumnOrderInsignificance;
use observatory::core::props::fd::FunctionalDependencies;
use observatory::core::props::perturbation::PerturbationRobustness;
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::report::render_report;
use observatory::models::registry::model_by_name;
use observatory::table::csv::parse_csv;

const DEMO_CSV: &str = "\
id,name,country,continent
1,Kathryn,Netherlands,Europe
2,Oscar,Netherlands,Europe
3,Lee,Canada,North America
4,Roxanne,USA,North America
5,Fern,Netherlands,Europe
6,Raphael,USA,North America
7,Rob,USA,North America
8,Ismail,Canada,North America
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (name, text) = match args.get(1) {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
        ),
        None => ("figure3_demo".to_string(), DEMO_CSV.to_string()),
    };
    let model_name = args.get(2).map(String::as_str).unwrap_or("bert");

    let table = parse_csv(&name, &text).unwrap_or_else(|e| {
        eprintln!("CSV parse error: {e}");
        std::process::exit(1);
    });
    println!(
        "loaded '{}': {} rows × {} cols ({})\n",
        table.name,
        table.num_rows(),
        table.num_cols(),
        table.headers().join(", ")
    );
    let model = model_by_name(model_name).unwrap_or_else(|| {
        eprintln!("unknown model '{model_name}'");
        std::process::exit(1);
    });
    let corpus = vec![table];
    let ctx = EvalContext::default();

    let p1 = RowOrderInsignificance { max_permutations: 24 };
    let p2 = ColumnOrderInsignificance { max_permutations: 24 };
    let p4 = FunctionalDependencies::default();
    let p7 = PerturbationRobustness::default();
    let props: [&dyn Property; 4] = [&p1, &p2, &p4, &p7];
    for property in props {
        let report = property.evaluate(model.as_ref(), &corpus, &ctx);
        if report.records.is_empty() && report.scalars.is_empty() {
            println!("## {} — nothing to measure on this table\n", property.id());
        } else {
            print!("{}", render_report(&report));
        }
    }
}
