//! Semantic join discovery over a data lake — the paper's intro
//! motivation and §6 downstream experiment, as an application.
//!
//! Pipeline: embed every candidate column (with sampling, justified by
//! Property 5), index the embeddings, and answer "which columns in the
//! lake join with mine?" queries. Ground truth and evaluation use the
//! syntactic overlap measures of Property 3.
//!
//! ```sh
//! cargo run --release --example join_discovery
//! ```

use observatory::core::downstream::join_discovery::{run_join_discovery, JoinDiscoveryConfig};
use observatory::core::framework::EvalContext;
use observatory::data::nextiajd::NextiaJdConfig;
use observatory::models::registry::model_by_name;
use observatory::search::overlap::{containment, multiset_jaccard};

fn main() {
    // A synthetic "lake": joinable query/candidate column pairs with
    // planted overlap.
    let pairs = NextiaJdConfig { num_pairs: 40, ..Default::default() }.generate();
    println!("lake: {} candidate columns, {} queries\n", pairs.len(), pairs.len());

    // Peek at what the syntactic measures say about one pair.
    let p = &pairs[0];
    println!(
        "example pair: containment={:.2}, multiset-jaccard={:.2} (target was {:.1})",
        containment(&p.query, &p.candidate),
        multiset_jaccard(&p.query, &p.candidate),
        p.target_containment
    );

    // T5: the paper's pick for this task thanks to its sample fidelity.
    let model = model_by_name("t5").unwrap();
    let config = JoinDiscoveryConfig { sample_size: 8, k: 5, ..Default::default() };
    let result = run_join_discovery(model.as_ref(), &pairs, &config, &EvalContext::default())
        .expect("t5 exposes column embeddings");

    println!(
        "\nfull-value embeddings:  precision {:.3}  recall {:.3}  (index {} µs)",
        result.full.eval.mean_precision, result.full.eval.mean_recall, result.full.index_micros
    );
    println!(
        "sampled embeddings:     precision {:.3}  recall {:.3}  (index {} µs)",
        result.sampled.eval.mean_precision,
        result.sampled.eval.mean_recall,
        result.sampled.index_micros
    );
    let speedup = result.full.index_micros as f64 / result.sampled.index_micros.max(1) as f64;
    println!(
        "\nsampling keeps retrieval quality within {:.1} recall points while",
        (result.full.eval.mean_recall - result.sampled.eval.mean_recall).abs() * 100.0
    );
    println!("indexing {speedup:.1}× faster — the Property 5 → join-discovery connection.");
}
