//! Functional-dependency audit of a database — exercising the FD
//! discovery substrate directly, then asking Property 4's question: do a
//! model's embeddings know about the dependencies we just mined?
//!
//! ```sh
//! cargo run --release --example fd_audit
//! ```

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::fd::FunctionalDependencies;
use observatory::data::spider::SpiderConfig;
use observatory::fd::discovery::{discover_unary_fds, DiscoveryOptions};
use observatory::fd::groups::fd_groups;
use observatory::models::registry::model_by_name;

fn main() {
    let corpus = SpiderConfig { num_tables: 6, rows: 24, seed: 7 }.generate();

    // Step 1: mine unary FDs with determinant size 1, exactly the paper's
    // HyFD configuration over Spider.
    println!("## mined functional dependencies\n");
    let mut total = 0usize;
    for table in &corpus.tables {
        let fds = discover_unary_fds(table, DiscoveryOptions::default());
        for fd in &fds {
            let groups = fd_groups(table, *fd, 2);
            println!(
                "{}: {} → {}   ({} FD groups with ≥2 tuples)",
                table.name,
                table.columns[fd.determinant].header,
                table.columns[fd.dependent].header,
                groups.len()
            );
        }
        total += fds.len();
    }
    println!(
        "\n{total} dependencies mined ({} were planted by the generator)",
        corpus.planted_fds.len()
    );

    // Step 2: Property 4 — is the FD structure visible in the embedding
    // space as stable translations?
    println!("\n## embedding-space audit (Property 4, TransE-style translation variance)\n");
    for name in ["bert", "tapas", "doduo"] {
        let model = model_by_name(name).unwrap();
        let report = FunctionalDependencies::default().evaluate(
            model.as_ref(),
            &corpus.tables,
            &EvalContext::default(),
        );
        let fd_mean = report.scalar("mean_s2/fd").unwrap_or(f64::NAN);
        let nonfd_mean = report.scalar("mean_s2/nonfd").unwrap_or(f64::NAN);
        println!(
            "{name:8} S̄² with FDs: {fd_mean:.3}   without: {nonfd_mean:.3}   {}",
            if fd_mean < 0.05 * nonfd_mean {
                "← suspiciously clean separation"
            } else {
                "(overlapping — FDs are not preserved, as the paper finds)"
            }
        );
    }
    println!("\ntakeaway: don't expect imputation driven by these embeddings to respect");
    println!("dependencies like country → continent; enforce them with the `fd` crate instead.");
}
