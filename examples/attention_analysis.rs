//! Attention-pattern analysis of the table models — the Koleva et al.
//! (NeurIPS TRL 2022) style of inspection the paper's related work
//! discusses: where does each model's attention mass go? Within the same
//! row, the same column, to the schema, or across structure?
//!
//! ```sh
//! cargo run --release --example attention_analysis
//! ```

use observatory::data::wikitables::WikiTablesConfig;
use observatory::models::adapter::BaseModel;
use observatory::models::zoo;

/// Where attention mass lands, relative to the query token's structure.
#[derive(Default)]
struct MassProfile {
    same_row: f64,
    same_column: f64,
    schema: f64,
    elsewhere: f64,
    total: f64,
}

fn analyze(model: &BaseModel, table: &observatory::table::Table) -> MassProfile {
    let (enc, maps) = model.encode_table_with_attention(table);
    let mut p = MassProfile::default();
    for map in &maps {
        for (i, pi) in enc.provenance.iter().enumerate() {
            if pi.special || pi.row == 0 {
                continue; // profile only data-token queries
            }
            for (j, pj) in enc.provenance.iter().enumerate() {
                let w = map[(i, j)];
                p.total += w;
                if pj.row == 0 && pj.col > 0 {
                    p.schema += w;
                } else if pj.col == pi.col && pj.row != pi.row {
                    p.same_column += w;
                } else if pj.row == pi.row {
                    p.same_row += w;
                } else {
                    p.elsewhere += w;
                }
            }
        }
    }
    p
}

fn main() {
    let table =
        WikiTablesConfig { num_tables: 1, min_rows: 6, max_rows: 6, seed: 3 }.generate().remove(0);
    println!(
        "attention mass profile over '{}' ({} rows × {} cols), data-token queries\n",
        table.name,
        table.num_rows(),
        table.num_cols()
    );
    println!(
        "{:<8} {:>10} {:>12} {:>9} {:>11}",
        "model", "same-row", "same-column", "schema", "elsewhere"
    );
    let models: Vec<(&str, BaseModel)> = vec![
        ("bert", zoo::bert::bert()),
        ("tapas", zoo::tapas::tapas()),
        ("tabert", zoo::tabert::tabert()),
        ("doduo", zoo::doduo::doduo()),
    ];
    for (name, model) in &models {
        let p = analyze(model, &table);
        let pct = |x: f64| 100.0 * x / p.total.max(1e-12);
        println!(
            "{:<8} {:>9.1}% {:>11.1}% {:>8.1}% {:>10.1}%",
            name,
            pct(p.same_row),
            pct(p.same_column),
            pct(p.schema),
            pct(p.elsewhere)
        );
    }
    println!();
    println!("reading: TaBERT's vertical pass shifts mass into same-column attention;");
    println!("DODUO's column-wise serialization makes same-column attention structural;");
    println!("row-wise BERT/TAPAS spread mass across rows. Trained checkpoints sharpen");
    println!("these patterns further (Koleva et al.), but the structural skeleton is");
    println!("already visible in the architecture alone.");
}
