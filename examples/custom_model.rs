//! Extending Observatory with your own model and your own property — the
//! framework's two extension points (paper §1: "our implementation of
//! Observatory is extensible such that researchers and practitioners can
//! use Observatory for analysis of new models").
//!
//! The custom model here is a deliberately naive bag-of-tokens encoder
//! (no attention, no positions). Observatory immediately characterizes
//! it: *perfectly* order-insensitive (P1/P2 cosine ≡ 1) but blind to
//! context (P8 cosine ≡ 1) — numbers a downstream user should know.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use observatory::core::framework::{EvalContext, Property, PropertyReport};
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::report::render_report;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::linalg::{Matrix, SplitMix64};
use observatory::models::encoding::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use observatory::models::TableEncoder;
use observatory::table::Table;
use observatory::tokenizer::Tokenizer;

/// A bag-of-tokens "model": each token's embedding is a fixed random
/// vector; no context, no positions.
struct BagOfTokens {
    tokenizer: Tokenizer,
    embeddings: Matrix,
}

impl BagOfTokens {
    fn new() -> Self {
        let tokenizer = Tokenizer::default();
        let mut rng = SplitMix64::from_label("bag-of-tokens");
        let mut embeddings = Matrix::zeros(tokenizer.vocab_size() as usize, 32);
        for i in 0..embeddings.rows() {
            for j in 0..32 {
                embeddings[(i, j)] = rng.next_normal();
            }
        }
        Self { tokenizer, embeddings }
    }
}

impl TableEncoder for BagOfTokens {
    fn name(&self) -> &str {
        "bag-of-tokens"
    }

    fn display_name(&self) -> &str {
        "Bag of Tokens"
    }

    fn dim(&self) -> usize {
        32
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn encode_table(&self, table: &Table) -> ModelEncoding {
        let mut rows = Vec::new();
        let mut provenance = Vec::new();
        for (j, col) in table.columns.iter().enumerate() {
            for (i, v) in col.values.iter().enumerate() {
                for id in self.tokenizer.encode(&v.to_text()) {
                    rows.push(self.embeddings.row(id as usize).to_vec());
                    provenance.push(TokenProvenance {
                        row: (i + 1) as u32,
                        col: (j + 1) as u32,
                        special: false,
                    });
                }
            }
        }
        if rows.is_empty() {
            rows.push(vec![0.0; 32]);
            provenance.push(TokenProvenance { row: 0, col: 0, special: true });
        }
        ModelEncoding {
            embeddings: Matrix::from_rows(&rows),
            provenance,
            table_cls: None,
            column_cls: Vec::new(),
            rows_encoded: table.num_rows(),
            cols_encoded: table.num_cols(),
            column_readout: Readout::MeanPool,
            table_readout: Readout::MeanPool,
            capabilities: self.capabilities(),
        }
    }

    fn encode_text(&self, text: &str) -> Vec<f64> {
        let embs: Vec<Vec<f64>> = self
            .tokenizer
            .encode(text)
            .into_iter()
            .map(|id| self.embeddings.row(id as usize).to_vec())
            .collect();
        observatory::linalg::vector::mean(&embs)
    }
}

/// A custom property: *injectivity drift* — do distinct columns of the
/// same table stay distinguishable in embedding space? (Minimum pairwise
/// distance between column embeddings; collapse to zero means the model
/// cannot tell columns apart.)
struct ColumnSeparation;

impl Property for ColumnSeparation {
    fn id(&self) -> &'static str {
        "X1"
    }

    fn name(&self) -> &'static str {
        "Column Separation"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        _ctx: &EvalContext,
    ) -> PropertyReport {
        let mut report = PropertyReport::new(self.id(), model.name());
        let mut separations = Vec::new();
        for table in corpus {
            let enc = model.encode_table(table);
            let cols: Vec<Vec<f64>> = (0..table.num_cols()).filter_map(|j| enc.column(j)).collect();
            for i in 0..cols.len() {
                for j in (i + 1)..cols.len() {
                    separations.push(1.0 - observatory::linalg::vector::cosine(&cols[i], &cols[j]));
                }
            }
        }
        report.push_distribution("pairwise-cosine-distance", separations);
        report
    }
}

fn main() {
    let corpus = WikiTablesConfig { num_tables: 3, min_rows: 5, max_rows: 6, seed: 3 }.generate();
    let custom = BagOfTokens::new();
    let ctx = EvalContext::default();

    // The stock property machinery works on the custom model unchanged.
    let p1 = RowOrderInsignificance { max_permutations: 8 };
    let report = p1.evaluate(&custom, &corpus, &ctx);
    print!("{}", render_report(&report));
    let cos = report.distribution("column/cosine").unwrap();
    assert!(
        cos.values.iter().all(|v| (v - 1.0).abs() < 1e-9),
        "a bag of tokens is order-invariant by construction"
    );
    println!("→ bag-of-tokens is perfectly row-order invariant (cosine ≡ 1), as expected\n");

    // And the custom property runs on both custom and stock models.
    let sep = ColumnSeparation;
    for (label, report) in [
        ("bag-of-tokens", sep.evaluate(&custom, &corpus, &ctx)),
        (
            "bert",
            sep.evaluate(
                observatory::models::registry::model_by_name("bert").unwrap().as_ref(),
                &corpus,
                &ctx,
            ),
        ),
    ] {
        let d = report.distribution("pairwise-cosine-distance").unwrap();
        println!("{label:14} column separation: {}", d.summary());
    }
    println!("\nboth extension points — `TableEncoder` and `Property` — compose freely.");
}
