//! Quickstart: characterize one model against one property on a small
//! corpus and print the report — the 60-second tour of the public API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use observatory::core::framework::{EvalContext, Property};
use observatory::core::props::row_order::RowOrderInsignificance;
use observatory::core::report::render_report;
use observatory::data::wikitables::WikiTablesConfig;
use observatory::models::registry::model_by_name;

fn main() {
    // 1. A corpus of relational tables. Generators are deterministic
    //    functions of their seed; swap in your own `Table`s (e.g. from
    //    `observatory::table::csv::parse_csv`) for real data.
    let corpus = WikiTablesConfig { num_tables: 4, min_rows: 5, max_rows: 7, seed: 7 }.generate();
    println!(
        "corpus: {} tables, e.g. '{}' ({} rows × {} cols)\n",
        corpus.len(),
        corpus[0].name,
        corpus[0].num_rows(),
        corpus[0].num_cols()
    );

    // 2. A model. The registry holds the nine models from the paper; any
    //    `TableEncoder` implementation works the same way.
    let model = model_by_name("bert").expect("registered model");

    // 3. A property with its measure. P1 asks: does row order — which the
    //    relational model says is meaningless — leak into the embeddings?
    let property = RowOrderInsignificance { max_permutations: 24 };

    // 4. Evaluate and render.
    let report = property.evaluate(model.as_ref(), &corpus, &EvalContext::default());
    print!("{}", render_report(&report));

    // 5. Programmatic access to the same numbers.
    let cosine = report.distribution("column/cosine").expect("column-level measure");
    let summary = cosine.summary();
    println!("column-level cosine median under row shuffling: {:.4}", summary.median);
    if summary.q1 > 0.95 {
        println!(
            "→ {} column embeddings are robust to row order on this corpus",
            model.display_name()
        );
    } else {
        println!(
            "→ {} column embeddings are sensitive to row order — beware when",
            model.display_name()
        );
        println!("  using them over tables whose physical row order is arbitrary");
    }
}
