//! A full data-lake pipeline over the substrates: generate a lake, embed
//! columns (with partitioning for the large tables), index them with LSH,
//! discover a join for a query column, *execute* the discovered join with
//! the relational algebra, and sanity-check FDs of the result.
//!
//! ```sh
//! cargo run --release --example lake_pipeline
//! ```

use observatory::data::spider::SpiderConfig;
use observatory::fd::discovery::{discover_unary_fds, DiscoveryOptions};
use observatory::models::partitioned::encode_partitioned;
use observatory::models::registry::model_by_name;
use observatory::search::lsh::LshIndex;
use observatory::search::overlap::containment;
use observatory::table::algebra::{equijoin, group_count};
use observatory::table::Table;

fn main() {
    // 1. The lake: a dozen multi-domain tables.
    let lake: Vec<Table> = SpiderConfig { num_tables: 12, rows: 40, seed: 7 }.generate().tables;
    println!("lake: {} tables", lake.len());

    // 2. Embed every column of every table. Tables beyond the token budget
    //    go through the partitioned path (paper §7's large-table handling).
    let model = model_by_name("t5").unwrap();
    let mut index = LshIndex::new(model.dim(), 8, 10, 42);
    let mut col_refs: Vec<(usize, usize)> = Vec::new();
    for (ti, table) in lake.iter().enumerate() {
        let enc = encode_partitioned(model.as_ref(), table, 8);
        for j in 0..table.num_cols() {
            if let Some(e) = enc.column(j) {
                index.insert(format!("{ti}:{j}"), &e);
                col_refs.push((ti, j));
            }
        }
    }
    println!("indexed {} column embeddings (LSH, 8 tables × 10 bits)", index.len());

    // 3. Query: find join partners for geo_0.city across the lake.
    let (qt, qj) = (0usize, 0usize);
    let q_enc = encode_partitioned(model.as_ref(), &lake[qt], 8);
    let q_emb = q_enc.column(qj).expect("query column embeds");
    let hits = index.query(&q_emb, 6, Some(&format!("{qt}:{qj}")));
    println!("\njoin candidates for {}.{}:", lake[qt].name, lake[qt].columns[qj].header);
    let mut best: Option<(usize, usize, f64)> = None;
    for h in &hits {
        let (ti, j) = parse_key(&h.key);
        let c = containment(&lake[qt].columns[qj], &lake[ti].columns[j]);
        println!(
            "  {}.{}  cosine {:.3}  containment {:.2}",
            lake[ti].name, lake[ti].columns[j].header, h.score, c
        );
        if ti != qt && best.map_or(true, |(_, _, bc)| c > bc) {
            best = Some((ti, j, c));
        }
    }

    // 4. Execute the best cross-table join and aggregate.
    let (ti, j, c) = best.expect("a candidate exists");
    println!("\nexecuting: {} ⋈ {} on city (containment {:.2})", lake[qt].name, lake[ti].name, c);
    let joined = equijoin(&lake[qt], qj, &lake[ti], j);
    println!("joined rows: {}", joined.num_rows());
    let counts = group_count(&joined, 1); // by country
    println!("top groups by country:");
    for i in 0..counts.num_rows().min(4) {
        println!("  {:<14} {}", counts.cell(i, 0), counts.cell(i, 1));
    }

    // 5. Audit: do the FDs of the inputs survive the join?
    let fds = discover_unary_fds(&joined, DiscoveryOptions::default());
    println!("\nfunctional dependencies holding on the joined relation: {}", fds.len());
    for fd in fds.iter().take(5) {
        println!(
            "  {} → {}",
            joined.columns[fd.determinant].header, joined.columns[fd.dependent].header
        );
    }
}

fn parse_key(key: &str) -> (usize, usize) {
    let (a, b) = key.split_once(':').expect("key format");
    (a.parse().expect("table idx"), b.parse().expect("col idx"))
}
